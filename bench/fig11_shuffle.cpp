// Fig. 11: streaming bulk transfer — chunked DPU decode with bounded
// memory (the shuffle-style workload the unary datapath cannot carry).
//
// A client streams multi-MB payloads of repeated sh.ShuffleRow records
// over xRPC. The DPU proxy cuts the byte stream at protobuf record
// boundaries into ~160 KiB pieces, decodes each piece on the CodecPool
// (kDecodeChunk — the offloaded validation work), and forwards the raw
// wire bytes to the host as fragmented RPC-over-RDMA calls, never holding
// more than the configured per-stream budget. Backpressure composes end
// to end: host acks release budget, released budget becomes xRPC credit,
// and a sender that outruns the datapath stalls at the xRPC edge.
//
// Reported: end-to-end stream throughput (bytes/s over simverbs), pool
// chunk-decode throughput, credit stalls, and the peak per-stream bytes
// held by the proxy.
//
// In-bench acceptance gates (exit 3 on violation):
//   - bit-for-bit parity: the host's reassembled stream equals the
//     WireCodec oracle concatenation, byte for byte (checked inline) and
//     by digest in the final response;
//   - bounded memory: proxy stream_peak_bytes <= per_stream_budget;
//   - backpressure: the client observed at least one credit stall;
//   - trace tiling (full runs only): the streaming span tree keeps the
//     stage-spans-sum-to-e2e invariant, including the new kStreamTransfer
//     and kStreamDrainWait stages.
//
// Usage: fig11_shuffle [--quick] [--json <path>]
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "common/endian.hpp"
#include "grpccompat/dpu_proxy.hpp"
#include "grpccompat/host_service.hpp"
#include "grpccompat/manifest.hpp"
#include "trace/collector.hpp"
#include "trace/trace.hpp"
#include "xrpc/channel.hpp"

namespace {

using namespace dpurpc;

constexpr std::string_view kSchema = R"(
syntax = "proto3";
package sh;
message ShuffleRow { uint64 row_id = 1; bytes cells = 2; }
message ShuffleAck { uint64 rows = 1; uint64 total = 2; fixed64 digest = 3; }
service Shuffle { rpc Rows (ShuffleRow) returns (ShuffleAck); }
)";

uint64_t fnv1a(ByteSpan data, uint64_t h = 1469598103934665603ull) {
  for (std::byte b : data) {
    h ^= static_cast<uint64_t>(b);
    h *= 1099511628211ull;
  }
  return h;
}

struct StreamResult {
  double seconds = 0;
  uint64_t stalls = 0;
};

struct Deployment {
  proto::DescriptorPool pool;
  std::unique_ptr<grpccompat::OffloadManifest> manifest;
  std::unique_ptr<simverbs::ProtectionDomain> dpu_pd, host_pd;
  std::unique_ptr<rdmarpc::Connection> dpu_conn, host_conn;
  std::unique_ptr<grpccompat::HostEngine> host;
  std::unique_ptr<grpccompat::DpuProxy> proxy;
  std::thread host_thread;
  std::atomic<bool> stop{false};
  uint16_t port = 0;

  // Parity state shared with the host-side stream handler.
  const Bytes* oracle = nullptr;
  std::atomic<bool> parity_failed{false};

  ~Deployment() {
    if (proxy) proxy->stop();
    stop.store(true);
    if (host_conn) host_conn->interrupt();
    if (host_thread.joinable()) host_thread.join();
  }
};

bool setup(Deployment& d) {
  proto::SchemaParser parser(d.pool);
  if (!parser.parse_and_link(kSchema).is_ok()) return false;
  auto built = grpccompat::OffloadManifest::build(d.pool,
                                                  arena::StdLibFlavor::kLibstdcpp);
  if (!built.is_ok()) return false;
  d.manifest = std::make_unique<grpccompat::OffloadManifest>(std::move(*built));

  d.dpu_pd = std::make_unique<simverbs::ProtectionDomain>("dpu");
  d.host_pd = std::make_unique<simverbs::ProtectionDomain>("host");
  // Fragmented stream pieces ride the DPU->host direction in (up to)
  // 64 KiB blocks; size both ends so a full budget's worth is in flight.
  rdmarpc::ConnectionConfig ccfg, scfg;
  ccfg.sbuf_size = 32ull << 20;
  scfg.rbuf_size = 32ull << 20;
  d.dpu_conn = std::make_unique<rdmarpc::Connection>(rdmarpc::Role::kClient,
                                                     d.dpu_pd.get(), ccfg);
  d.host_conn = std::make_unique<rdmarpc::Connection>(rdmarpc::Role::kServer,
                                                      d.host_pd.get(), scfg);
  if (!rdmarpc::Connection::connect(*d.dpu_conn, *d.host_conn).is_ok()) {
    return false;
  }
  d.host = std::make_unique<grpccompat::HostEngine>(d.host_conn.get(),
                                                    d.manifest.get(), &d.pool);

  // The host's shuffle sink: digest + inline byte-for-byte comparison
  // against the oracle (the bench owns both ends, so exact parity is
  // directly checkable, not just digest-inferred).
  auto st = d.host->register_stream(
      "sh.Shuffle/Rows",
      [&d](const grpccompat::ServerContext&, uint32_t, ByteSpan chunk,
           bool end, Bytes& final_response) -> Status {
        static thread_local uint64_t offset = 0;
        static thread_local uint64_t digest = 1469598103934665603ull;
        if (end) {
          const auto* ack_desc = d.pool.find_message("sh.ShuffleAck");
          proto::DynamicMessage ack(ack_desc);
          ack.set_uint64(ack_desc->field_by_name("total"), offset);
          ack.set_uint64(ack_desc->field_by_name("digest"), digest);
          final_response = proto::WireCodec::serialize(ack);
          offset = 0;
          digest = 1469598103934665603ull;
          return Status::ok();
        }
        if (d.oracle != nullptr) {
          if (offset + chunk.size() > d.oracle->size() ||
              std::memcmp(chunk.data(), d.oracle->data() + offset,
                          chunk.size()) != 0) {
            d.parity_failed.store(true);
          }
        }
        digest = fnv1a(chunk, digest);
        offset += chunk.size();
        return Status::ok();
      });
  if (!st.is_ok()) return false;

  d.host_thread = std::thread([&d] {
    while (!d.stop.load(std::memory_order_relaxed)) {
      auto n = d.host->event_loop_once();
      if (!n.is_ok()) return;
      if (*n == 0) d.host->wait(1);
    }
  });

  d.proxy = std::make_unique<grpccompat::DpuProxy>(d.dpu_conn.get(),
                                                   d.manifest.get());
  grpccompat::StreamOptions sopts;  // defaults: 1 MiB budget, 160 KiB pieces
  d.proxy->set_stream_options(sopts);
  auto port = d.proxy->start();
  if (!port.is_ok()) return false;
  d.port = *port;
  return true;
}

/// One full stream of the oracle bytes; returns wall seconds + stalls.
bool run_stream(Deployment& d, xrpc::Channel& chan, const Bytes& oracle,
                uint64_t oracle_digest, StreamResult* out) {
  auto stream = chan.open_stream("sh.Shuffle/Rows");
  if (!stream.is_ok()) {
    std::fprintf(stderr, "fig11: open_stream: %s\n",
                 stream.status().to_string().c_str());
    return false;
  }
  auto t0 = std::chrono::steady_clock::now();
  constexpr size_t kWrite = 64 * 1024;
  for (size_t off = 0; off < oracle.size(); off += kWrite) {
    size_t n = std::min(kWrite, oracle.size() - off);
    if (auto st = (*stream)->write(ByteSpan(oracle.data() + off, n), 30000);
        !st.is_ok()) {
      std::fprintf(stderr, "fig11: write: %s\n", st.to_string().c_str());
      return false;
    }
  }
  auto resp = (*stream)->finish(60000);
  auto t1 = std::chrono::steady_clock::now();
  if (!resp.is_ok()) {
    std::fprintf(stderr, "fig11: finish: %s\n",
                 resp.status().to_string().c_str());
    return false;
  }
  const auto* ack_desc = d.pool.find_message("sh.ShuffleAck");
  proto::DynamicMessage ack(ack_desc);
  if (!proto::WireCodec::parse(ByteSpan(*resp), ack).is_ok()) {
    std::fprintf(stderr, "fig11: final response does not parse\n");
    return false;
  }
  if (ack.get_uint64(ack_desc->field_by_name("total")) != oracle.size() ||
      ack.get_uint64(ack_desc->field_by_name("digest")) != oracle_digest) {
    std::fprintf(stderr, "fig11: digest/size mismatch in final ack\n");
    d.parity_failed.store(true);
  }
  out->seconds = std::chrono::duration<double>(t1 - t0).count();
  out->stalls = (*stream)->credit_stalls();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = bench::smoke_mode();
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const uint64_t stream_bytes = quick ? (3ull << 20) / 2 : 8ull << 20;
  const int n_streams = quick ? 1 : 3;

  Deployment d;
  if (!setup(d)) {
    std::fprintf(stderr, "fig11: deployment setup failed\n");
    return 1;
  }
  const size_t budget = d.proxy->stream_options().per_stream_budget;

  // The oracle: WireCodec-serialized ShuffleRow records, concatenated —
  // the exact bytes the host must reassemble.
  Bytes oracle;
  uint64_t n_rows = 0;
  {
    std::mt19937_64 rng(kDefaultSeed);
    const auto* row_desc = d.pool.find_message("sh.ShuffleRow");
    while (oracle.size() < stream_bytes) {
      proto::DynamicMessage m(row_desc);
      m.set_uint64(row_desc->field_by_name("row_id"), n_rows);
      m.set_string(row_desc->field_by_name("cells"),
                   random_ascii(rng, 256 + rng() % 1792));
      Bytes wire = proto::WireCodec::serialize(m);
      oracle.insert(oracle.end(), wire.begin(), wire.end());
      ++n_rows;
    }
  }
  const uint64_t oracle_digest = fnv1a(ByteSpan(oracle));
  d.oracle = &oracle;

  std::printf("Fig. 11 — streaming shuffle: chunked DPU decode with bounded "
              "memory\n");
  std::printf("%" PRIu64 " rows, %.1f MiB per stream, %zu KiB budget, "
              "%d stream(s)\n\n",
              n_rows, static_cast<double>(oracle.size()) / (1 << 20),
              budget >> 10, n_streams);

  auto chan = xrpc::Channel::connect(d.port);
  if (!chan.is_ok()) {
    std::fprintf(stderr, "fig11: connect: %s\n",
                 chan.status().to_string().c_str());
    return 1;
  }

  double total_seconds = 0;
  uint64_t total_stalls = 0;
  std::printf("%-8s %12s %14s %10s\n", "stream", "seconds", "MiB/s", "stalls");
  for (int s = 0; s < n_streams; ++s) {
    StreamResult r;
    if (!run_stream(d, **chan, oracle, oracle_digest, &r)) return 1;
    total_seconds += r.seconds;
    total_stalls += r.stalls;
    std::printf("%-8d %12.3f %14.1f %10" PRIu64 "\n", s, r.seconds,
                static_cast<double>(oracle.size()) / (1 << 20) / r.seconds,
                r.stalls);
  }
  const double stream_mibs = static_cast<double>(oracle.size()) * n_streams /
                             (1 << 20) / total_seconds;

  // Pool-side chunk decode throughput (the offloaded work product).
  uint64_t decode_bytes = 0, decode_busy_ns = 0;
  const dpu::CodecPool& pool = d.proxy->codec_pool();
  for (size_t w = 0; w < pool.worker_count(); ++w) {
    auto ws = pool.worker_stats(w);
    decode_bytes += ws.bytes_decoded;
    decode_busy_ns += ws.busy_ns;
  }
  const double decode_mibs =
      decode_busy_ns == 0 ? 0.0
                          : static_cast<double>(decode_bytes) / (1 << 20) /
                                (static_cast<double>(decode_busy_ns) * 1e-9);

  const auto& stats = d.proxy->stats();
  const uint64_t peak = stats.stream_peak_bytes.load();
  std::printf("\nstream throughput: %.1f MiB/s over simverbs\n", stream_mibs);
  std::printf("pool chunk decode: %" PRIu64 " bytes in %.3f ms busy "
              "(%.1f MiB/s per worker-thread)\n",
              decode_bytes, static_cast<double>(decode_busy_ns) * 1e-6,
              decode_mibs);
  std::printf("proxy peak held:   %" PRIu64 " bytes (budget %zu)\n", peak,
              budget);
  std::printf("credit stalls:     %" PRIu64 "\n", total_stalls);

  // ---- acceptance gates -------------------------------------------------
  bool failed = false;
  if (d.parity_failed.load()) {
    std::fprintf(stderr, "FAIL: reassembled stream differs from the "
                         "WireCodec oracle\n");
    failed = true;
  }
  if (peak > budget) {
    std::fprintf(stderr,
                 "FAIL: proxy held %" PRIu64 " bytes, budget %zu — "
                 "per-stream memory is not bounded\n",
                 peak, budget);
    failed = true;
  }
  if (total_stalls == 0) {
    std::fprintf(stderr, "FAIL: no credit stalls — backpressure never "
                         "reached the xRPC edge\n");
    failed = true;
  }
  if (stats.stream_aborts.load() != 0 ||
      stats.deserialize_failures.load() != 0) {
    std::fprintf(stderr, "FAIL: aborts/decode failures on a clean stream\n");
    failed = true;
  }

  // ---- trace tiling on the streaming path -------------------------------
  // One more stream under full tracing: the span tree must keep the
  // stages-sum-to-e2e invariant with the new stream stages present.
  double trace_sum_ratio = 0.0;
  if (DPURPC_TRACE_ENABLED) {
    {
      std::vector<trace::SpanRecord> junk;
      trace::Tracer::instance().drain_into(junk);
    }
    trace::TraceConfig config;
    config.mode = trace::Mode::kFull;
    trace::Tracer::instance().configure(config);
    trace::TraceCollector::Options copts;
    copts.tail_keep_every = 1;
    copts.orphan_max_age = 10000;
    trace::TraceCollector collector(copts);

    StreamResult r;
    if (!run_stream(d, **chan, oracle, oracle_digest, &r)) return 1;
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (collector.traces_completed() < 1 &&
           std::chrono::steady_clock::now() < deadline) {
      collector.collect();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    trace::Tracer::instance().configure(trace::TraceConfig{});
    if (collector.retained().empty()) {
      std::fprintf(stderr, "FAIL: traced stream produced no span tree\n");
      failed = true;
    } else {
      const trace::SpanTree& tree = collector.retained().front();
      const trace::Span* root = tree.root();
      int transfer = 0, drain = 0;
      uint64_t child_sum = 0;
      for (const trace::Span& sp : tree.spans) {
        if (root != nullptr && &sp == root) continue;
        child_sum += sp.duration_ns();
        if (sp.stage == trace::Stage::kStreamTransfer) ++transfer;
        if (sp.stage == trace::Stage::kStreamDrainWait) ++drain;
      }
      if (root == nullptr || transfer != 1 || drain != 1) {
        std::fprintf(stderr,
                     "FAIL: streaming trace malformed (root=%d transfer=%d "
                     "drain=%d)\n",
                     root != nullptr, transfer, drain);
        failed = true;
      } else {
        trace_sum_ratio = static_cast<double>(child_sum) /
                          static_cast<double>(root->duration_ns());
        std::printf("trace tiling:      stage spans sum to %.2fx of the "
                    "e2e root\n",
                    trace_sum_ratio);
        // Tiling: stages partition the root; 5%% slack for clock reads.
        // Skipped under quick/smoke — tiny runs make the ratio noisy.
        if (!quick && trace_sum_ratio > 1.05) {
          std::fprintf(stderr,
                       "FAIL: stream stage spans sum to %.2fx of e2e — "
                       "stages no longer tile\n",
                       trace_sum_ratio);
          failed = true;
        }
      }
    }
  }

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::perror("fig11_shuffle: --json open");
      return 65;
    }
    std::fprintf(f,
                 "{\n  \"benchmark\": \"fig11_shuffle\",\n"
                 "  \"stream_bytes\": %zu,\n  \"streams\": %d,\n"
                 "  \"rows\": %" PRIu64 ",\n"
                 "  \"stream_mib_s\": %.2f,\n"
                 "  \"decode_bytes\": %" PRIu64 ",\n"
                 "  \"decode_busy_ns\": %" PRIu64 ",\n"
                 "  \"decode_mib_s\": %.2f,\n"
                 "  \"credit_stalls\": %" PRIu64 ",\n"
                 "  \"peak_bytes\": %" PRIu64 ",\n"
                 "  \"budget_bytes\": %zu,\n"
                 "  \"trace_sum_ratio\": %.3f\n}\n",
                 oracle.size(), n_streams, n_rows, stream_mibs, decode_bytes,
                 decode_busy_ns, decode_mibs, total_stalls, peak, budget,
                 trace_sum_ratio);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (failed) return 3;
  std::printf("\nall gates pass: bit-for-bit parity, peak <= budget, "
              "backpressure at the xRPC edge\n");
  return 0;
}
