// Ablation: UTF-8 validation cost (§V: one of the three deserialization
// cost centers; §VI.C.4 credits validation offload for part of the chars
// win). Compares: deserializing the x8000 Chars message with validation
// on vs off, and the SWAR fast path vs the scalar DFA on raw buffers.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "wire/utf8.hpp"

namespace {

using namespace dpurpc;

bench::BenchEnv& env() {
  static bench::BenchEnv e;
  return e;
}

void BM_CharsDeserialize(benchmark::State& state) {
  bool validate = state.range(1) != 0;
  auto n = static_cast<size_t>(state.range(0));
  Bytes wire = bench::make_char_array_wire(env(), n);
  adt::CodecOptions opts;
  opts.validate_utf8 = validate;
  adt::ArenaDeserializer deser(&env().adt, opts);
  arena::OwningArena arena(1 << 21);
  for (auto _ : state) {
    arena.reset();
    auto obj = deser.deserialize(env().chars_class, ByteSpan(wire), arena, {});
    if (!obj.is_ok()) state.SkipWithError(obj.status().to_string().c_str());
    benchmark::DoNotOptimize(*obj);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  state.SetLabel(validate ? "validate_utf8=on" : "validate_utf8=off");
}

BENCHMARK(BM_CharsDeserialize)
    ->Args({8000, 1})
    ->Args({8000, 0})
    ->Args({65535, 1})
    ->Args({65535, 0});

void BM_Utf8Swar(benchmark::State& state) {
  std::mt19937_64 rng(kDefaultSeed);
  std::string s = random_ascii(rng, static_cast<size_t>(state.range(0)));
  const auto* p = reinterpret_cast<const uint8_t*>(s.data());
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::validate_utf8(p, s.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}

void BM_Utf8Scalar(benchmark::State& state) {
  std::mt19937_64 rng(kDefaultSeed);
  std::string s = random_ascii(rng, static_cast<size_t>(state.range(0)));
  const auto* p = reinterpret_cast<const uint8_t*>(s.data());
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::validate_utf8_scalar(p, s.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}

BENCHMARK(BM_Utf8Swar)->Arg(8000)->Arg(65536);
BENCHMARK(BM_Utf8Scalar)->Arg(8000)->Arg(65536);

}  // namespace

int main(int argc, char** argv) {
  return dpurpc::bench::run_benchmark_main(argc, argv);
}
