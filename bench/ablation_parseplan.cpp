// Ablation: parse plans vs the interpretive deserializer loop.
//
// The plan path (parse_plan.hpp) replaces the per-field binary-search
// lookup + nested type/wire-type switch with one precompiled slot per wire
// tag, next-tag prediction, and batch varint decode for packed payloads.
// This harness measures both paths over the paper's three synthetic
// messages (§VI.C.1) so the win is attributable: the x512 Ints workload is
// the varint-bound case the batch decoder targets, Small is the
// dispatch-bound case prediction targets, and x8000 Chars is memcpy/UTF-8
// bound — the plan must never lose there.
//
// Each benchmark also reports the prediction hit rate, computed from the
// process-wide deserializer counters (src/metrics).
#include <benchmark/benchmark.h>

#include "arena/arena.hpp"
#include "bench_util.hpp"
#include "metrics/metrics.hpp"

namespace {

using namespace dpurpc;

bench::BenchEnv& env() {
  static bench::BenchEnv e;
  return e;
}

void run_path(benchmark::State& state, uint32_t class_index, const Bytes& wire,
              bool use_plan) {
  adt::CodecOptions opts;
  opts.use_parse_plan = use_plan;
  adt::ArenaDeserializer deser(&env().adt, opts);
  arena::OwningArena arena(1 << 21);

  auto& fields = metrics::default_counter("dpurpc_deser_plan_fields_total", "");
  auto& hits = metrics::default_counter("dpurpc_deser_prediction_hits_total", "");
  const uint64_t f0 = fields.value(), h0 = hits.value();

  for (auto _ : state) {
    arena.reset();
    auto obj = deser.deserialize(class_index, ByteSpan(wire), arena, {});
    if (!obj.is_ok()) state.SkipWithError(obj.status().to_string().c_str());
    benchmark::DoNotOptimize(*obj);
  }

  const uint64_t df = fields.value() - f0;
  state.counters["wire_bytes"] = static_cast<double>(wire.size());
  state.counters["pred_hit_rate"] =
      df ? static_cast<double>(hits.value() - h0) / static_cast<double>(df) : 0.0;
  state.SetLabel(use_plan ? "parse_plan" : "interpretive");
}

void BM_Small(benchmark::State& state) {
  Bytes wire = bench::make_small_wire(env());
  run_path(state, env().small_class, wire, state.range(0) != 0);
}

void BM_Ints(benchmark::State& state) {
  Bytes wire = bench::make_int_array_wire(env(), static_cast<size_t>(state.range(0)));
  run_path(state, env().ints_class, wire, state.range(1) != 0);
}

void BM_Chars(benchmark::State& state) {
  Bytes wire = bench::make_char_array_wire(env(), static_cast<size_t>(state.range(0)));
  run_path(state, env().chars_class, wire, state.range(1) != 0);
}

BENCHMARK(BM_Small)->Arg(1)->Arg(0);
BENCHMARK(BM_Ints)->Args({512, 1})->Args({512, 0})->Args({4096, 1})->Args({4096, 0});
BENCHMARK(BM_Chars)->Args({8000, 1})->Args({8000, 0});

}  // namespace

int main(int argc, char** argv) {
  return dpurpc::bench::run_benchmark_main(argc, argv);
}
