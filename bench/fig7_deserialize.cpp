// Fig. 7: time to deserialize a single message (int array / char array)
// versus element count, on the CPU and on the (simulated) DPU.
//
// CPU series: the custom stack-based arena deserializer, measured directly
// (google-benchmark manual timing). DPU series: the same measured work
// scaled by the calibrated per-workload slowdown (DESIGN.md §1) — the
// paper's own Fig. 7 ratios (1.89× varint, 2.51× chars) are the model's
// defaults, so the *shape* (DPU above CPU, linear asymptote, noisier at
// low element counts) is reproduced while absolute numbers reflect this
// machine.
//
// Paper asymptotes for reference: ≈2.75 ns/element (ints, CPU) and
// ≈42.5 ns/KiB (chars, CPU); DPU takes 1.89× / 2.51× longer.
#include <benchmark/benchmark.h>

#include "arena/arena.hpp"
#include "bench_util.hpp"
#include "common/cpu_timer.hpp"

namespace {

using namespace dpurpc;
using bench::BenchEnv;

BenchEnv& env() {
  static BenchEnv e;
  return e;
}

void run_deserialize(benchmark::State& state, uint32_t class_index,
                     const Bytes& wire, dpu::Processor proc,
                     dpu::WorkloadClass workload, int64_t elements) {
  arena::OwningArena arena(1 << 21);
  dpu::CostModel model;
  for (auto _ : state) {
    arena.reset();
    ThreadCpuTimer timer;
    auto obj = env().deserializer->deserialize(class_index, ByteSpan(wire), arena, {});
    double cpu_ns = static_cast<double>(timer.elapsed_ns());
    if (!obj.is_ok()) state.SkipWithError(obj.status().to_string().c_str());
    benchmark::DoNotOptimize(*obj);
    state.SetIterationTime(model.scale_ns(proc, workload, cpu_ns) * 1e-9);
  }
  state.counters["elements"] = static_cast<double>(elements);
  state.counters["wire_bytes"] = static_cast<double>(wire.size());
  state.counters["ns_per_elem"] = benchmark::Counter(
      static_cast<double>(elements), benchmark::Counter::kIsIterationInvariantRate |
                                         benchmark::Counter::kInvert);
}

void BM_IntArray_CPU(benchmark::State& state) {
  auto n = static_cast<size_t>(state.range(0));
  Bytes wire = bench::make_int_array_wire(env(), n);
  run_deserialize(state, env().ints_class, wire, dpu::Processor::kHostCpu,
                  dpu::WorkloadClass::kVarintDecode, state.range(0));
}

void BM_IntArray_DPU(benchmark::State& state) {
  auto n = static_cast<size_t>(state.range(0));
  Bytes wire = bench::make_int_array_wire(env(), n);
  run_deserialize(state, env().ints_class, wire, dpu::Processor::kDpu,
                  dpu::WorkloadClass::kVarintDecode, state.range(0));
}

void BM_CharArray_CPU(benchmark::State& state) {
  auto n = static_cast<size_t>(state.range(0));
  Bytes wire = bench::make_char_array_wire(env(), n);
  run_deserialize(state, env().chars_class, wire, dpu::Processor::kHostCpu,
                  dpu::WorkloadClass::kByteCopy, state.range(0));
}

void BM_CharArray_DPU(benchmark::State& state) {
  auto n = static_cast<size_t>(state.range(0));
  Bytes wire = bench::make_char_array_wire(env(), n);
  run_deserialize(state, env().chars_class, wire, dpu::Processor::kDpu,
                  dpu::WorkloadClass::kByteCopy, state.range(0));
}

// The paper shows "a more realistic low count of elements" plus enough
// range to see the linear asymptote; 512 and 8000 are the Fig. 8 points.
void fig7_int_args(benchmark::internal::Benchmark* b) {
  for (int64_t n : {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}) b->Arg(n);
}
void fig7_char_args(benchmark::internal::Benchmark* b) {
  for (int64_t n : {1, 4, 16, 64, 256, 1024, 4096, 8000, 32768}) b->Arg(n);
}

BENCHMARK(BM_IntArray_CPU)->Apply(fig7_int_args)->UseManualTime();
BENCHMARK(BM_IntArray_DPU)->Apply(fig7_int_args)->UseManualTime();
BENCHMARK(BM_CharArray_CPU)->Apply(fig7_char_args)->UseManualTime();
BENCHMARK(BM_CharArray_DPU)->Apply(fig7_char_args)->UseManualTime();

}  // namespace

int main(int argc, char** argv) {
  return dpurpc::bench::run_benchmark_main(argc, argv);
}
