// Ablation: why the send buffer needs a real (VMA-style) offset allocator
// instead of a ring buffer (§IV: "RPCs can be completed out-of-order on
// the server side: a future request can outlive a past one, making dynamic
// allocation a better solution than standard ring buffers").
//
// Replays the same block-lifetime trace — allocations freed out of order
// with a configurable skew — against the OffsetAllocator and against a
// ring buffer that can only reclaim in FIFO order. The ring stalls as soon
// as one long-lived block pins its head; the offset allocator keeps going.
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <random>

#include "common/rng.hpp"
#include "rdmarpc/offset_allocator.hpp"

namespace {

using namespace dpurpc;
using rdmarpc::OffsetAllocator;

constexpr uint64_t kCapacity = 1 << 20;
constexpr uint64_t kBlock = 8192;
// DPURPC_BENCH_SMOKE (CI's bench-smoke lane) shrinks the op count to a
// quick correctness pass; the numbers it prints are then meaningless.
const int kOps = std::getenv("DPURPC_BENCH_SMOKE") != nullptr ? 5000 : 200000;

/// A ring that frees strictly FIFO: out-of-order completions must wait.
class RingModel {
 public:
  explicit RingModel(uint64_t capacity) : capacity_(capacity) {}

  std::optional<uint64_t> allocate(uint64_t size) {
    size = align_up(size, kBlockAlign);
    if (used_ + size > capacity_) return std::nullopt;
    uint64_t off = head_;
    head_ = (head_ + size) % capacity_;
    used_ += size;
    live_.push_back({off, size, false});
    return off;
  }

  // Mark freed; space only reclaims when the FIFO head is freed.
  void free(uint64_t offset) {
    for (auto& b : live_) {
      if (b.offset == offset) {
        b.freed = true;
        break;
      }
    }
    while (!live_.empty() && live_.front().freed) {
      used_ -= live_.front().size;
      live_.pop_front();
    }
  }

 private:
  struct Block {
    uint64_t offset, size;
    bool freed;
  };
  uint64_t capacity_, head_ = 0, used_ = 0;
  std::deque<Block> live_;
};

/// Trace: allocate blocks; free them with probability-weighted reordering
/// (higher skew = more out-of-order completion).
template <typename Alloc>
std::pair<uint64_t, uint64_t> replay(Alloc& alloc, double skew, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<uint64_t> live;
  uint64_t ok = 0, stalled = 0;
  for (int i = 0; i < kOps; ++i) {
    if (live.size() < 64 && (live.empty() || rng() % 2 == 0)) {
      auto off = alloc.allocate(kBlock);
      if (off.has_value()) {
        live.push_back(*off);
        ++ok;
      } else {
        ++stalled;
        // Relieve pressure the way the protocol would: wait for (free) the
        // oldest outstanding block.
        if (!live.empty()) {
          alloc.free(live.front());
          live.erase(live.begin());
        }
      }
    } else if (!live.empty()) {
      // Free out-of-order with probability `skew`, else FIFO.
      size_t idx = (rng() % 1000) < skew * 1000 ? rng() % live.size() : 0;
      alloc.free(live[idx]);
      live.erase(live.begin() + static_cast<long>(idx));
    }
  }
  return {ok, stalled};
}

}  // namespace

int main() {
  std::printf("Ablation: offset allocator vs ring buffer under out-of-order "
              "completion (§IV)\n\n");
  std::printf("%-8s %-18s %-12s %-18s %-12s\n", "skew", "offset:allocs", "stalls",
              "ring:allocs", "stalls");
  for (double skew : {0.0, 0.1, 0.3, 0.5, 0.9}) {
    OffsetAllocator offset_alloc(kCapacity);
    RingModel ring(kCapacity);
    auto [o_ok, o_stall] = replay(offset_alloc, skew, kDefaultSeed);
    auto [r_ok, r_stall] = replay(ring, skew, kDefaultSeed);
    std::printf("%-8.1f %-18llu %-12llu %-18llu %-12llu\n", skew,
                static_cast<unsigned long long>(o_ok),
                static_cast<unsigned long long>(o_stall),
                static_cast<unsigned long long>(r_ok),
                static_cast<unsigned long long>(r_stall));
  }
  std::printf("\nThe ring's stall count grows with completion skew (its head pins\n"
              "reclamation); the offset allocator reuses holes immediately.\n");
  return 0;
}
