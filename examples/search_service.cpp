// search_service: both offload directions plus background execution.
//
// Extends the paper's implemented scope with the two features it sketches:
//   * response-serialization offload (§III.A "can be implemented
//     similarly"): the host handler BUILDS the response object in place
//     with a LayoutBuilder; the DPU serializes it for the client with the
//     ADT-driven ObjectSerializer. The host never touches wire bytes.
//   * background RPCs (§III.D): the slow "Reindex" method runs on the
//     host's thread pool while fast "Find" calls keep flowing foreground.
//
//   $ ./search_service [num_queries]
#include <atomic>
#include <iostream>
#include <map>
#include <thread>

#include "common/cpu_timer.hpp"
#include "grpccompat/dpu_proxy.hpp"
#include "grpccompat/host_service.hpp"
#include "proto/schema_parser.hpp"
#include "xrpc/channel.hpp"

using namespace dpurpc;

static constexpr std::string_view kSearchProto = R"(
syntax = "proto3";
package search;

message Query { string text = 1; uint32 top_k = 2; }
message Hit { string doc = 1; double score = 2; }
message Results { repeated Hit hits = 1; uint64 scanned = 2; }
message ReindexRequest { repeated string docs = 1; }
message ReindexReply { uint64 indexed = 1; }

service Search {
  rpc Find (Query) returns (Results);
  rpc Reindex (ReindexRequest) returns (ReindexReply);
}
)";

int main(int argc, char** argv) {
  const int kQueries = argc > 1 ? std::atoi(argv[1]) : 200;

  proto::DescriptorPool pool;
  proto::SchemaParser parser(pool);
  if (auto st = parser.parse_and_link(kSearchProto); !st.is_ok()) {
    std::cerr << st.to_string() << "\n";
    return 1;
  }
  auto manifest = grpccompat::OffloadManifest::build(pool, arena::StdLibFlavor::kLibstdcpp);
  if (!manifest.is_ok()) {
    std::cerr << manifest.status().to_string() << "\n";
    return 1;
  }

  simverbs::ProtectionDomain dpu_pd("dpu"), host_pd("host");
  rdmarpc::Connection dpu_conn(rdmarpc::Role::kClient, &dpu_pd, {});
  rdmarpc::Connection host_conn(rdmarpc::Role::kServer, &host_pd, {});
  if (auto st = rdmarpc::Connection::connect(dpu_conn, host_conn); !st.is_ok()) {
    std::cerr << st.to_string() << "\n";
    return 1;
  }

  grpccompat::HostEngine host(&host_conn, &*manifest, &pool);
  // Background pool for the slow method (§III.D).
  if (auto st = host.rpc_server().enable_background({.threads = 2}); !st.is_ok()) {
    std::cerr << st.to_string() << "\n";
    return 1;
  }

  // A toy inverted index. The foreground poller thread and the background
  // Reindex workers share it; a real service would shard or lock finer.
  std::mutex index_mu;
  std::map<std::string, std::vector<std::string>> index;  // term -> docs

  // Fully offloaded Find: in-place request in, in-place response out.
  (void)host.register_unary_inplace(
      "search.Search/Find",
      [&](const grpccompat::ServerContext&, const adt::LayoutView& req,
          adt::LayoutBuilder& resp) {
        std::string term(req.get_string(1));
        uint64_t top_k = req.get_uint64(2);
        std::lock_guard lk(index_mu);
        uint64_t scanned = 0;
        if (auto it = index.find(term); it != index.end()) {
          uint64_t n = std::min<uint64_t>(top_k, it->second.size());
          for (uint64_t i = 0; i < n; ++i) {
            auto hit = resp.add_message(1);
            if (!hit.is_ok()) return hit.status();
            DPURPC_RETURN_IF_ERROR(hit->set_string(1, it->second[i]));
            DPURPC_RETURN_IF_ERROR(hit->set_double(2, 1.0 / (1.0 + static_cast<double>(i))));
          }
          scanned = it->second.size();
        }
        return resp.set_uint64(2, scanned);
      });

  // Background Reindex (copy path: bulk data, latency-insensitive).
  const auto* reindex_req = pool.find_message("search.ReindexRequest");
  const auto* reindex_entry = manifest->find_by_name("search.Search/Reindex");
  (void)host.rpc_server().register_background_handler(
      reindex_entry->method_id,
      [&](const rdmarpc::RequestView& req, Bytes& out) {
        adt::LayoutView view(&manifest->adt(), reindex_entry->input_class, req.object);
        uint64_t added = 0;
        {
          std::lock_guard lk(index_mu);
          for (uint32_t i = 0; i < view.repeated_size(1); ++i) {
            std::string doc(view.repeated_string(1, i));
            auto term = doc.substr(0, doc.find(' '));  // toy tokenizer: first word
            index[term].push_back(doc);
            ++added;
          }
        }
        proto::DynamicMessage reply(pool.find_message("search.ReindexReply"));
        reply.set_uint64(reply.descriptor()->field_by_name("indexed"), added);
        proto::WireCodec::serialize(reply, out);
        return Status::ok();
      });
  (void)reindex_req;

  std::atomic<bool> stop{false};
  std::thread host_thread([&] {
    while (!stop.load()) {
      auto n = host.event_loop_once();
      if (!n.is_ok()) return;
      if (*n == 0) host.wait(1);
    }
  });

  grpccompat::DpuProxy proxy(&dpu_conn, &*manifest);
  auto port = proxy.start();
  if (!port.is_ok()) {
    std::cerr << port.status().to_string() << "\n";
    return 1;
  }
  auto chan = xrpc::Channel::connect(*port);
  if (!chan.is_ok()) {
    std::cerr << chan.status().to_string() << "\n";
    return 1;
  }

  // 1. Index a corpus via the background method.
  {
    proto::DynamicMessage r(pool.find_message("search.ReindexRequest"));
    const auto* docs_field = r.descriptor()->field_by_name("docs");
    const char* corpus[] = {
        "rdma verbs and queue pairs",  "rdma write with immediate",
        "protobuf varint decoding",    "protobuf arena deserialization",
        "dpu offload architectures",   "dpu bluefield three cores",
        "rdma reliable connections",   "protobuf wire format",
    };
    for (const char* d : corpus) r.add_string(docs_field, d);
    Bytes wire = proto::WireCodec::serialize(r);
    auto resp = (*chan)->call("search.Search/Reindex", ByteSpan(wire));
    if (!resp.is_ok()) {
      std::cerr << "reindex: " << resp.status().to_string() << "\n";
      return 1;
    }
    proto::DynamicMessage reply(pool.find_message("search.ReindexReply"));
    (void)proto::WireCodec::parse(ByteSpan(*resp), reply);
    std::cout << "indexed "
              << reply.get_uint64(reply.descriptor()->field_by_name("indexed"))
              << " docs (background RPC on the host's pool)\n";
  }

  // 2. Query hot loop through the fully offloaded path.
  const auto* query_desc = pool.find_message("search.Query");
  const auto* results_desc = pool.find_message("search.Results");
  const char* terms[] = {"rdma", "protobuf", "dpu", "missing"};
  uint64_t hits_total = 0;
  WallTimer wall;
  for (int i = 0; i < kQueries; ++i) {
    proto::DynamicMessage q(query_desc);
    q.set_string(query_desc->field_by_name("text"), terms[i % 4]);
    q.set_uint64(query_desc->field_by_name("top_k"), 2);
    Bytes wire = proto::WireCodec::serialize(q);
    auto resp = (*chan)->call("search.Search/Find", ByteSpan(wire));
    if (!resp.is_ok()) {
      std::cerr << "find: " << resp.status().to_string() << "\n";
      return 1;
    }
    proto::DynamicMessage r(results_desc);
    (void)proto::WireCodec::parse(ByteSpan(*resp), r);
    hits_total += r.repeated_size(results_desc->field_by_name("hits"));
  }
  double secs = wall.elapsed_s();
  std::cout << kQueries << " fully-offloaded queries in " << secs * 1e3 << " ms ("
            << static_cast<uint64_t>(kQueries / secs) << " qps), " << hits_total
            << " hits\n";
  std::cout << "host (de)serializations on the Find path: 0 — requests arrive as\n"
            << "objects, responses leave as objects; the DPU handles both wires.\n";

  proxy.stop();
  stop.store(true);
  host_conn.interrupt();
  host_thread.join();
  return 0;
}
