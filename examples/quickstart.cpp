// Quickstart: the smallest complete offloaded deployment (Fig. 1).
//
//   xRPC client ──TCP──▶ DPU proxy ──RPC over RDMA──▶ host business logic
//
// The proxy deserializes the protobuf request on the "DPU"; the host
// receives a ready-built C++ object and never runs a deserializer.
//
//   $ ./quickstart
#include <iostream>
#include <thread>

#include "grpccompat/dpu_proxy.hpp"
#include "grpccompat/host_service.hpp"
#include "proto/schema_parser.hpp"
#include "xrpc/channel.hpp"

using namespace dpurpc;

static constexpr std::string_view kGreeterProto = R"(
syntax = "proto3";
package demo;

message HelloRequest { string name = 1; uint32 excitement = 2; }
message HelloReply  { string message = 1; }

service Greeter {
  rpc SayHello (HelloRequest) returns (HelloReply);
}
)";

int main() {
  // 1. Parse the schema (in a real deployment: .proto files via adtc).
  proto::DescriptorPool pool;
  proto::SchemaParser parser(pool);
  if (auto st = parser.parse_and_link(kGreeterProto); !st.is_ok()) {
    std::cerr << "schema: " << st.to_string() << "\n";
    return 1;
  }

  // 2. Host builds the offload manifest (ADT + method table) and ships it
  //    to the DPU — once, at startup.
  auto manifest = grpccompat::OffloadManifest::build(pool, arena::StdLibFlavor::kLibstdcpp);
  if (!manifest.is_ok()) {
    std::cerr << "manifest: " << manifest.status().to_string() << "\n";
    return 1;
  }
  Bytes shipped = manifest->serialize();
  auto dpu_manifest = grpccompat::OffloadManifest::deserialize(ByteSpan(shipped));
  std::cout << "manifest: " << shipped.size() << " bytes, "
            << dpu_manifest->methods().size() << " method(s), "
            << dpu_manifest->adt().class_count() << " ADT class(es)\n";

  // 3. Bring up the host<->DPU RDMA link (simulated; see DESIGN.md).
  simverbs::ProtectionDomain dpu_pd("dpu"), host_pd("host");
  rdmarpc::Connection dpu_conn(rdmarpc::Role::kClient, &dpu_pd, {});
  rdmarpc::Connection host_conn(rdmarpc::Role::kServer, &host_pd, {});
  if (auto st = rdmarpc::Connection::connect(dpu_conn, host_conn); !st.is_ok()) {
    std::cerr << "connect: " << st.to_string() << "\n";
    return 1;
  }

  // 4. Host business logic: reads the request through the in-place object
  //    — no deserialization happens on this side.
  grpccompat::HostEngine host(&host_conn, &*manifest, &pool);
  auto st = host.register_unary(
      "demo.Greeter/SayHello",
      [](const grpccompat::ServerContext&, const adt::LayoutView& req,
         proto::DynamicMessage& reply) {
        std::string text = "Hello, " + std::string(req.get_string(1));
        for (uint64_t i = 0; i < req.get_uint64(2); ++i) text += '!';
        reply.set_string(reply.descriptor()->field_by_name("message"), text);
        return Status::ok();
      });
  if (!st.is_ok()) {
    std::cerr << "register: " << st.to_string() << "\n";
    return 1;
  }
  std::atomic<bool> stop{false};
  std::thread host_thread([&] {
    while (!stop.load()) {
      auto n = host.event_loop_once();
      if (!n.is_ok()) return;
      if (*n == 0) host.wait(1);
    }
  });

  // 5. The DPU proxy terminates xRPC and offloads deserialization.
  grpccompat::DpuProxy proxy(&dpu_conn, &*dpu_manifest);
  auto port = proxy.start();
  if (!port.is_ok()) {
    std::cerr << "proxy: " << port.status().to_string() << "\n";
    return 1;
  }
  std::cout << "DPU proxy listening on 127.0.0.1:" << *port << "\n";

  // 6. An unmodified xRPC client dials the DPU's address.
  auto chan = xrpc::Channel::connect(*port);
  const auto* req_desc = pool.find_message("demo.HelloRequest");
  const auto* reply_desc = pool.find_message("demo.HelloReply");
  for (uint32_t excitement : {0u, 1u, 3u}) {
    proto::DynamicMessage req(req_desc);
    req.set_string(req_desc->field_by_name("name"), "world");
    req.set_uint64(req_desc->field_by_name("excitement"), excitement);
    Bytes wire = proto::WireCodec::serialize(req);

    auto resp = (*chan)->call("demo.Greeter/SayHello", ByteSpan(wire));
    if (!resp.is_ok()) {
      std::cerr << "call: " << resp.status().to_string() << "\n";
      return 1;
    }
    proto::DynamicMessage reply(reply_desc);
    (void)proto::WireCodec::parse(ByteSpan(*resp), reply);
    std::cout << "reply: " << reply.get_string(reply_desc->field_by_name("message"))
              << "\n";
  }

  std::cout << "offloaded requests: " << proxy.stats().offloaded_requests.load()
            << ", host deserializations: 0 (by construction)\n";

  proxy.stop();
  stop.store(true);
  host_conn.interrupt();
  host_thread.join();
  return 0;
}
