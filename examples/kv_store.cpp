// kv_store: a key-value microservice with offloaded deserialization.
//
// The workload the paper's introduction motivates: many small RPCs from
// several client connections, multiplexed by the DPU onto one host link.
// Demonstrates: multiple methods, concurrent xRPC clients, backpressure,
// and the library-level Prometheus metrics with the paper's monitoring
// methodology (instant rate of increase over scrapes).
//
//   $ ./kv_store [num_requests_per_client]
#include <iostream>
#include <thread>

#include "common/cpu_timer.hpp"
#include "grpccompat/dpu_proxy.hpp"
#include "grpccompat/host_service.hpp"
#include "metrics/monitor.hpp"
#include "proto/schema_parser.hpp"
#include "xrpc/channel.hpp"

using namespace dpurpc;

static constexpr std::string_view kKvProto = R"(
syntax = "proto3";
package kv;

message GetRequest  { string key = 1; }
message GetResponse { string value = 1; bool found = 2; }
message PutRequest  { string key = 1; string value = 2; uint64 ttl_ms = 3; }
message PutResponse { bool created = 1; }
message ScanRequest { string prefix = 1; uint32 limit = 2; }
message ScanResponse { repeated string keys = 1; }

service KvStore {
  rpc Get  (GetRequest)  returns (GetResponse);
  rpc Put  (PutRequest)  returns (PutResponse);
  rpc Scan (ScanRequest) returns (ScanResponse);
}
)";

int main(int argc, char** argv) {
  const int kRequests = argc > 1 ? std::atoi(argv[1]) : 400;
  constexpr int kClients = 3;

  proto::DescriptorPool pool;
  proto::SchemaParser parser(pool);
  if (auto st = parser.parse_and_link(kKvProto); !st.is_ok()) {
    std::cerr << st.to_string() << "\n";
    return 1;
  }
  auto manifest = grpccompat::OffloadManifest::build(pool, arena::StdLibFlavor::kLibstdcpp);
  if (!manifest.is_ok()) {
    std::cerr << manifest.status().to_string() << "\n";
    return 1;
  }

  // Instrumented transport (§VI: "directly instrumentalized at the
  // library level with a Prometheus client").
  metrics::Registry registry;
  rdmarpc::ConnectionConfig dpu_cfg, host_cfg;
  dpu_cfg.registry = &registry;
  host_cfg.registry = &registry;

  simverbs::ProtectionDomain dpu_pd("dpu"), host_pd("host");
  rdmarpc::Connection dpu_conn(rdmarpc::Role::kClient, &dpu_pd, dpu_cfg);
  rdmarpc::Connection host_conn(rdmarpc::Role::kServer, &host_pd, host_cfg);
  if (auto st = rdmarpc::Connection::connect(dpu_conn, host_conn); !st.is_ok()) {
    std::cerr << st.to_string() << "\n";
    return 1;
  }

  // --- host: the store ---
  std::map<std::string, std::string> store;  // single poller thread: no lock
  grpccompat::HostEngine host(&host_conn, &*manifest, &pool);
  (void)host.register_unary(
      "kv.KvStore/Put",
      [&store](const grpccompat::ServerContext&, const adt::LayoutView& req,
               proto::DynamicMessage& resp) {
        std::string key(req.get_string(1));
        bool created = store.emplace(key, std::string(req.get_string(2))).second;
        if (!created) store[key] = std::string(req.get_string(2));
        resp.set_uint64(resp.descriptor()->field_by_name("created"), created ? 1 : 0);
        return Status::ok();
      });
  (void)host.register_unary(
      "kv.KvStore/Get",
      [&store](const grpccompat::ServerContext&, const adt::LayoutView& req,
               proto::DynamicMessage& resp) {
        auto it = store.find(std::string(req.get_string(1)));
        if (it != store.end()) {
          resp.set_string(resp.descriptor()->field_by_name("value"), it->second);
          resp.set_uint64(resp.descriptor()->field_by_name("found"), 1);
        }
        return Status::ok();
      });
  (void)host.register_unary(
      "kv.KvStore/Scan",
      [&store](const grpccompat::ServerContext&, const adt::LayoutView& req,
               proto::DynamicMessage& resp) {
        std::string prefix(req.get_string(1));
        uint64_t limit = req.get_uint64(2);
        const auto* keys_field = resp.descriptor()->field_by_name("keys");
        uint64_t n = 0;
        for (auto it = store.lower_bound(prefix);
             it != store.end() && n < limit && it->first.rfind(prefix, 0) == 0;
             ++it, ++n) {
          resp.add_string(keys_field, it->first);
        }
        return Status::ok();
      });

  // Host CPU accounting for the report (Fig. 8c's measurement style).
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> host_busy_ns{0};
  std::thread host_thread([&] {
    ThreadCpuTimer cpu;
    while (!stop.load()) {
      auto n = host.event_loop_once();
      if (!n.is_ok()) break;
      if (*n == 0) host.wait(1);
    }
    host_busy_ns.store(cpu.elapsed_ns());
  });

  // --- DPU proxy ---
  grpccompat::DpuProxy proxy(&dpu_conn, &*manifest);
  auto port = proxy.start();
  if (!port.is_ok()) {
    std::cerr << port.status().to_string() << "\n";
    return 1;
  }

  // --- clients ---
  WallTimer wall;
  metrics::RateMonitor rps_monitor("rdmarpc_messages_received_total",
                                   {{"role", "server"}});
  std::vector<std::thread> clients;
  std::atomic<int> completed{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto chan = xrpc::Channel::connect(*port);
      if (!chan.is_ok()) return;
      const auto* put_desc = pool.find_message("kv.PutRequest");
      const auto* get_desc = pool.find_message("kv.GetRequest");
      for (int i = 0; i < kRequests; ++i) {
        std::string key = "user:" + std::to_string(c) + ":" + std::to_string(i % 50);
        proto::DynamicMessage put(put_desc);
        put.set_string(put_desc->field_by_name("key"), key);
        put.set_string(put_desc->field_by_name("value"),
                       "payload-" + std::string(40, 'v') + std::to_string(i));
        Bytes put_wire = proto::WireCodec::serialize(put);
        if (!(*chan)->call("kv.KvStore/Put", ByteSpan(put_wire)).is_ok()) return;

        proto::DynamicMessage get(get_desc);
        get.set_string(get_desc->field_by_name("key"), key);
        Bytes get_wire = proto::WireCodec::serialize(get);
        if (!(*chan)->call("kv.KvStore/Get", ByteSpan(get_wire)).is_ok()) return;
        completed.fetch_add(2);
      }
    });
  }
  // Scrape the metrics while the run is in flight (the monitoring
  // process of §VI).
  std::thread monitor([&] {
    while (!stop.load()) {
      (void)rps_monitor.observe(registry.scrape());
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  for (auto& t : clients) t.join();
  double seconds = wall.elapsed_s();

  // Final scan over everything we wrote.
  auto chan = xrpc::Channel::connect(*port);
  const auto* scan_desc = pool.find_message("kv.ScanRequest");
  proto::DynamicMessage scan(scan_desc);
  scan.set_string(scan_desc->field_by_name("prefix"), "user:1:");
  scan.set_uint64(scan_desc->field_by_name("limit"), 10);
  Bytes scan_wire = proto::WireCodec::serialize(scan);
  auto scan_resp = (*chan)->call("kv.KvStore/Scan", ByteSpan(scan_wire));

  stop.store(true);
  monitor.join();
  proxy.stop();
  host_conn.interrupt();
  host_thread.join();

  std::cout << "kv_store: " << completed.load() << " rpcs in " << seconds << " s ("
            << static_cast<uint64_t>(completed.load() / seconds) << " rps wall)\n";
  std::cout << "store size: " << store.size() << " keys\n";
  if (scan_resp.is_ok()) {
    proto::DynamicMessage r(pool.find_message("kv.ScanResponse"));
    (void)proto::WireCodec::parse(ByteSpan(*scan_resp), r);
    std::cout << "scan(user:1:) -> "
              << r.repeated_size(r.descriptor()->field_by_name("keys")) << " keys\n";
  }
  std::cout << "host busy: " << host_busy_ns.load() / 1e6 << " ms CPU over "
            << seconds * 1e3 << " ms wall ("
            << 100.0 * host_busy_ns.load() / 1e9 / seconds << "% of one core)\n";
  if (auto rate = rps_monitor.instant_rate()) {
    std::cout << "monitor instant rate (server messages/s): "
              << static_cast<uint64_t>(*rate) << "\n";
  }
  std::cout << "--- metrics exposition (excerpt) ---\n";
  std::string text = registry.expose_text();
  std::cout << text.substr(0, 600) << (text.size() > 600 ? "...\n" : "");
  // Client-side latency histogram (populated because the connection was
  // constructed with a registry).
  auto pos = text.find("rdmarpc_request_latency_seconds_count");
  if (pos != std::string::npos) {
    std::cout << "--- latency ---\n"
              << text.substr(pos, text.find('\n', pos) - pos) << "\n";
  }
  return 0;
}
