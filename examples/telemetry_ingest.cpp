// telemetry_ingest: the generated-class zero-copy path, end to end.
//
// Unlike quickstart/kv_store (which use the dynamic LayoutView API), this
// example uses adtc-GENERATED message classes on both sides:
//   * the "DPU" deserializes wire bytes in place with the shipped ADT,
//   * the host handler static_casts the in-place object to the real
//     compiled class (telemetry_Batch) and walks it with ordinary
//     accessors — including virtual dispatch through the copied vptr.
// This is exactly the paper's §V.B contract: minimal host code changes,
// no host-side deserialization, and the DPU never needed the classes
// compiled in (it works from the received ADT alone).
//
//   $ ./telemetry_ingest [num_batches]
#include <iostream>
#include <thread>

#include "adt/arena_deserializer.hpp"
#include "common/cpu_timer.hpp"
#include "common/rng.hpp"
#include "rdmarpc/client.hpp"
#include "rdmarpc/server.hpp"
#include "telemetry.adt.pb.h"
#include "telemetry.pb.h"

using namespace dpurpc;
using dpurpc_gen::telemetry_Batch;
using dpurpc_gen::telemetry_IngestAck;
using dpurpc_gen::telemetry_Reading;

constexpr uint16_t kPushMethod = 1;

int main(int argc, char** argv) {
  const int kBatches = argc > 1 ? std::atoi(argv[1]) : 200;
  constexpr int kReadingsPerBatch = 64;

  // Host side: register the generated classes' real layouts and ship the
  // table to the DPU (the one-time transfer).
  adt::Adt host_adt;
  auto indices = dpurpc_gen::RegisterAdt_telemetry(host_adt);
  host_adt.set_fingerprint(adt::AbiFingerprint::current(arena::StdLibFlavor::kLibstdcpp));
  if (auto st = host_adt.validate(); !st.is_ok()) {
    std::cerr << st.to_string() << "\n";
    return 1;
  }
  Bytes shipped = host_adt.serialize();
  auto dpu_adt = adt::Adt::deserialize(ByteSpan(shipped));
  std::cout << "ADT shipped to DPU: " << shipped.size() << " bytes, "
            << dpu_adt->class_count() << " classes\n";

  // The host<->DPU link.
  simverbs::ProtectionDomain dpu_pd("dpu"), host_pd("host");
  rdmarpc::Connection dpu_conn(rdmarpc::Role::kClient, &dpu_pd, {});
  rdmarpc::Connection host_conn(rdmarpc::Role::kServer, &host_pd, {});
  if (auto st = rdmarpc::Connection::connect(dpu_conn, host_conn); !st.is_ok()) {
    std::cerr << st.to_string() << "\n";
    return 1;
  }

  // Host business logic: aggregates readings straight off the in-place
  // generated object. Zero deserialization on this thread.
  struct Aggregates {
    uint64_t batches = 0;
    uint64_t readings = 0;
    int64_t value_sum = 0;
    uint64_t watermark_us = 0;
    uint64_t errors = 0;
  } agg;
  rdmarpc::RpcServer host(&host_conn);
  host.register_handler(kPushMethod, [&](const rdmarpc::RequestView& req, Bytes& out) {
    const auto* batch = static_cast<const telemetry_Batch*>(req.object);
    if (batch == nullptr) return Status(Code::kInvalidArgument, "not in-place");
    ++agg.batches;
    for (uint32_t i = 0; i < batch->readings_size(); ++i) {
      const telemetry_Reading& r = batch->readings(i);
      ++agg.readings;
      agg.value_sum += r.value();
      agg.watermark_us = std::max(agg.watermark_us, r.timestamp_us());
    }
    agg.errors += batch->error_codes_size();
    // Response: serialized normally by the host (not offloaded, §III.A).
    telemetry_IngestAck ack;
    ack.set_accepted(batch->readings_size());
    ack.set_watermark_us(agg.watermark_us);
    ack.SerializeToBytes(out);
    return Status::ok();
  });

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> host_busy_ns{0};
  std::thread host_thread([&] {
    ThreadCpuTimer cpu;
    while (!stop.load()) {
      auto n = host.event_loop_once();
      if (!n.is_ok()) break;
      if (*n == 0) host.wait(1);
    }
    host_busy_ns.store(cpu.elapsed_ns());
  });

  // DPU side: receives serialized batches (here: built and serialized
  // locally with the generated serializer, standing in for gRPC traffic)
  // and deserializes them in place with the *received* ADT.
  adt::ArenaDeserializer deserializer(&*dpu_adt);
  uint32_t batch_class = dpu_adt->find_class("telemetry.Batch");
  rdmarpc::RpcClient dpu(&dpu_conn);

  std::mt19937_64 rng(kDefaultSeed);
  uint64_t acked_readings = 0;
  WallTimer wall;
  for (int b = 0; b < kBatches; ++b) {
    // Craft this batch's wire bytes (what an edge device would send).
    arena::OwningArena build_arena(1 << 16);
    telemetry_Batch batch;
    batch.set_device("edge-" + std::to_string(b % 8));
    for (int i = 0; i < kReadingsPerBatch; ++i) {
      auto* r = batch.add_readings(build_arena);
      r->set_sensor_id(static_cast<uint32_t>(rng() % 1000));
      r->set_value(static_cast<int64_t>(rng() % 20001) - 10000);
      r->set_timestamp_us(1'700'000'000'000'000ull + static_cast<uint64_t>(b) * 1000 + i);
    }
    if (b % 7 == 0) (void)batch.add_error_codes(static_cast<uint32_t>(rng() % 32), build_arena);
    Bytes wire;
    batch.SerializeToBytes(wire);

    // Offload: deserialize into the send block, pointers in host space.
    Status st = dpu.call_inplace(
        kPushMethod, static_cast<uint16_t>(batch_class),
        static_cast<uint32_t>(wire.size() * 4 + 256),
        [&](arena::Arena& block_arena, const arena::AddressTranslator& xlate)
            -> StatusOr<uint32_t> {
          auto obj = deserializer.deserialize(batch_class, ByteSpan(wire),
                                              block_arena, xlate);
          if (!obj.is_ok()) return obj.status();
          return static_cast<uint32_t>(block_arena.used());
        },
        [&](const Status& result, const rdmarpc::InMessage& resp) {
          if (!result.is_ok()) return;
          // Parse the ack with the generated class via the local ADT.
          arena::OwningArena ack_arena(512);
          auto obj = deserializer.deserialize(dpu_adt->find_class("telemetry.IngestAck"),
                                              resp.payload, ack_arena, {});
          if (obj.is_ok()) {
            acked_readings += static_cast<const telemetry_IngestAck*>(*obj)->accepted();
          }
        });
    while (st.code() == Code::kUnavailable || st.code() == Code::kResourceExhausted) {
      (void)dpu.event_loop_once();
      st = dpu.call_inplace(kPushMethod, static_cast<uint16_t>(batch_class),
                            rdmarpc::kMaxPayloadSize,
                            [&](arena::Arena& a, const arena::AddressTranslator& x)
                                -> StatusOr<uint32_t> {
                              auto obj = deserializer.deserialize(batch_class,
                                                                  ByteSpan(wire), a, x);
                              if (!obj.is_ok()) return obj.status();
                              return static_cast<uint32_t>(a.used());
                            },
                            nullptr);
    }
    if (!st.is_ok()) {
      std::cerr << "push: " << st.to_string() << "\n";
      return 1;
    }
    // Batch a few pushes per event-loop turn (the §IV batching contract).
    if (b % 8 == 7) (void)dpu.event_loop_once();
  }
  while (dpu.in_flight() > 0 || dpu.enqueued_unflushed() > 0) {
    auto n = dpu.event_loop_once();
    if (!n.is_ok()) break;
    if (*n == 0) dpu_conn.wait(1);
  }
  double seconds = wall.elapsed_s();

  stop.store(true);
  host_conn.interrupt();
  host_thread.join();

  std::cout << "ingested " << agg.batches << " batches / " << agg.readings
            << " readings in " << seconds * 1e3 << " ms\n";
  std::cout << "value sum " << agg.value_sum << ", watermark " << agg.watermark_us
            << " us, errors " << agg.errors << "\n";
  std::cout << "client saw acks for " << acked_readings << " readings\n";
  std::cout << "host busy: " << host_busy_ns.load() / 1e6
            << " ms CPU (all of it business logic — deserialization ran on the "
               "DPU)\n";
  std::cout << "PCIe bytes DPU->host: " << dpu_conn.tx_counters().bytes.load()
            << ", host->DPU: " << host_conn.tx_counters().bytes.load() << "\n";
  (void)indices;
  return agg.readings == static_cast<uint64_t>(kBatches) * kReadingsPerBatch ? 0 : 1;
}
