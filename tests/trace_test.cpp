// Unit tests for the tracing subsystem: SPSC ring overflow/wrap, head
// sampling, collector reassembly, tail sampling, orphan aging, and the
// Chrome trace-event exporter (golden JSON).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "metrics/metrics.hpp"
#include "trace/collector.hpp"
#include "trace/trace.hpp"

namespace dpurpc::trace {
namespace {

// The Tracer is a process-wide singleton shared across tests: drain any
// leftovers so each test observes only its own records.
void drain_leftovers() {
  std::vector<SpanRecord> junk;
  Tracer::instance().drain_into(junk);
}

TraceConfig full_config() {
  TraceConfig c;
  c.mode = Mode::kFull;
  return c;
}

// ------------------------------------------------------------- SpanRing

TEST(SpanRing, DropNewestOnFullAndCountsDrops) {
  SpanRing ring(8, 0);
  SpanRecord r;
  for (uint64_t i = 0; i < 8; ++i) {
    r.span_id = i;
    EXPECT_TRUE(ring.try_push(r));
  }
  r.span_id = 99;
  EXPECT_FALSE(ring.try_push(r));  // full: the *newest* record is dropped
  EXPECT_FALSE(ring.try_push(r));
  EXPECT_EQ(ring.dropped(), 2u);

  std::vector<SpanRecord> out;
  EXPECT_EQ(ring.drain(out), 8u);
  ASSERT_EQ(out.size(), 8u);
  for (uint64_t i = 0; i < 8; ++i) EXPECT_EQ(out[i].span_id, i);
  // Space reclaimed: pushes succeed again, drop counter is cumulative.
  EXPECT_TRUE(ring.try_push(r));
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(SpanRing, WrapsAroundPreservingOrder) {
  SpanRing ring(4, 0);
  SpanRecord r;
  std::vector<SpanRecord> out;
  uint64_t next = 0;
  // Many times around the ring; every record comes back exactly once, in
  // push order.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 3; ++i) {
      r.span_id = next++;
      ASSERT_TRUE(ring.try_push(r));
    }
    ring.drain(out);
  }
  ASSERT_EQ(out.size(), next);
  for (uint64_t i = 0; i < next; ++i) EXPECT_EQ(out[i].span_id, i);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(SpanRing, ConcurrentProducerConsumer) {
  SpanRing ring(64, 0);
  constexpr uint64_t kCount = 100'000;
  std::vector<SpanRecord> out;
  std::thread producer([&] {
    SpanRecord r;
    for (uint64_t i = 0; i < kCount; ++i) {
      r.span_id = i;
      while (!ring.try_push(r)) std::this_thread::yield();
    }
  });
  while (out.size() < kCount) ring.drain(out);
  producer.join();
  // The producer retries on full, so nothing is lost and order holds
  // (each retry counts a drop, but the record eventually lands).
  ASSERT_EQ(out.size(), kCount);
  for (uint64_t i = 0; i < kCount; ++i) ASSERT_EQ(out[i].span_id, i);
}

// --------------------------------------------------------------- Tracer

TEST(Tracer, OffModeYieldsInactiveContexts) {
  drain_leftovers();
  Tracer::instance().configure(TraceConfig{});  // kOff
  TraceContext ctx = Tracer::instance().begin_trace();
  EXPECT_FALSE(ctx.active());
  // record() on an inactive context is a no-op: nothing to drain.
  Tracer::instance().record(Stage::kWorkerDecode, ctx, 10, 20);
  std::vector<SpanRecord> out;
  EXPECT_EQ(Tracer::instance().drain_into(out), 0u);
}

TEST(Tracer, HeadSamplingIsExactlyOneInN) {
  drain_leftovers();
  TraceConfig c;
  c.mode = Mode::kSampled;
  c.head_sample_every = 4;
  Tracer::instance().configure(c);
  int active = 0;
  for (int i = 0; i < 16; ++i) {
    if (Tracer::instance().begin_trace().active()) ++active;
  }
  // The shared counter makes the rate exact regardless of its start value.
  EXPECT_EQ(active, 4);
  Tracer::instance().configure(TraceConfig{});
  drain_leftovers();
}

TEST(Tracer, RecordRoundTripsThroughTheRing) {
  drain_leftovers();
  Tracer::instance().configure(full_config());
  TraceContext ctx = Tracer::instance().begin_trace();
  ASSERT_TRUE(ctx.active());
  Tracer::instance().record(Stage::kWorkerDecode, ctx, 100, 250, 42);
  Tracer::instance().record_root(ctx, 50, 400, 7);
  std::vector<SpanRecord> out;
  Tracer::instance().drain_into(out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].trace_id, ctx.trace_id);
  EXPECT_EQ(out[0].parent_span_id, ctx.parent_span_id);
  EXPECT_EQ(static_cast<Stage>(out[0].stage), Stage::kWorkerDecode);
  EXPECT_EQ(out[0].start_ns, 100u);
  EXPECT_EQ(out[0].end_ns, 250u);
  EXPECT_EQ(out[0].arg, 42u);
  // The root reuses the parent id every stage span points at.
  EXPECT_EQ(out[1].span_id, ctx.parent_span_id);
  EXPECT_EQ(out[1].parent_span_id, 0u);
  EXPECT_EQ(static_cast<Stage>(out[1].stage), Stage::kRequest);
  Tracer::instance().configure(TraceConfig{});
}

// ------------------------------------------------------- TraceCollector

TEST(Collector, ReassemblesATreeAndFeedsStageHistograms) {
  drain_leftovers();
  Tracer::instance().configure(full_config());
  metrics::Registry reg;
  TraceCollector::Options opts;
  opts.registry = &reg;
  TraceCollector collector(opts);

  TraceContext ctx = Tracer::instance().begin_trace();
  ASSERT_TRUE(ctx.active());
  Tracer::instance().record(Stage::kWorkerDecode, ctx, 100, 300);
  Tracer::instance().record(Stage::kHostDispatch, ctx, 300, 450);
  Tracer::instance().record_root(ctx, 0, 500);
  collector.collect();

  EXPECT_EQ(collector.traces_completed(), 1u);
  // 1-in-N head retention keeps the very first completed trace.
  ASSERT_EQ(collector.retained().size(), 1u);
  const SpanTree& tree = collector.retained()[0];
  EXPECT_EQ(tree.trace_id, ctx.trace_id);
  ASSERT_EQ(tree.spans.size(), 3u);
  ASSERT_NE(tree.root(), nullptr);
  EXPECT_EQ(tree.duration_ns(), 500u);
  EXPECT_EQ(tree.stage_sum_ns(), 200u + 150u);

  // Every span fed its stage histogram in the collector's registry.
  metrics::Snapshot snap = reg.scrape();
  const metrics::Sample* decode = snap.find("dpurpc_trace_stage_seconds_count",
                                            {{"stage", "worker_decode"}});
  ASSERT_NE(decode, nullptr);
  EXPECT_EQ(decode->value, 1.0);
  const metrics::Sample* req = snap.find("dpurpc_trace_stage_seconds_count",
                                         {{"stage", "request"}});
  ASSERT_NE(req, nullptr);
  EXPECT_EQ(req->value, 1.0);
  Tracer::instance().configure(TraceConfig{});
}

TEST(Collector, TailSamplingKeepsSlowTraces) {
  drain_leftovers();
  Tracer::instance().configure(full_config());
  metrics::Registry reg;
  TraceCollector::Options opts;
  opts.registry = &reg;
  opts.tail_keep_every = 0;  // isolate the latency criterion
  TraceCollector collector(opts);

  // 20 fast requests (600 ns): under the rolling p95, never retained.
  for (int i = 0; i < 20; ++i) {
    TraceContext ctx = Tracer::instance().begin_trace();
    Tracer::instance().record_root(ctx, 1000, 1600);
    collector.collect();
  }
  EXPECT_EQ(collector.traces_completed(), 20u);
  EXPECT_EQ(collector.retained().size(), 0u);

  // One slow request (1 ms): above the p95 of the fast population.
  TraceContext slow = Tracer::instance().begin_trace();
  Tracer::instance().record_root(slow, 1000, 1'001'000);
  collector.collect();
  ASSERT_EQ(collector.retained().size(), 1u);
  EXPECT_EQ(collector.retained()[0].trace_id, slow.trace_id);
  EXPECT_EQ(collector.traces_retained(), 1u);
  Tracer::instance().configure(TraceConfig{});
}

TEST(Collector, RootlessTracesAgeOutAsOrphans) {
  drain_leftovers();
  Tracer::instance().configure(full_config());
  metrics::Registry reg;
  TraceCollector::Options opts;
  opts.registry = &reg;
  opts.orphan_max_age = 2;
  TraceCollector collector(opts);

  TraceContext ctx = Tracer::instance().begin_trace();
  Tracer::instance().record(Stage::kWorkerDecode, ctx, 10, 20);
  collector.collect();  // pending, no root
  EXPECT_EQ(collector.orphans_dropped(), 0u);
  collector.collect();
  collector.collect();  // age threshold crossed
  EXPECT_EQ(collector.orphans_dropped(), 1u);
  EXPECT_EQ(collector.traces_completed(), 0u);
  // A root arriving after the age-out starts a fresh (still rootful) tree
  // rather than resurrecting the dropped spans.
  Tracer::instance().record_root(ctx, 0, 100);
  collector.collect();
  EXPECT_EQ(collector.traces_completed(), 1u);
  Tracer::instance().configure(TraceConfig{});
}

TEST(Collector, GlobalEventsLandOnTheSideTrack) {
  drain_leftovers();
  Tracer::instance().configure(full_config());
  metrics::Registry reg;
  TraceCollector::Options opts;
  opts.registry = &reg;
  TraceCollector collector(opts);
  Tracer::instance().record_global(Stage::kSimverbsWrite, 100, 900, 4096);
  collector.collect();
  ASSERT_EQ(collector.global_events().size(), 1u);
  EXPECT_EQ(collector.global_events()[0].stage, Stage::kSimverbsWrite);
  EXPECT_EQ(collector.global_events()[0].arg, 4096u);
  EXPECT_EQ(collector.traces_completed(), 0u);
  Tracer::instance().configure(TraceConfig{});
}

TEST(Collector, MirrorsRingDropsIntoTheRegistry) {
  drain_leftovers();
  TraceConfig c = full_config();
  c.ring_capacity = 64;  // floor; applies to rings created after configure()
  Tracer::instance().configure(c);
  uint64_t drops_before = Tracer::instance().dropped_total();
  // A fresh thread gets a fresh (64-slot) ring; overflow it.
  std::thread t([] {
    TraceContext ctx{12345, 1};
    for (int i = 0; i < 80; ++i) {
      Tracer::instance().record(Stage::kWorkerDecode, ctx, 0, 1);
    }
  });
  t.join();
  EXPECT_GE(Tracer::instance().dropped_total() - drops_before, 16u);

  metrics::Registry reg;
  TraceCollector::Options opts;
  opts.registry = &reg;
  TraceCollector collector(opts);
  collector.collect();
  metrics::Snapshot snap = reg.scrape();
  const metrics::Sample* dropped = snap.find("dpurpc_trace_ring_dropped_total");
  ASSERT_NE(dropped, nullptr);
  EXPECT_GE(dropped->value, 16.0);
  Tracer::instance().configure(TraceConfig{});
  drain_leftovers();
}

// ------------------------------------------------------------- exporter

TEST(Exporter, GoldenChromeTraceJson) {
  SpanTree tree;
  tree.trace_id = 7;
  // Deliberately out of order: the exporter sorts root-first, then by
  // start time, so the output is stable.
  tree.spans.push_back({2, 1, 1500, 2500, 9, 3, Stage::kWorkerDecode});
  tree.spans.push_back({1, 0, 1000, 5000, 42, 0, Stage::kRequest});
  Span global{5, 0, 2000, 2600, 4096, 1, Stage::kSimverbsWrite};

  std::string json = TraceCollector::to_chrome_json({tree}, {global});
  EXPECT_EQ(
      json,
      "{\"traceEvents\":["
      "{\"name\":\"request\",\"cat\":\"datapath\",\"ph\":\"X\","
      "\"ts\":1.000,\"dur\":4.000,\"pid\":1,\"tid\":0,"
      "\"args\":{\"trace_id\":7,\"span_id\":1,\"parent_span_id\":0,\"arg\":42}},"
      "{\"name\":\"worker_decode\",\"cat\":\"datapath\",\"ph\":\"X\","
      "\"ts\":1.500,\"dur\":1.000,\"pid\":1,\"tid\":3,"
      "\"args\":{\"trace_id\":7,\"span_id\":2,\"parent_span_id\":1,\"arg\":9}},"
      "{\"name\":\"simverbs_write\",\"cat\":\"datapath\",\"ph\":\"X\","
      "\"ts\":2.000,\"dur\":0.600,\"pid\":1,\"tid\":1,"
      "\"args\":{\"trace_id\":0,\"span_id\":5,\"parent_span_id\":0,\"arg\":4096}}"
      "],\"displayTimeUnit\":\"ns\"}");
}

TEST(Exporter, EmptyInputIsStillValidJson) {
  EXPECT_EQ(TraceCollector::to_chrome_json({}),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ns\"}");
}

TEST(Record, IsExactlyOneCacheLine) {
  EXPECT_EQ(sizeof(SpanRecord), 64u);
}

}  // namespace
}  // namespace dpurpc::trace
