// dpulint's behavior is pinned two ways: fixture trees under
// tools/dpulint/testdata (one deliberate violation per rule, plus a
// clean tree that exercises every rule and passes), and the real tree
// itself, which must stay at zero findings with the four required hot
// roots visible to the checker. DPULINT_TESTDATA / DPULINT_REPO_ROOT
// arrive as compile definitions from tests/CMakeLists.txt.
#include "dpulint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace {

using dpulint::Finding;
using dpulint::Model;
using dpulint::Policy;

std::string testdata() { return DPULINT_TESTDATA; }
std::string repo_root() { return DPULINT_REPO_ROOT; }

Model load_fixture(const std::string& subtree) {
  std::string error;
  auto files = dpulint::load_tree(testdata(), {subtree}, &error);
  EXPECT_EQ(error, "");
  EXPECT_FALSE(files.empty()) << "fixture tree empty: " << subtree;
  return dpulint::build_model(std::move(files));
}

std::string read_or_die(const std::string& path) {
  std::string text;
  EXPECT_TRUE(dpulint::read_file(path, &text)) << path;
  return text;
}

std::vector<Finding> of_rule(const std::vector<Finding>& findings,
                             const std::string& rule) {
  std::vector<Finding> out;
  for (const auto& f : findings) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

std::string dump(const std::vector<Finding>& findings) {
  std::string s;
  for (const auto& f : findings) {
    s += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message + "\n";
  }
  return s;
}

// ------------------------------------------------------------- clean tree

TEST(DpulintFixtures, CleanTreePassesEveryRule) {
  Model m = load_fixture("clean");
  Policy p;
  p.design_text = read_or_die(testdata() + "/clean/design.md");
  p.design_path = "clean/design.md";
  auto findings = dpulint::run_checks(m, p);
  EXPECT_TRUE(findings.empty()) << dump(findings);

  // The fixture's hot roots (and only those) are visible to the checker.
  auto hot = dpulint::hot_functions(m);
  EXPECT_EQ(hot.size(), 2u);
  ASSERT_EQ(std::count(hot.begin(), hot.end(), "fix::fast_sum"), 1);
  ASSERT_EQ(std::count(hot.begin(), hot.end(), "fix::fast_note"), 1);
}

// ------------------------------------------------- one violation per rule

TEST(DpulintFixtures, HotPathAllocationFlagged) {
  Model m = load_fixture("violations/hot_alloc");
  auto findings = dpulint::run_checks(m, Policy{});
  ASSERT_EQ(findings.size(), 1u) << dump(findings);
  EXPECT_EQ(findings[0].rule, "hot-path");
  EXPECT_EQ(findings[0].file, "violations/hot_alloc/fast.cpp");
  // The finding lands on the allocation itself and names the call chain
  // from the hot root, so the report is actionable without a debugger.
  EXPECT_NE(findings[0].message.find("push_back"), std::string::npos);
  EXPECT_NE(findings[0].message.find("fast -> helper"), std::string::npos);
}

TEST(DpulintFixtures, LockOrderDriftFlaggedBothDirections) {
  Model m = load_fixture("violations/lock_order");
  Policy p;
  p.design_text = read_or_die(testdata() + "/violations/lock_order/design.md");
  p.design_path = "violations/lock_order/design.md";
  auto findings = dpulint::run_checks(m, p);
  auto drift = of_rule(findings, "lock-order");
  ASSERT_EQ(drift.size(), 2u) << dump(findings);
  // code -> doc: the registered class missing from the block, reported at
  // the registration site.
  EXPECT_EQ(drift[0].file, "violations/lock_order/design.md");
  EXPECT_NE(drift[0].message.find("fix.Other.mu"), std::string::npos);
  EXPECT_EQ(drift[1].file, "violations/lock_order/widget.cpp");
  EXPECT_NE(drift[1].message.find("fix.Widget.mu"), std::string::npos);
}

TEST(DpulintFixtures, MissingLockOrderBlockIsAFinding) {
  Model m = load_fixture("violations/lock_order");
  Policy p;
  p.design_text = "a design doc with no fenced block at all";
  auto findings = of_rule(dpulint::run_checks(m, p), "lock-order");
  ASSERT_EQ(findings.size(), 1u) << dump(findings);
  EXPECT_NE(findings[0].message.find("no fenced"), std::string::npos);
}

TEST(DpulintFixtures, RelaxedOutsideWhitelistFlagged) {
  Model m = load_fixture("violations/relaxed");
  auto findings = dpulint::run_checks(m, Policy{});
  ASSERT_EQ(findings.size(), 1u) << dump(findings);
  EXPECT_EQ(findings[0].rule, "relaxed-atomic");
  EXPECT_EQ(findings[0].file, "violations/relaxed/stats.cpp");
}

TEST(DpulintFixtures, TraceStageWithoutRecordSiteFlagged) {
  Model m = load_fixture("violations/trace_stage");
  auto findings = dpulint::run_checks(m, Policy{});
  ASSERT_EQ(findings.size(), 1u) << dump(findings);
  EXPECT_EQ(findings[0].rule, "trace-stage");
  EXPECT_EQ(findings[0].file, "violations/trace_stage/src/trace/trace.hpp");
  EXPECT_NE(findings[0].message.find("kDecode"), std::string::npos);
}

TEST(DpulintFixtures, RespondWithoutCompleteFlagged) {
  Model m = load_fixture("violations/trace_pairing");
  auto findings = dpulint::run_checks(m, Policy{});
  ASSERT_EQ(findings.size(), 1u) << dump(findings);
  EXPECT_EQ(findings[0].rule, "trace-pairing");
  EXPECT_EQ(findings[0].file,
            "violations/trace_pairing/src/grpccompat/dpu_proxy.cpp");
  EXPECT_NE(findings[0].message.find("reject"), std::string::npos);
}

TEST(DpulintFixtures, MalformedWaiverFlagged) {
  Model m = load_fixture("violations/waiver");
  auto findings = dpulint::run_checks(m, Policy{});
  ASSERT_EQ(findings.size(), 1u) << dump(findings);
  EXPECT_EQ(findings[0].rule, "waiver-syntax");
  EXPECT_EQ(findings[0].file, "violations/waiver/bad.cpp");
}

// --------------------------------------------------------- the real tree

TEST(DpulintRealTree, ZeroFindings) {
  std::string error;
  auto files = dpulint::load_tree(repo_root(), {"src"}, &error);
  ASSERT_EQ(error, "");
  ASSERT_GT(files.size(), 50u) << "suspiciously small tree — wrong root?";
  Model m = dpulint::build_model(std::move(files));
  Policy p;
  p.design_text = read_or_die(repo_root() + "/DESIGN.md");
  auto findings = dpulint::run_checks(m, p);
  EXPECT_TRUE(findings.empty()) << dump(findings);
}

TEST(DpulintRealTree, RequiredHotRootsAnnotated) {
  std::string error;
  auto files = dpulint::load_tree(repo_root(), {"src"}, &error);
  ASSERT_EQ(error, "");
  Model m = dpulint::build_model(std::move(files));
  auto hot = dpulint::hot_functions(m);
  // The acceptance set: the fast-path entry points the offload win
  // depends on must carry DPURPC_HOT_PATH and be visible to the checker.
  for (const char* required : {
           "dpurpc::dpu::CodecPool::worker_loop",
           "dpurpc::dpu::CodecPool::submit",
           "dpurpc::HandoffRing::try_push",
           "dpurpc::HandoffRing::try_pop",
           "dpurpc::trace::SpanRing::try_push",
           "dpurpc::trace::Tracer::record",
           "dpurpc::adt::Adt::plans",
           "dpurpc::rdmarpc::BlockWriter::finalize",
           // Streaming additions: fragment reassembly pop on the server
           // and the chunk-cut/submit loop on the proxy's lane thread.
           "dpurpc::rdmarpc::RpcServer::accept_fragment",
           "dpurpc::grpccompat::DpuProxy::scan_and_submit",
           // Tail forensics: the per-tree trigger check on the collector
           // thread and the sampler's per-period read pass.
           "dpurpc::trace::FlightRecorder::should_capture",
           "dpurpc::trace::ResourceSampler::sample_once",
       }) {
    EXPECT_EQ(std::count(hot.begin(), hot.end(), std::string(required)), 1)
        << "missing hot annotation: " << required;
  }
}

}  // namespace
