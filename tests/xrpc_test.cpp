// Tests for the xRPC transport: framing, server/channel behaviour,
// concurrent outstanding calls, and failure handling.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "xrpc/channel.hpp"
#include "xrpc/server.hpp"

namespace dpurpc::xrpc {
namespace {

std::unique_ptr<Server> echo_server() {
  auto server = Server::start(CallHandler([](CallContext ctx) {
    if (ctx.is_stream()) {
      // Streaming echo: accumulate chunks, answer with the concatenation.
      // Raw pointer on purpose — capturing the shared_ptr inside the
      // stream's own callbacks would be a self-cycle (leak); callbacks
      // only ever run while the server still owns the stream.
      ServerStream* stream = ctx.stream.get();
      auto acc = std::make_shared<Bytes>();
      auto respond = std::move(ctx.respond);
      const bool fail = ctx.method == "test.Echo/Fail";
      stream->on_chunk([acc, stream](Bytes chunk) {
        acc->insert(acc->end(), chunk.begin(), chunk.end());
        (void)stream->grant(static_cast<uint32_t>(chunk.size()));
      });
      stream->on_end([acc, respond, fail] {
        if (fail) {
          respond(Code::kInvalidArgument, {});
        } else {
          respond(Code::kOk, ByteSpan(*acc));
        }
      });
      (void)stream->grant(1u << 16);
      return;
    }
    if (ctx.method == "test.Echo/Echo") {
      ctx.respond(Code::kOk, ByteSpan(ctx.payload));
    } else if (ctx.method == "test.Echo/Fail") {
      ctx.respond(Code::kInvalidArgument, {});
    } else {
      ctx.respond(Code::kNotFound, {});
    }
  }));
  EXPECT_TRUE(server.is_ok()) << server.status().to_string();
  return std::move(*server);
}

TEST(Xrpc, SyncEchoRoundTrip) {
  auto server = echo_server();
  auto chan = Channel::connect(server->port());
  ASSERT_TRUE(chan.is_ok()) << chan.status().to_string();
  auto resp = (*chan)->call("test.Echo/Echo", as_bytes_view("ping"));
  ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
  EXPECT_EQ(as_string_view(ByteSpan(*resp)), "ping");
}

TEST(Xrpc, EmptyPayload) {
  auto server = echo_server();
  auto chan = Channel::connect(server->port());
  ASSERT_TRUE(chan.is_ok());
  auto resp = (*chan)->call("test.Echo/Echo", {});
  ASSERT_TRUE(resp.is_ok());
  EXPECT_TRUE(resp->empty());
}

TEST(Xrpc, LargePayload) {
  auto server = echo_server();
  auto chan = Channel::connect(server->port());
  ASSERT_TRUE(chan.is_ok());
  std::mt19937_64 rng(kDefaultSeed);
  std::string big = random_bytes(rng, 1 << 20);
  auto resp = (*chan)->call("test.Echo/Echo", as_bytes_view(big));
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(as_string_view(ByteSpan(*resp)), big);
}

TEST(Xrpc, ErrorStatusPropagates) {
  auto server = echo_server();
  auto chan = Channel::connect(server->port());
  ASSERT_TRUE(chan.is_ok());
  auto resp = (*chan)->call("test.Echo/Fail", as_bytes_view("x"));
  EXPECT_EQ(resp.status().code(), Code::kInvalidArgument);
}

TEST(Xrpc, UnknownMethodNotFound) {
  auto server = echo_server();
  auto chan = Channel::connect(server->port());
  ASSERT_TRUE(chan.is_ok());
  auto resp = (*chan)->call("test.Echo/NoSuch", {});
  EXPECT_EQ(resp.status().code(), Code::kNotFound);
}

TEST(Xrpc, ManyConcurrentOutstandingCalls) {
  // Multiplexing by call_id: issue a burst async, answers can interleave.
  auto server = echo_server();
  auto chan = Channel::connect(server->port());
  ASSERT_TRUE(chan.is_ok());
  constexpr int kN = 200;
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  for (int i = 0; i < kN; ++i) {
    std::string payload = "call-" + std::to_string(i);
    ASSERT_TRUE((*chan)
                    ->call_async("test.Echo/Echo", as_bytes_view(payload),
                                 [&, payload](Code c, Bytes p) {
                                   EXPECT_EQ(c, Code::kOk);
                                   EXPECT_EQ(as_string_view(ByteSpan(p)), payload);
                                   std::lock_guard lk(mu);
                                   ++done;
                                   cv.notify_all();
                                 })
                    .is_ok());
  }
  std::unique_lock lk(mu);
  ASSERT_TRUE(cv.wait_for(lk, std::chrono::seconds(10), [&] { return done == kN; }));
  EXPECT_EQ((*chan)->outstanding(), 0u);
}

TEST(Xrpc, MultipleClientsOneServer) {
  auto server = echo_server();
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto chan = Channel::connect(server->port());
      ASSERT_TRUE(chan.is_ok());
      for (int i = 0; i < 25; ++i) {
        std::string p = "c" + std::to_string(c) + "-" + std::to_string(i);
        auto resp = (*chan)->call("test.Echo/Echo", as_bytes_view(p));
        ASSERT_TRUE(resp.is_ok());
        EXPECT_EQ(as_string_view(ByteSpan(*resp)), p);
        ++ok;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients * 25);
  EXPECT_EQ(server->requests_accepted(), static_cast<uint64_t>(kClients * 25));
}

TEST(Xrpc, ServerShutdownFailsInFlightCalls) {
  auto server = Server::start(
      CallHandler([](CallContext) { /* never responds */ }));
  ASSERT_TRUE(server.is_ok());
  auto chan = Channel::connect((*server)->port());
  ASSERT_TRUE(chan.is_ok());
  std::atomic<bool> failed{false};
  ASSERT_TRUE((*chan)
                  ->call_async("x/Y", {},
                               [&](Code c, Bytes) {
                                 EXPECT_NE(c, Code::kOk);
                                 failed = true;
                               })
                  .is_ok());
  (*server)->shutdown();
  (*chan)->close();  // channel close fails orphans
  EXPECT_TRUE(failed.load());
}

TEST(Xrpc, ShutdownRacesInFlightTraffic) {
  // TSan regression shape for the server stop/join ordering audit: fire
  // async traffic from several channels and shut the server down in the
  // middle of it. Every callback must still run exactly once (with kOk
  // or kUnavailable), every connection thread must be joined (no leak,
  // no use-after-free of ConnState), and repeated shutdown() is a no-op.
  for (int round = 0; round < 10; ++round) {
    auto server = echo_server();
    constexpr int kChannels = 3;
    constexpr int kCallsPerChannel = 40;
    std::atomic<int> callbacks{0};
    std::vector<std::unique_ptr<Channel>> channels;
    for (int c = 0; c < kChannels; ++c) {
      auto ch = Channel::connect(server->port());
      ASSERT_TRUE(ch.is_ok());
      channels.push_back(std::move(*ch));
    }
    std::vector<std::thread> callers;
    for (auto& ch : channels) {
      callers.emplace_back([&callbacks, &ch] {
        for (int i = 0; i < kCallsPerChannel; ++i) {
          Bytes payload = to_bytes(std::string_view("ping"));
          Status st = ch->call_async("test.Echo/Echo", ByteSpan(payload),
                                     [&callbacks](Code, Bytes) {
                                       callbacks.fetch_add(
                                           1, std::memory_order_relaxed);
                                     });
          if (!st.is_ok()) {
            // Channel already torn down by the shutdown below: the call
            // was never registered, so no callback is owed.
            return;
          }
        }
      });
    }
    server->shutdown();   // races the callers above
    server->shutdown();   // idempotent
    for (auto& t : callers) t.join();
    // Closing the channels fails any still-pending callbacks.
    for (auto& ch : channels) ch->close();
    SUCCEED();
  }
}

TEST(Xrpc, ConnectToClosedPortFails) {
  // Grab a port, then close it so nothing listens there.
  uint16_t dead_port;
  {
    auto l = Listener::create();
    ASSERT_TRUE(l.is_ok());
    dead_port = l->port();
  }
  auto chan = Channel::connect(dead_port);
  EXPECT_FALSE(chan.is_ok());
}

TEST(Xrpc, AsyncCallbackRunsOffCallerThread) {
  auto server = echo_server();
  auto chan = Channel::connect(server->port());
  ASSERT_TRUE(chan.is_ok());
  std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> checked{false};
  std::mutex mu;
  std::condition_variable cv;
  ASSERT_TRUE((*chan)
                  ->call_async("test.Echo/Echo", as_bytes_view("t"),
                               [&](Code, Bytes) {
                                 EXPECT_NE(std::this_thread::get_id(), caller);
                                 // Flag and notify under the mutex: the
                                 // waiter can then only destroy `cv` after
                                 // notify_all() has returned (it must
                                 // reacquire `mu` first). Notifying outside
                                 // the lock raced with cv's destruction.
                                 std::lock_guard<std::mutex> l(mu);
                                 checked = true;
                                 cv.notify_all();
                               })
                  .is_ok());
  std::unique_lock lk(mu);
  cv.wait_for(lk, std::chrono::seconds(5), [&] { return checked.load(); });
  EXPECT_TRUE(checked.load());
}

// The paper's monitoring pull, over the real transport: a server started
// with a registry answers kMetricsMethod itself with the text exposition.
TEST(Xrpc, MetricsScrapeEndpoint) {
  metrics::Registry reg;
  reg.counter_family("xrpc_scrape_demo_total", "scrape test counter")
      .counter()
      .inc(3);
  reg.histogram_family("xrpc_scrape_demo_seconds", "scrape test histogram",
                       {0.001, 0.01, 0.1})
      .histogram()
      .observe(0.005);
  auto server = Server::start(
      CallHandler([](CallContext ctx) { ctx.respond(Code::kNotFound, {}); }),
      &reg);
  ASSERT_TRUE(server.is_ok()) << server.status().to_string();
  auto chan = Channel::connect((*server)->port());
  ASSERT_TRUE(chan.is_ok()) << chan.status().to_string();
  auto resp = (*chan)->call(std::string(kMetricsMethod), {});
  ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
  std::string text(as_string_view(ByteSpan(*resp)));
  EXPECT_NE(text.find("xrpc_scrape_demo_total 3"), std::string::npos) << text;
  EXPECT_NE(text.find("xrpc_scrape_demo_seconds_count 1"), std::string::npos);
  EXPECT_NE(text.find("xrpc_scrape_demo_seconds_p95"), std::string::npos);
  // The built-in endpoint never reaches the dispatch (which would have
  // answered kNotFound).
}

// ------------------------------------------------------------ streaming

TEST(XrpcStream, EchoRoundTrip) {
  auto server = echo_server();
  auto chan = Channel::connect(server->port());
  ASSERT_TRUE(chan.is_ok());
  auto stream = (*chan)->open_stream("test.Echo/Echo");
  ASSERT_TRUE(stream.is_ok()) << stream.status().to_string();
  std::mt19937_64 rng(kDefaultSeed);
  std::string data = random_bytes(rng, 300 * 1024);
  // Odd chunk size so the last chunk is a partial one.
  constexpr size_t kChunk = 7001;
  for (size_t off = 0; off < data.size(); off += kChunk) {
    size_t n = std::min(kChunk, data.size() - off);
    ASSERT_TRUE((*stream)
                    ->write(ByteSpan(as_bytes_view(data).subspan(off, n)))
                    .is_ok());
  }
  auto resp = (*stream)->finish();
  ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
  EXPECT_EQ(as_string_view(ByteSpan(*resp)), data);
}

TEST(XrpcStream, EmptyStreamRoundTrip) {
  auto server = echo_server();
  auto chan = Channel::connect(server->port());
  ASSERT_TRUE(chan.is_ok());
  auto stream = (*chan)->open_stream("test.Echo/Echo");
  ASSERT_TRUE(stream.is_ok());
  auto resp = (*stream)->finish();
  ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
  EXPECT_TRUE(resp->empty());
}

TEST(XrpcStream, ErrorStatusOnFinish) {
  auto server = echo_server();
  auto chan = Channel::connect(server->port());
  ASSERT_TRUE(chan.is_ok());
  auto stream = (*chan)->open_stream("test.Echo/Fail");
  ASSERT_TRUE(stream.is_ok());
  ASSERT_TRUE((*stream)->write(as_bytes_view("x")).is_ok());
  auto resp = (*stream)->finish();
  EXPECT_EQ(resp.status().code(), Code::kInvalidArgument);
}

TEST(XrpcStream, CreditWindowStallsWriter) {
  // A receiver that grants slowly must stall the sender at the xRPC edge:
  // initial window = one chunk, each further grant delayed past the
  // client's next write() attempt.
  constexpr uint32_t kChunk = 8 * 1024;
  auto server = Server::start(CallHandler([](CallContext ctx) {
    ServerStream* stream = ctx.stream.get();
    auto respond = std::move(ctx.respond);
    auto total = std::make_shared<uint64_t>(0);
    stream->on_chunk([total, stream](Bytes chunk) {
      *total += chunk.size();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      (void)stream->grant(static_cast<uint32_t>(chunk.size()));
    });
    stream->on_end([total, respond] {
      Bytes out = to_bytes(std::to_string(*total));
      respond(Code::kOk, ByteSpan(out));
    });
    (void)stream->grant(kChunk);
  }));
  ASSERT_TRUE(server.is_ok());
  auto chan = Channel::connect((*server)->port());
  ASSERT_TRUE(chan.is_ok());
  auto stream = (*chan)->open_stream("test.Slow/Sink");
  ASSERT_TRUE(stream.is_ok());
  std::mt19937_64 rng(kDefaultSeed);
  std::string data = random_bytes(rng, kChunk);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE((*stream)->write(as_bytes_view(data)).is_ok());
  }
  auto resp = (*stream)->finish();
  ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
  EXPECT_EQ(as_string_view(ByteSpan(*resp)), std::to_string(4 * kChunk));
  // Every write after the first had to wait for a delayed grant.
  EXPECT_GE((*stream)->credit_stalls(), 1u);
}

TEST(XrpcStream, AbortReachesServer) {
  std::atomic<bool> aborted{false};
  std::atomic<Code> abort_code{Code::kOk};
  auto server = Server::start(CallHandler([&](CallContext ctx) {
    ServerStream* stream = ctx.stream.get();
    stream->on_chunk([](Bytes) {});
    stream->on_end([] {});
    stream->on_abort([&](Code code) {
      abort_code = code;
      aborted = true;
    });
    (void)stream->grant(1u << 16);
    // Responder intentionally dropped: an aborted stream never answers.
  }));
  ASSERT_TRUE(server.is_ok());
  auto chan = Channel::connect((*server)->port());
  ASSERT_TRUE(chan.is_ok());
  auto stream = (*chan)->open_stream("test.Abort/Me");
  ASSERT_TRUE(stream.is_ok());
  ASSERT_TRUE((*stream)->write(as_bytes_view("partial")).is_ok());
  (*stream)->abort(Code::kDataLoss);
  for (int i = 0; i < 500 && !aborted.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(aborted.load());
  EXPECT_EQ(abort_code.load(), Code::kDataLoss);
  // finish() after abort reports the abort, not a hang.
  auto resp = (*stream)->finish(2000);
  EXPECT_FALSE(resp.is_ok());
}

// Without a registry, the scrape method is just another dispatched call.
TEST(Xrpc, MetricsScrapeAbsentWithoutRegistry) {
  auto server = echo_server();
  auto chan = Channel::connect(server->port());
  ASSERT_TRUE(chan.is_ok());
  auto resp = (*chan)->call(std::string(kMetricsMethod), {});
  EXPECT_FALSE(resp.is_ok());  // echo_server dispatch answers kNotFound
}

}  // namespace
}  // namespace dpurpc::xrpc
