// Unit tests for the Prometheus-style metrics library and the paper's
// monitoring methodology (instant rate of increase, 1% stability).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "metrics/metrics.hpp"
#include "metrics/monitor.hpp"

namespace dpurpc::metrics {
namespace {

TEST(Counter, IncrementAndRead) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ConcurrentIncrements) {
  Counter c;
  constexpr int kThreads = 4, kPer = 50'000;
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&] {
      for (int j = 0; j < kPer; ++j) c.inc();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPer);
}

TEST(Gauge, SetAddSub) {
  Gauge g;
  g.set(10);
  g.add(5);
  g.sub(3);
  EXPECT_DOUBLE_EQ(g.value(), 12.0);
}

TEST(Histogram, BucketsAreCumulative) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(5);
  h.observe(50);
  h.observe(500);
  EXPECT_EQ(h.bucket_count(0), 1u);   // <= 1
  EXPECT_EQ(h.bucket_count(1), 2u);   // <= 10
  EXPECT_EQ(h.bucket_count(2), 3u);   // <= 100
  EXPECT_EQ(h.total_count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 555.5);
}

TEST(Histogram, BoundaryGoesToLowerBucket) {
  Histogram h({1.0, 10.0});
  h.observe(1.0);   // le="1" includes 1.0
  h.observe(10.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
}

TEST(Histogram, ExemplarLandsInObserveBucket) {
  Histogram h({1.0, 10.0, 100.0});
  h.put_exemplar(5.0, 0xdeadbeef);           // bucket 1: (1, 10]
  h.put_exemplar(500.0, 0xfeedface);         // overflow slot bounds.size()
  EXPECT_EQ(h.exemplar_at(0).trace_id, 0u);  // untouched bucket: none
  EXPECT_EQ(h.exemplar_at(1).trace_id, 0xdeadbeefu);
  EXPECT_DOUBLE_EQ(h.exemplar_at(1).value, 5.0);
  EXPECT_EQ(h.exemplar_at(3).trace_id, 0xfeedfaceu);
  // Not an observation: counts and sum stay untouched.
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  // Last writer wins within a bucket.
  h.put_exemplar(6.0, 0xabad1dea);
  EXPECT_EQ(h.exemplar_at(1).trace_id, 0xabad1deau);
  // Out-of-range reads answer "none" instead of tripping.
  EXPECT_EQ(h.exemplar_at(99).trace_id, 0u);
}

TEST(Histogram, ExemplarSurfacesInExposition) {
  Registry reg;
  auto& fam = reg.histogram_family("e2e_seconds", "", {0.001, 0.1});
  Histogram& h = fam.histogram({});
  h.observe(0.05);
  std::string before = reg.expose_text();
  EXPECT_EQ(before.find("# {trace_id"), std::string::npos)
      << "no exemplar annotation before one is put";
  h.put_exemplar(0.05, 0x123456789abcdef0ull);
  std::string after = reg.expose_text();
  EXPECT_NE(after.find(" # {trace_id=\"123456789abcdef0\"} 0.05"),
            std::string::npos)
      << after;
}

TEST(Family, LabelsCreateDistinctChildren) {
  Registry reg;
  auto& fam = reg.counter_family("rpc_requests_total", "requests");
  fam.counter({{"side", "client"}}).inc(3);
  fam.counter({{"side", "server"}}).inc(5);
  auto snap = reg.scrape();
  EXPECT_EQ(snap.find("rpc_requests_total", {{"side", "client"}})->value, 3);
  EXPECT_EQ(snap.find("rpc_requests_total", {{"side", "server"}})->value, 5);
}

TEST(Family, SameLabelsSameChild) {
  Registry reg;
  auto& fam = reg.counter_family("x", "");
  auto& a = fam.counter({{"k", "v"}});
  auto& b = fam.counter({{"k", "v"}});
  EXPECT_EQ(&a, &b);
}

TEST(Registry, ReRegisteringReturnsSameFamily) {
  Registry reg;
  auto& a = reg.counter_family("dup", "first");
  auto& b = reg.counter_family("dup", "second");
  EXPECT_EQ(&a, &b);
}

TEST(Registry, TextExpositionFormat) {
  Registry reg;
  reg.counter_family("reqs_total", "total requests").counter({{"msg", "small"}}).inc(7);
  reg.gauge_family("credits", "available credits").gauge().set(256);
  std::string text = reg.expose_text();
  EXPECT_NE(text.find("# TYPE reqs_total counter"), std::string::npos);
  EXPECT_NE(text.find("reqs_total{msg=\"small\"} 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE credits gauge"), std::string::npos);
  EXPECT_NE(text.find("credits 256"), std::string::npos);
}

TEST(Registry, HistogramExposition) {
  Registry reg;
  auto& fam = reg.histogram_family("lat", "latency", {1.0, 2.0});
  fam.histogram().observe(1.5);
  std::string text = reg.expose_text();
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_count 1"), std::string::npos);
}

// ------------------------------------------------------- quantiles

TEST(Histogram, QuantileEmptyIsZero) {
  Histogram h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, QuantileUniformDistribution) {
  // 100 observations spread one per unit over (0, 100] with bounds every
  // 10: rank r lands in bucket ⌈r/10⌉ and interpolates linearly, so the
  // estimate equals the observation's own value.
  Histogram h({10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  for (int i = 1; i <= 100; ++i) h.observe(i);
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(Histogram, QuantileFirstBucketInterpolatesFromZero) {
  // All mass in the first bucket (le=8): rank n/2 of n → halfway, 4.0.
  Histogram h({8.0, 16.0});
  for (int i = 0; i < 10; ++i) h.observe(1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.0);
}

TEST(Histogram, QuantileOverflowClampsToHighestBound) {
  Histogram h({1.0, 2.0});
  h.observe(100.0);
  h.observe(200.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 2.0);
}

TEST(Histogram, QuantileSkewedDistribution) {
  // 90 fast + 10 slow: p50 inside the fast bucket, p99 in the slow one.
  Histogram h({1.0, 100.0});
  for (int i = 0; i < 90; ++i) h.observe(0.5);
  for (int i = 0; i < 10; ++i) h.observe(50.0);
  // rank 50 of 90 in (0,1]: 50/90 of the way up.
  EXPECT_NEAR(h.quantile(0.50), 50.0 / 90.0, 1e-12);
  // rank 99: the 9th of 10 observations in (1,100].
  EXPECT_NEAR(h.quantile(0.99), 1.0 + 99.0 * (9.0 / 10.0), 1e-12);
}

TEST(Registry, QuantilesInScrapeAndExposition) {
  Registry reg;
  auto& fam = reg.histogram_family("lat_seconds", "latency", {1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) fam.histogram().observe(i < 50 ? 0.5 : 3.0);
  Snapshot snap = reg.scrape();
  const Sample* p50 = snap.find("lat_seconds_p50");
  const Sample* p95 = snap.find("lat_seconds_p95");
  const Sample* p99 = snap.find("lat_seconds_p99");
  ASSERT_NE(p50, nullptr);
  ASSERT_NE(p95, nullptr);
  ASSERT_NE(p99, nullptr);
  EXPECT_DOUBLE_EQ(p50->value, 1.0);        // rank 50 tops out the (0,1] bucket
  EXPECT_GT(p95->value, 2.0);               // inside the (2,4] bucket
  EXPECT_LE(p99->value, 4.0);
  std::string text = reg.expose_text();
  EXPECT_NE(text.find("lat_seconds_p50 1"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_seconds_p95"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_p99"), std::string::npos);
}

TEST(RateMonitor, QuantilesFromSnapshot) {
  Registry reg;
  auto& fam = reg.histogram_family("lat_seconds", "latency",
                                   {10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  for (int i = 1; i <= 100; ++i) fam.histogram().observe(i);
  Snapshot snap = reg.scrape();
  auto q = quantiles(snap, "lat_seconds");
  ASSERT_TRUE(q.has_value());
  EXPECT_DOUBLE_EQ(q->p50, 50.0);
  EXPECT_DOUBLE_EQ(q->p95, 95.0);
  EXPECT_DOUBLE_EQ(q->p99, 99.0);
  EXPECT_FALSE(quantiles(snap, "absent_family").has_value());
}

// Build a snapshot by hand so rate math is exact.
Snapshot make_snap(uint64_t ns, double value) {
  Snapshot s;
  s.mono_ns = ns;
  s.samples.push_back({"reqs_total", {}, value});
  return s;
}

TEST(RateMonitor, InstantRateFromLastTwoPoints) {
  RateMonitor mon("reqs_total");
  EXPECT_FALSE(mon.observe(make_snap(0, 0)).has_value());
  auto r1 = mon.observe(make_snap(1'000'000'000, 100));  // +100 in 1s
  ASSERT_TRUE(r1.has_value());
  EXPECT_DOUBLE_EQ(*r1, 100.0);
  auto r2 = mon.observe(make_snap(3'000'000'000, 500));  // +400 in 2s
  ASSERT_TRUE(r2.has_value());
  EXPECT_DOUBLE_EQ(*r2, 200.0);
  EXPECT_DOUBLE_EQ(*mon.instant_rate(), 200.0);
}

TEST(RateMonitor, StabilityWithinOnePercent) {
  RateMonitor mon("reqs_total", {}, 0.01);
  mon.observe(make_snap(0, 0));
  mon.observe(make_snap(1'000'000'000, 1000));   // rate 1000
  EXPECT_FALSE(mon.stable());                    // only one rate so far
  mon.observe(make_snap(2'000'000'000, 2005));   // rate 1005: +0.5%
  EXPECT_TRUE(mon.stable());
  mon.observe(make_snap(3'000'000'000, 3200));   // rate 1195: +19%
  EXPECT_FALSE(mon.stable());
}

TEST(RateMonitor, MissingCounterYieldsNoRate) {
  RateMonitor mon("does_not_exist");
  Snapshot s;
  s.mono_ns = 5;
  EXPECT_FALSE(mon.observe(s).has_value());
}

TEST(Registry, ConcurrentScrapeDuringIncrements) {
  // TSan regression shape for the monitoring pipeline: writer threads
  // bump counters/gauges/histograms (hot path, lock-free atomics) while
  // a scraper thread snapshots and renders text exposition (cold path,
  // Registry -> Family lock order) and a third thread keeps registering
  // new children. Counter monotonicity across scrapes is the observable
  // invariant.
  Registry reg;
  Family& reqs = reg.counter_family("reqs_total", "requests");
  Family& lat = reg.histogram_family("lat", "latency", {1, 10, 100});
  Family& gauge = reg.gauge_family("credits", "credits");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      Counter& c = reqs.counter({{"lane", std::to_string(w)}});
      Histogram& h = lat.histogram();
      Gauge& g = gauge.gauge();
      while (!stop.load(std::memory_order_relaxed)) {
        c.inc();
        h.observe(static_cast<double>(w) * 7.0);
        g.add(1.0);
        g.sub(1.0);
      }
    });
  }
  std::thread registrar([&] {
    for (int i = 0; i < 200; ++i) {
      reqs.counter({{"lane", "extra" + std::to_string(i)}}).inc();
    }
  });
  double last_total = 0;
  for (int i = 0; i < 200; ++i) {
    Snapshot snap = reg.scrape();
    double total = 0;
    for (const auto& sample : snap.samples) {
      if (sample.name == "reqs_total") total += sample.value;
    }
    EXPECT_GE(total, last_total) << "counter aggregate went backwards";
    last_total = total;
    EXPECT_FALSE(reg.expose_text().empty());
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();
  registrar.join();
}

TEST(HistogramSnapshot, MatchesLiveHistogram) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 100; ++i) h.observe(0.5 + i * 0.07);
  HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, h.total_count());
  EXPECT_DOUBLE_EQ(s.sum, h.sum());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(s.quantile(q), h.quantile(q)) << q;
  }
  EXPECT_NEAR(s.mean(), h.sum() / 100.0, 1e-12);
}

TEST(HistogramSnapshot, DeltaIsolatesTheInterval) {
  // The sweep pattern: one cumulative histogram, per-point quantiles from
  // snapshot deltas. The second interval's quantiles must see only the
  // second interval's observations.
  Histogram h({1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 50; ++i) h.observe(0.5);  // first interval: all small
  HistogramSnapshot before = h.snapshot();
  for (int i = 0; i < 50; ++i) h.observe(6.0);  // second: all in (4, 8]
  HistogramSnapshot d = h.snapshot().delta(before);
  EXPECT_EQ(d.count, 50u);
  EXPECT_DOUBLE_EQ(d.sum, 300.0);
  // Every delta observation is in the (4, 8] bucket; the cumulative
  // histogram's p50 would still sit in the first bucket.
  EXPECT_GT(d.quantile(0.5), 4.0);
  EXPECT_LE(h.quantile(0.5), 1.0);
}

TEST(HistogramSnapshot, DeltaRejectsMismatchedOrBackwards) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 3.0});
  a.observe(0.5);
  b.observe(0.5);
  HistogramSnapshot mism = a.snapshot().delta(b.snapshot());
  EXPECT_EQ(mism.count, 0u);
  EXPECT_EQ(mism.quantile(0.5), 0.0);

  HistogramSnapshot later = a.snapshot();
  a.observe(0.5);
  HistogramSnapshot backwards = later.delta(a.snapshot());
  EXPECT_EQ(backwards.count, 0u);
}

TEST(HistogramSnapshot, EmptyDeltaQuantileIsZero) {
  Histogram h({1.0, 2.0});
  h.observe(0.5);
  HistogramSnapshot s = h.snapshot();
  HistogramSnapshot d = h.snapshot().delta(s);
  EXPECT_EQ(d.count, 0u);
  EXPECT_EQ(d.quantile(0.99), 0.0);
  EXPECT_EQ(d.mean(), 0.0);
}

TEST(Snapshot, FindHonorsLabels) {
  Snapshot s;
  s.samples.push_back({"m", {{"a", "1"}}, 10});
  EXPECT_NE(s.find("m", {{"a", "1"}}), nullptr);
  EXPECT_EQ(s.find("m", {{"a", "2"}}), nullptr);
  EXPECT_EQ(s.find("m"), nullptr);
}

}  // namespace
}  // namespace dpurpc::metrics
