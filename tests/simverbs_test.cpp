// Tests for the simulated verbs layer: RC ordering, write-with-immediate
// semantics, shared receive queues, completion channels, RNR behaviour,
// byte accounting, and fault injection.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "dpu/dpu_model.hpp"
#include "simverbs/simverbs.hpp"

namespace dpurpc::simverbs {
namespace {

struct Endpoint {
  explicit Endpoint(std::string name, size_t buf_size = 4096,
                    SharedReceiveQueue* srq = nullptr)
      : pd(std::move(name)),
        send_cq(64),
        recv_cq(64),
        buffer(buf_size),
        qp(&pd, &send_cq, &recv_cq, srq) {
    mr = pd.register_memory(buffer.data(), buffer.size());
  }
  ProtectionDomain pd;
  CompletionQueue send_cq;
  CompletionQueue recv_cq;
  std::vector<std::byte> buffer;
  QueuePair qp;
  const MemoryRegion* mr;
};

TEST(QueuePairTest, ConnectPairsExactlyOnce) {
  Endpoint a("a"), b("b"), c("c");
  EXPECT_TRUE(QueuePair::connect(a.qp, b.qp).is_ok());
  EXPECT_FALSE(QueuePair::connect(a.qp, c.qp).is_ok());
  EXPECT_FALSE(QueuePair::connect(c.qp, c.qp).is_ok());
}

TEST(QueuePairTest, UnconnectedSendFails) {
  Endpoint a("a");
  SendWr wr;
  EXPECT_EQ(a.qp.post_write_with_imm(wr).code(), Code::kFailedPrecondition);
}

TEST(QueuePairTest, WriteWithImmDeliversBytesAndImmediate) {
  Endpoint a("a"), b("b");
  ASSERT_TRUE(QueuePair::connect(a.qp, b.qp).is_ok());
  b.qp.post_recv({.wr_id = 700});

  const char payload[] = "written directly into remote pinned memory";
  SendWr wr;
  wr.wr_id = 42;
  wr.local_addr = reinterpret_cast<const std::byte*>(payload);
  wr.length = sizeof(payload);
  wr.remote_offset = 1024;
  wr.rkey = b.mr->rkey();
  wr.imm_data = 0xCAFE;
  ASSERT_TRUE(a.qp.post_write_with_imm(wr).is_ok());

  // Bytes landed at the chosen offset in the remote region.
  EXPECT_EQ(std::memcmp(b.buffer.data() + 1024, payload, sizeof(payload)), 0);

  // Receiver got exactly one completion: the consumed WR + immediate.
  auto rcs = b.recv_cq.poll();
  ASSERT_EQ(rcs.size(), 1u);
  EXPECT_EQ(rcs[0].wr_id, 700u);
  EXPECT_EQ(rcs[0].opcode, Opcode::kRecv);
  EXPECT_TRUE(rcs[0].has_imm);
  EXPECT_EQ(rcs[0].imm_data, 0xCAFEu);
  EXPECT_EQ(rcs[0].byte_len, sizeof(payload));
  EXPECT_EQ(rcs[0].qp, &b.qp);

  // Sender got its completion too.
  auto scs = a.send_cq.poll();
  ASSERT_EQ(scs.size(), 1u);
  EXPECT_EQ(scs[0].wr_id, 42u);
  EXPECT_EQ(scs[0].opcode, Opcode::kWriteWithImm);
  EXPECT_EQ(scs[0].status, WcStatus::kSuccess);
}

TEST(QueuePairTest, ReliableConnectionPreservesOrder) {
  Endpoint a("a"), b("b", 1 << 16);
  ASSERT_TRUE(QueuePair::connect(a.qp, b.qp).is_ok());
  constexpr int kN = 32;
  for (int i = 0; i < kN; ++i) b.qp.post_recv({.wr_id = static_cast<uint64_t>(i)});
  for (int i = 0; i < kN; ++i) {
    uint32_t v = 0x1000 + i;
    SendWr wr;
    wr.local_addr = reinterpret_cast<const std::byte*>(&v);
    wr.length = 4;
    wr.remote_offset = static_cast<uint64_t>(i) * 4;
    wr.rkey = b.mr->rkey();
    wr.imm_data = static_cast<uint32_t>(i);
    ASSERT_TRUE(a.qp.post_write_with_imm(wr).is_ok());
  }
  auto rcs = b.recv_cq.poll();
  ASSERT_EQ(rcs.size(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(rcs[i].imm_data, static_cast<uint32_t>(i));  // in-order
    EXPECT_EQ(rcs[i].wr_id, static_cast<uint64_t>(i));     // WRs consumed FIFO
  }
}

TEST(QueuePairTest, RnrWhenNoReceivePosted) {
  Endpoint a("a"), b("b");
  ASSERT_TRUE(QueuePair::connect(a.qp, b.qp).is_ok());
  uint32_t v = 7;
  SendWr wr;
  wr.local_addr = reinterpret_cast<const std::byte*>(&v);
  wr.length = 4;
  wr.rkey = b.mr->rkey();
  EXPECT_EQ(a.qp.post_write_with_imm(wr).code(), Code::kUnavailable);
  EXPECT_EQ(a.qp.tx_counters().rnr_events.load(), 1u);
  EXPECT_TRUE(b.recv_cq.poll().empty());
}

TEST(QueuePairTest, WriteOutsideRegionRejected) {
  Endpoint a("a"), b("b", 256);
  ASSERT_TRUE(QueuePair::connect(a.qp, b.qp).is_ok());
  b.qp.post_recv({.wr_id = 1});
  std::vector<std::byte> big(512);
  SendWr wr;
  wr.local_addr = big.data();
  wr.length = 512;
  wr.remote_offset = 0;
  wr.rkey = b.mr->rkey();
  EXPECT_EQ(a.qp.post_write_with_imm(wr).code(), Code::kOutOfRange);
  auto scs = a.send_cq.poll();
  ASSERT_EQ(scs.size(), 1u);
  EXPECT_EQ(scs[0].status, WcStatus::kRemoteAccess);
}

TEST(QueuePairTest, UnknownRkeyRejected) {
  Endpoint a("a"), b("b");
  ASSERT_TRUE(QueuePair::connect(a.qp, b.qp).is_ok());
  b.qp.post_recv({.wr_id = 1});
  uint32_t v = 7;
  SendWr wr;
  wr.local_addr = reinterpret_cast<const std::byte*>(&v);
  wr.length = 4;
  wr.rkey = 0xDEAD;
  EXPECT_EQ(a.qp.post_write_with_imm(wr).code(), Code::kInvalidArgument);
}

TEST(QueuePairTest, ByteAccountingMatchesTransfers) {
  Endpoint a("a"), b("b", 1 << 16);
  ASSERT_TRUE(QueuePair::connect(a.qp, b.qp).is_ok());
  std::vector<std::byte> buf(1000);
  uint64_t total = 0;
  for (uint32_t len : {17u, 256u, 999u}) {
    b.qp.post_recv({});
    SendWr wr;
    wr.local_addr = buf.data();
    wr.length = len;
    wr.rkey = b.mr->rkey();
    ASSERT_TRUE(a.qp.post_write_with_imm(wr).is_ok());
    total += len;
  }
  EXPECT_EQ(a.qp.tx_counters().bytes.load(), total);
  EXPECT_EQ(a.qp.tx_counters().ops.load(), 3u);
  EXPECT_EQ(b.qp.tx_counters().bytes.load(), 0u);  // one-directional so far
}

TEST(QueuePairTest, SendImmCarriesOnlyImmediate) {
  Endpoint a("a"), b("b");
  ASSERT_TRUE(QueuePair::connect(a.qp, b.qp).is_ok());
  b.qp.post_recv({.wr_id = 5});
  ASSERT_TRUE(a.qp.post_send_imm(9, 0x1234).is_ok());
  auto rcs = b.recv_cq.poll();
  ASSERT_EQ(rcs.size(), 1u);
  EXPECT_EQ(rcs[0].imm_data, 0x1234u);
  EXPECT_EQ(rcs[0].byte_len, 0u);
}

TEST(SharedReceiveQueueTest, ServesMultipleQueuePairs) {
  // The paper's server side: one SRQ + one CQ shared by all connections.
  SharedReceiveQueue srq;
  ProtectionDomain server_pd("server");
  CompletionQueue server_send_cq(64), server_recv_cq(64);
  std::vector<std::byte> server_buf(8192);
  const MemoryRegion* server_mr = server_pd.register_memory(server_buf.data(), server_buf.size());

  QueuePair server_qp1(&server_pd, &server_send_cq, &server_recv_cq, &srq);
  QueuePair server_qp2(&server_pd, &server_send_cq, &server_recv_cq, &srq);
  Endpoint client1("c1"), client2("c2");
  ASSERT_TRUE(QueuePair::connect(client1.qp, server_qp1).is_ok());
  ASSERT_TRUE(QueuePair::connect(client2.qp, server_qp2).is_ok());

  for (uint64_t i = 0; i < 4; ++i) srq.post({.wr_id = i});

  uint32_t v = 1;
  for (auto* client : {&client1, &client2}) {
    SendWr wr;
    wr.local_addr = reinterpret_cast<const std::byte*>(&v);
    wr.length = 4;
    wr.rkey = server_mr->rkey();
    wr.remote_offset = 0;
    ASSERT_TRUE(client->qp.post_write_with_imm(wr).is_ok());
  }
  EXPECT_EQ(srq.depth(), 2u);  // two consumed
  auto rcs = server_recv_cq.poll();
  ASSERT_EQ(rcs.size(), 2u);
  // Completions identify which QP (connection) they arrived on.
  EXPECT_EQ(rcs[0].qp, &server_qp1);
  EXPECT_EQ(rcs[1].qp, &server_qp2);
}

TEST(CompletionQueueTest, OverflowRecordedAndDropped) {
  Endpoint a("a");
  CompletionQueue tiny(2);
  ProtectionDomain pd("x");
  std::vector<std::byte> buf(1024);
  SharedReceiveQueue srq;
  QueuePair qp(&pd, &tiny, &tiny, &srq);
  const MemoryRegion* mr = pd.register_memory(buf.data(), buf.size());
  ASSERT_TRUE(QueuePair::connect(a.qp, qp).is_ok());
  for (uint64_t i = 0; i < 4; ++i) srq.post({.wr_id = i});
  uint32_t v = 1;
  for (int i = 0; i < 4; ++i) {
    SendWr wr;
    wr.local_addr = reinterpret_cast<const std::byte*>(&v);
    wr.length = 4;
    wr.rkey = mr->rkey();
    ASSERT_TRUE(a.qp.post_write_with_imm(wr).is_ok());
  }
  EXPECT_EQ(tiny.depth(), 2u);
  EXPECT_EQ(tiny.overflow_count(), 2u);
}

TEST(CompletionChannelTest, WakesOnCompletionAndTimesOutOtherwise) {
  CompletionChannel chan;
  EXPECT_FALSE(chan.wait(10));  // nothing attached, must time out

  ProtectionDomain pd_a("a"), pd_b("b");
  CompletionQueue a_send(16), a_recv(16);
  CompletionQueue b_send(16);
  CompletionQueue b_recv(16, &chan);  // blocking side
  std::vector<std::byte> buf_b(1024);
  QueuePair qa(&pd_a, &a_send, &a_recv);
  QueuePair qb(&pd_b, &b_send, &b_recv);
  const MemoryRegion* mr_b = pd_b.register_memory(buf_b.data(), buf_b.size());
  ASSERT_TRUE(QueuePair::connect(qa, qb).is_ok());
  qb.post_recv({.wr_id = 1});

  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    uint32_t v = 3;
    SendWr wr;
    wr.local_addr = reinterpret_cast<const std::byte*>(&v);
    wr.length = 4;
    wr.rkey = mr_b->rkey();
    ASSERT_TRUE(qa.post_write_with_imm(wr).is_ok());
  });
  EXPECT_TRUE(chan.wait(1000));
  writer.join();
  EXPECT_EQ(b_recv.poll().size(), 1u);
}

TEST(CompletionChannelTest, InterruptWakesWaiter) {
  CompletionChannel chan;
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    chan.interrupt();
  });
  EXPECT_TRUE(chan.wait(1000));
  waker.join();
}

TEST(FaultInjectionTest, DroppedSendVanishesSilently) {
  Endpoint a("a"), b("b");
  ASSERT_TRUE(QueuePair::connect(a.qp, b.qp).is_ok());
  b.qp.post_recv({.wr_id = 1});
  a.qp.faults().drop_next_sends.store(1);
  uint32_t v = 9;
  SendWr wr;
  wr.local_addr = reinterpret_cast<const std::byte*>(&v);
  wr.length = 4;
  wr.rkey = b.mr->rkey();
  EXPECT_TRUE(a.qp.post_write_with_imm(wr).is_ok());  // "succeeds" at the API
  EXPECT_TRUE(b.recv_cq.poll().empty());              // but nothing arrived
  EXPECT_EQ(b.qp.recv_queue_depth(), 1u);             // WR not consumed
  // Next send goes through.
  EXPECT_TRUE(a.qp.post_write_with_imm(wr).is_ok());
  EXPECT_EQ(b.recv_cq.poll().size(), 1u);
}

TEST(QueuePairTest, DestructionFlushesOutstandingReceives) {
  ProtectionDomain pd("x");
  CompletionQueue send_cq(16), recv_cq(16);
  auto qp = std::make_unique<QueuePair>(&pd, &send_cq, &recv_cq);
  qp->post_recv({.wr_id = 11});
  qp->post_recv({.wr_id = 12});
  qp.reset();
  auto cs = recv_cq.poll();
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0].status, WcStatus::kFlushed);
  EXPECT_EQ(cs[1].wr_id, 12u);
}

// ------------------------------------------------------------ DPU model

TEST(DpuModel, FactorsMatchPaperCalibration) {
  dpu::CostModel model;
  EXPECT_DOUBLE_EQ(model.factor(dpu::WorkloadClass::kVarintDecode), 1.89);
  EXPECT_DOUBLE_EQ(model.factor(dpu::WorkloadClass::kByteCopy), 2.51);
  EXPECT_DOUBLE_EQ(model.scale_ns(dpu::Processor::kHostCpu,
                                  dpu::WorkloadClass::kVarintDecode, 100.0),
                   100.0);
  EXPECT_DOUBLE_EQ(model.scale_ns(dpu::Processor::kDpu,
                                  dpu::WorkloadClass::kVarintDecode, 100.0),
                   189.0);
}

TEST(DpuModel, DeviceSpecsMatchTableOne) {
  auto bf3 = dpu::DeviceSpec::bluefield3();
  EXPECT_EQ(bf3.cores, 16);
  EXPECT_EQ(bf3.threads, 16);
  auto host = dpu::DeviceSpec::host_xeon();
  EXPECT_EQ(host.cores, 64);
  EXPECT_EQ(host.threads, 8);
}

}  // namespace
}  // namespace dpurpc::simverbs
