// Tests for the JSON renderer: DynamicMessage source, LayoutView (in-place
// object) source, escaping, base64, enum names, pretty printing, and
// agreement between the two sources for the same logical message.
#include <gtest/gtest.h>

#include "adt/json_format.hpp"
#include "common/rng.hpp"
#include "proto/schema_parser.hpp"

namespace dpurpc::adt {
namespace {

using proto::DynamicMessage;

constexpr std::string_view kSchema = R"(
syntax = "proto3";
package js;
enum Level { LEVEL_UNSET = 0; LEVEL_LOW = 1; LEVEL_HIGH = 2; }
message Item { string name = 1; int64 big = 2; }
message Doc {
  string title = 1;
  int32 count = 2;
  uint64 big_count = 3;
  bool live = 4;
  double ratio = 5;
  bytes blob = 6;
  Level level = 7;
  Item item = 8;
  repeated Item items = 9;
  repeated uint32 ids = 10;
  repeated string tags = 11;
}
)";

class JsonFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    proto::SchemaParser parser(pool_);
    ASSERT_TRUE(parser.parse_and_link(kSchema).is_ok());
    doc_ = pool_.find_message("js.Doc");
    item_ = pool_.find_message("js.Item");
    DescriptorAdtBuilder builder(arena::StdLibFlavor::kLibstdcpp);
    doc_class_ = *builder.add_message(doc_);
    adt_ = std::move(builder).take();
    adt_.set_fingerprint(AbiFingerprint::current(arena::StdLibFlavor::kLibstdcpp));
  }

  DynamicMessage sample() {
    DynamicMessage m(doc_);
    m.set_string(doc_->field_by_name("title"), "a \"quoted\"\n title");
    m.set_int64(doc_->field_by_name("count"), -42);
    m.set_uint64(doc_->field_by_name("big_count"), 9007199254740993ull);  // > 2^53
    m.set_uint64(doc_->field_by_name("live"), 1);
    m.set_double(doc_->field_by_name("ratio"), 0.5);
    m.set_string(doc_->field_by_name("blob"), std::string("\x01\x02\xff", 3));
    m.set_uint64(doc_->field_by_name("level"), 2);
    auto* item = m.mutable_message(doc_->field_by_name("item"));
    item->set_string(item_->field_by_name("name"), "nested");
    item->set_int64(item_->field_by_name("big"), -1);
    for (int i = 0; i < 3; ++i) m.add_uint64(doc_->field_by_name("ids"), i * 10);
    m.add_string(doc_->field_by_name("tags"), "x");
    m.add_string(doc_->field_by_name("tags"), "y");
    return m;
  }

  proto::DescriptorPool pool_;
  const proto::MessageDescriptor* doc_ = nullptr;
  const proto::MessageDescriptor* item_ = nullptr;
  Adt adt_;
  uint32_t doc_class_ = 0;
};

TEST_F(JsonFixture, RendersAllFieldKinds) {
  std::string j = to_json(sample());
  EXPECT_NE(j.find("\"title\":\"a \\\"quoted\\\"\\n title\""), std::string::npos);
  EXPECT_NE(j.find("\"count\":-42"), std::string::npos);
  EXPECT_NE(j.find("\"big_count\":\"9007199254740993\""), std::string::npos);  // string
  EXPECT_NE(j.find("\"live\":true"), std::string::npos);
  EXPECT_NE(j.find("\"ratio\":0.5"), std::string::npos);
  EXPECT_NE(j.find("\"blob\":\"AQL/\""), std::string::npos);  // base64
  EXPECT_NE(j.find("\"level\":\"LEVEL_HIGH\""), std::string::npos);
  EXPECT_NE(j.find("\"item\":{\"name\":\"nested\",\"big\":\"-1\"}"), std::string::npos);
  EXPECT_NE(j.find("\"ids\":[0,10,20]"), std::string::npos);
  EXPECT_NE(j.find("\"tags\":[\"x\",\"y\"]"), std::string::npos);
}

TEST_F(JsonFixture, OmitsDefaultsByDefault) {
  DynamicMessage m(doc_);
  m.set_int64(doc_->field_by_name("count"), 7);
  std::string j = to_json(m);
  EXPECT_EQ(j, "{\"count\":7}");
  JsonOptions opts;
  opts.emit_defaults = true;
  std::string full = to_json(m, opts);
  EXPECT_NE(full.find("\"title\":\"\""), std::string::npos);
  EXPECT_NE(full.find("\"live\":false"), std::string::npos);
  EXPECT_NE(full.find("\"ids\":[]"), std::string::npos);
}

TEST_F(JsonFixture, PrettyPrinting) {
  DynamicMessage m(doc_);
  m.set_int64(doc_->field_by_name("count"), 1);
  m.set_string(doc_->field_by_name("title"), "t");
  JsonOptions opts;
  opts.pretty = true;
  std::string j = to_json(m, opts);
  EXPECT_EQ(j, "{\n  \"title\": \"t\",\n  \"count\": 1\n}");
}

TEST_F(JsonFixture, LayoutViewAgreesWithDynamicMessage) {
  // Serialize the sample, deserialize in place, render both: identical.
  DynamicMessage m = sample();
  Bytes wire = proto::WireCodec::serialize(m);
  arena::OwningArena arena(1 << 16);
  ArenaDeserializer deser(&adt_);
  auto obj = deser.deserialize(doc_class_, ByteSpan(wire), arena, {});
  ASSERT_TRUE(obj.is_ok());
  LayoutView view(&adt_, doc_class_, *obj);
  auto from_view = to_json(view, *doc_);
  ASSERT_TRUE(from_view.is_ok()) << from_view.status().to_string();
  EXPECT_EQ(*from_view, to_json(m));
}

TEST_F(JsonFixture, UnsetMessageFieldOmitted) {
  DynamicMessage m(doc_);
  std::string j = to_json(m);
  EXPECT_EQ(j, "{}");
}

TEST(Base64, KnownVectors) {
  EXPECT_EQ(base64_encode(""), "");
  EXPECT_EQ(base64_encode("f"), "Zg==");
  EXPECT_EQ(base64_encode("fo"), "Zm8=");
  EXPECT_EQ(base64_encode("foo"), "Zm9v");
  EXPECT_EQ(base64_encode("foob"), "Zm9vYg==");
  EXPECT_EQ(base64_encode("fooba"), "Zm9vYmE=");
  EXPECT_EQ(base64_encode("foobar"), "Zm9vYmFy");
}

TEST(JsonSpecials, NanAndInfinity) {
  proto::DescriptorPool pool;
  proto::SchemaParser parser(pool);
  ASSERT_TRUE(parser.parse_and_link("syntax = \"proto3\"; message F { double d = 1; }")
                  .is_ok());
  const auto* desc = pool.find_message("F");
  DynamicMessage m(desc);
  m.set_double(desc->field_by_name("d"), std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(to_json(m), "{\"d\":\"NaN\"}");
  m.set_double(desc->field_by_name("d"), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(to_json(m), "{\"d\":\"-Infinity\"}");
}

}  // namespace
}  // namespace dpurpc::adt
