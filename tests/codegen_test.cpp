// Unit tests for the adtc code generator itself (the generated code's
// *behaviour* is covered by msgs_test.cpp; here we check the generator's
// structure, ordering, and error handling).
#include <gtest/gtest.h>

#include "proto/codegen.hpp"
#include "proto/schema_parser.hpp"

namespace dpurpc::proto {
namespace {

StatusOr<std::vector<GeneratedFile>> gen(std::string_view schema,
                                         const std::string& base = "unit") {
  auto pool = std::make_unique<DescriptorPool>();
  SchemaParser parser(*pool);
  auto st = parser.parse_and_link(schema);
  if (!st.is_ok()) return st;
  static std::vector<std::unique_ptr<DescriptorPool>> keep_alive;
  keep_alive.push_back(std::move(pool));
  return CodeGenerator::generate(*keep_alive.back(), base);
}

const GeneratedFile* find(const std::vector<GeneratedFile>& files,
                          std::string_view name) {
  for (const auto& f : files) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

TEST(CppClassName, FlattensDots) {
  EXPECT_EQ(cpp_class_name("a.b.Msg"), "a_b_Msg");
  EXPECT_EQ(cpp_class_name("Msg"), "Msg");
  EXPECT_EQ(cpp_class_name("pkg.Outer.Inner"), "pkg_Outer_Inner");
}

TEST(CodeGenerator, EmitsAllFourFiles) {
  auto files = gen("syntax = \"proto3\"; message M { int32 x = 1; }");
  ASSERT_TRUE(files.is_ok()) << files.status().to_string();
  ASSERT_EQ(files->size(), 4u);
  EXPECT_NE(find(*files, "unit.pb.h"), nullptr);
  EXPECT_NE(find(*files, "unit.pb.cc"), nullptr);
  EXPECT_NE(find(*files, "unit.adt.pb.h"), nullptr);
  EXPECT_NE(find(*files, "unit.adt.pb.cc"), nullptr);
}

TEST(CodeGenerator, ClassShape) {
  auto files = gen(R"(
syntax = "proto3";
package g;
message M {
  int32 a = 1;
  string s = 2;
  repeated uint64 xs = 3;
  bool flag = 4;
}
)");
  ASSERT_TRUE(files.is_ok());
  const std::string& h = find(*files, "unit.pb.h")->content;
  // vptr base, has-bits word, accessors, serializer decls.
  EXPECT_NE(h.find("class g_M final : public ::dpurpc::adt::MessageBase"),
            std::string::npos);
  EXPECT_NE(h.find("uint32_t has_bits_ = 0;"), std::string::npos);
  EXPECT_NE(h.find("int32_t a() const noexcept"), std::string::npos);
  EXPECT_NE(h.find("void set_a(int32_t v)"), std::string::npos);
  EXPECT_NE(h.find("bool has_a() const noexcept"), std::string::npos);
  EXPECT_NE(h.find("const std::string& s() const noexcept"), std::string::npos);
  EXPECT_NE(h.find("::dpurpc::adt::RepeatedField<uint64_t> xs_;"), std::string::npos);
  EXPECT_NE(h.find("size_t ByteSizeLong() const;"), std::string::npos);
  EXPECT_NE(h.find("friend struct AdtPeer;"), std::string::npos);
  // bool stored as one byte, exposed as bool.
  EXPECT_NE(h.find("uint8_t flag_ = {};"), std::string::npos);
  EXPECT_NE(h.find("bool flag() const noexcept"), std::string::npos);
}

TEST(CodeGenerator, TopologicalOrderChildrenFirst) {
  auto files = gen(R"(
syntax = "proto3";
message Outer { Inner inner = 1; }
message Inner { int32 x = 1; }
)");
  ASSERT_TRUE(files.is_ok());
  const std::string& h = find(*files, "unit.pb.h")->content;
  size_t inner_pos = h.find("class Inner final");
  size_t outer_pos = h.find("class Outer final");
  ASSERT_NE(inner_pos, std::string::npos);
  ASSERT_NE(outer_pos, std::string::npos);
  EXPECT_LT(inner_pos, outer_pos);  // child defined before its user
}

TEST(CodeGenerator, RecursiveMessagesUseTwoPhaseRegistration) {
  auto files = gen("syntax = \"proto3\"; message R { R next = 1; int32 d = 2; }");
  ASSERT_TRUE(files.is_ok());
  const std::string& ac = find(*files, "unit.adt.pb.cc")->content;
  // Phase 1 reserves the index before phase 2 references it.
  EXPECT_NE(ac.find("idx.R = adt.add_class"), std::string::npos);
  EXPECT_NE(ac.find("adt.replace_class(idx.R"), std::string::npos);
  EXPECT_NE(ac.find("idx.R)"), std::string::npos);  // self child link
}

TEST(CodeGenerator, EnumEmission) {
  auto files = gen(R"(
syntax = "proto3";
package e;
enum Mode { MODE_OFF = 0; MODE_ON = 1; }
message M { Mode mode = 1; }
)");
  ASSERT_TRUE(files.is_ok());
  const std::string& h = find(*files, "unit.pb.h")->content;
  EXPECT_NE(h.find("enum e_Mode : int32_t"), std::string::npos);
  EXPECT_NE(h.find("e_Mode_MODE_ON = 1,"), std::string::npos);
  EXPECT_NE(h.find("e_Mode mode() const noexcept"), std::string::npos);
}

TEST(CodeGenerator, ServiceIntrospectionTables) {
  auto files = gen(R"(
syntax = "proto3";
package s;
message A { int32 x = 1; }
service Svc { rpc Do (A) returns (A); rpc Other (A) returns (A); }
)");
  ASSERT_TRUE(files.is_ok());
  const std::string& ah = find(*files, "unit.adt.pb.h")->content;
  EXPECT_NE(ah.find("struct s_Svc_Introspection"), std::string::npos);
  EXPECT_NE(ah.find("kMethodCount = 2"), std::string::npos);
  EXPECT_NE(ah.find("\"s.Svc/Do\""), std::string::npos);
  EXPECT_NE(ah.find("\"s.Svc/Other\""), std::string::npos);
}

TEST(CodeGenerator, RejectsTooManySingularFields) {
  std::string src = "syntax = \"proto3\";\nmessage Wide {\n";
  for (int i = 1; i <= 33; ++i) {
    src += "  int32 f" + std::to_string(i) + " = " + std::to_string(i) + ";\n";
  }
  src += "}\n";
  auto files = gen(src);
  EXPECT_EQ(files.status().code(), Code::kInvalidArgument);
}

TEST(CodeGenerator, ManyRepeatedFieldsAreFine) {
  // The 32-field limit applies to singular (has-bit) fields only.
  std::string src = "syntax = \"proto3\";\nmessage Rep {\n";
  for (int i = 1; i <= 40; ++i) {
    src += "  repeated int32 f" + std::to_string(i) + " = " + std::to_string(i) + ";\n";
  }
  src += "}\n";
  EXPECT_TRUE(gen(src).is_ok());
}

TEST(CodeGenerator, GeneratedSourceIncludesDoNotEditBanner) {
  auto files = gen("syntax = \"proto3\"; message M { int32 x = 1; }");
  ASSERT_TRUE(files.is_ok());
  for (const auto& f : *files) {
    EXPECT_EQ(f.content.find("// Generated by adtc. DO NOT EDIT."), 0u) << f.name;
  }
}

}  // namespace
}  // namespace dpurpc::proto
