// Tests for the from-scratch lock-order checker (common/lockdep.hpp).
//
// This translation unit is compiled with DPURPC_LOCKDEP force-defined
// (see tests/CMakeLists.txt), independent of the build-wide option, so
// the instrumented Mutex is always under test here. The companion
// binary lockdep_off_test pins down the compiled-out shape.
//
// Violations are observed through a test handler instead of the default
// abort: the handler records the report and lets the thread continue,
// which keeps each detection case inspectable (both acquisition sites
// must appear in the report) without death-test forking.

#include "common/lockdep.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace dpurpc::lockdep {
namespace {

std::string& last_report() {
  static std::string r;
  return r;
}

void capture_handler(const char* report) { last_report() = report; }

class LockdepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_graph_for_testing();
    last_report().clear();
    prev_ = set_violation_handler(&capture_handler);
  }
  void TearDown() override {
    set_violation_handler(prev_);
    reset_graph_for_testing();
  }
  ViolationHandler prev_ = nullptr;
};

TEST_F(LockdepTest, CleanNestedOrderPasses) {
  Mutex a{"test.clean.A"};
  Mutex b{"test.clean.B"};
  for (int i = 0; i < 3; ++i) {
    ScopedLock la(a);
    ScopedLock lb(b);  // consistently A -> B: no violation, ever
  }
  EXPECT_TRUE(last_report().empty());
  EXPECT_EQ(held_count(), 0u);
}

TEST_F(LockdepTest, AbBaInversionDetected) {
  Mutex a{"test.inv.A"};
  Mutex b{"test.inv.B"};
  {
    ScopedLock la(a);
    ScopedLock lb(b);  // establishes A -> B
  }
  ASSERT_TRUE(last_report().empty());
  {
    ScopedLock lb(b);
    ScopedLock la(a);  // B -> A: closes the cycle
  }
  const std::string& rep = last_report();
  ASSERT_FALSE(rep.empty());
  EXPECT_NE(rep.find("LOCK ORDER INVERSION"), std::string::npos) << rep;
  // The report must carry both lock classes and both acquisition sites
  // (the held lock's and the acquiring lock's code addresses).
  EXPECT_NE(rep.find("test.inv.A"), std::string::npos) << rep;
  EXPECT_NE(rep.find("test.inv.B"), std::string::npos) << rep;
  EXPECT_NE(rep.find("held, acquired at"), std::string::npos) << rep;
  EXPECT_NE(rep.find("acquiring at"), std::string::npos) << rep;
}

TEST_F(LockdepTest, InversionThroughIntermediaryDetected) {
  Mutex a{"test.chain.A"};
  Mutex b{"test.chain.B"};
  Mutex c{"test.chain.C"};
  {
    ScopedLock la(a);
    ScopedLock lb(b);  // A -> B
  }
  {
    ScopedLock lb(b);
    ScopedLock lc(c);  // B -> C
  }
  ASSERT_TRUE(last_report().empty());
  {
    ScopedLock lc(c);
    ScopedLock la(a);  // C -> A: cycle via A -> B -> C
  }
  const std::string& rep = last_report();
  ASSERT_NE(rep.find("LOCK ORDER INVERSION"), std::string::npos) << rep;
  // The witness path through the intermediary must be part of the report.
  EXPECT_NE(rep.find("test.chain.B"), std::string::npos) << rep;
}

TEST_F(LockdepTest, OrderIsPerClassNotPerInstance) {
  // Two instances of one class (e.g. two BoundedQueues) impose no order
  // between themselves...
  Mutex q1{"test.cls.Queue"};
  Mutex q2{"test.cls.Queue"};
  Mutex other{"test.cls.Other"};
  {
    ScopedLock l1(q1);
    ScopedLock lo(other);  // Queue -> Other
  }
  {
    ScopedLock lo(other);
    ScopedLock l2(q2);  // Other -> Queue on a DIFFERENT instance:
  }                     // still an inversion — order rules are per class
  EXPECT_NE(last_report().find("LOCK ORDER INVERSION"), std::string::npos)
      << last_report();
}

TEST_F(LockdepTest, SelfDeadlockDetected) {
  // Driven through the raw hooks: with a surviving test handler, a real
  // Mutex would proceed into the OS lock and genuinely deadlock — the
  // hooks exercise the detection without blocking. (Under the default
  // aborting handler the process dies before reaching the OS mutex.)
  const LockClass* cls = intern_lock_class("test.self.A");
  int instance = 0;
  on_acquire(cls, &instance, reinterpret_cast<void*>(&instance));
  ASSERT_TRUE(last_report().empty());
  on_acquire(cls, &instance, reinterpret_cast<void*>(&instance));
  const std::string& rep = last_report();
  ASSERT_NE(rep.find("SELF-DEADLOCK"), std::string::npos) << rep;
  EXPECT_NE(rep.find("test.self.A"), std::string::npos) << rep;
  EXPECT_NE(rep.find("first acquired at"), std::string::npos) << rep;
  EXPECT_NE(rep.find("re-acquired at"), std::string::npos) << rep;
  on_release(cls, &instance);
  EXPECT_EQ(held_count(), 0u);
}

TEST_F(LockdepTest, DomainRuleNoLocksHeldFires) {
  Mutex a{"test.domain.A"};
  {
    ScopedLock la(a);
    // A lock is held entering the "deserialize" region: rule fires.
    assert_no_locks_held("ArenaDeserializer::deserialize");
    const std::string& rep = last_report();
    ASSERT_NE(rep.find("DOMAIN RULE VIOLATION"), std::string::npos) << rep;
    EXPECT_NE(rep.find("ArenaDeserializer::deserialize"), std::string::npos)
        << rep;
    EXPECT_NE(rep.find("test.domain.A"), std::string::npos) << rep;
  }
  last_report().clear();
  // No lock held: clean.
  assert_no_locks_held("ArenaDeserializer::deserialize");
  EXPECT_TRUE(last_report().empty());
}

TEST_F(LockdepTest, CondVarWaitReleasesHeldStack) {
  Mutex mu{"test.cv.mu"};
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    ScopedLock lk(mu);
    ready = true;
    cv.notify_one();
  });
  {
    UniqueLock lk(mu);
    cv.wait(lk, [&] { return ready; });
    // Back from wait: the lock is held again and tracked exactly once.
    EXPECT_EQ(held_count(), 1u);
  }
  waker.join();
  EXPECT_EQ(held_count(), 0u);
  EXPECT_TRUE(last_report().empty());
}

TEST_F(LockdepTest, ConcurrentAcquisitionsAreTracked) {
  // The checker itself must be thread-safe: many threads hammering the
  // same clean order must produce no violation and no crash.
  Mutex outer{"test.mt.outer"};
  Mutex inner{"test.mt.inner"};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        ScopedLock lo(outer);
        ScopedLock li(inner);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(last_report().empty());
}

TEST_F(LockdepTest, TryLockEstablishesOrder) {
  Mutex a{"test.try.A"};
  Mutex b{"test.try.B"};
  {
    ScopedLock la(a);
    ASSERT_TRUE(b.try_lock());  // records A -> B like a blocking acquire
    b.unlock();
  }
  {
    ScopedLock lb(b);
    ScopedLock la(a);
  }
  EXPECT_NE(last_report().find("LOCK ORDER INVERSION"), std::string::npos)
      << last_report();
}

}  // namespace
}  // namespace dpurpc::lockdep
