// Pins down the compiled-out shape of the lockdep layer.
//
// This TU force-undefines DPURPC_LOCKDEP (so it checks the release
// flavor even in an instrumented build): lockdep::Mutex must then be
// layout-identical to std::mutex, make no checker calls, and the
// assertion macro must be a no-op. It is a separate binary from
// lockdep_test because the two Mutex definitions must never meet in one
// program (ODR).

#ifdef DPURPC_LOCKDEP
#undef DPURPC_LOCKDEP
#endif

#include "common/lockdep.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <thread>
#include <type_traits>

namespace dpurpc::lockdep {
namespace {

// The whole point: a lockdep::Mutex member costs exactly a std::mutex.
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "release lockdep::Mutex must add no state");
static_assert(alignof(Mutex) == alignof(std::mutex));
static_assert(std::is_base_of_v<std::mutex, Mutex>,
              "release lockdep::Mutex must be the std::mutex interface");

TEST(LockdepOff, MutexIsPlainStdMutex) {
  Mutex mu{"ignored.in.release"};
  {
    ScopedLock lk(mu);
  }
  {
    UniqueLock lk(mu);
    lk.unlock();
    lk.lock();
  }
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(LockdepOff, AssertMacroCompilesToNothing) {
  Mutex mu{"ignored"};
  ScopedLock lk(mu);
  // With the checker compiled out this must be inert even while a lock
  // is held (in instrumented builds it would be a violation).
  DPURPC_LOCKDEP_ASSERT_NO_LOCKS_HELD("ArenaDeserializer::deserialize");
  SUCCEED();
}

TEST(LockdepOff, CondVarWorksWithReleaseMutex) {
  Mutex mu{"ignored"};
  CondVar cv;
  bool flag = false;
  std::thread t([&] {
    ScopedLock lk(mu);
    flag = true;
    cv.notify_one();
  });
  {
    UniqueLock lk(mu);
    cv.wait(lk, [&] { return flag; });
  }
  t.join();
  SUCCEED();
}

}  // namespace
}  // namespace dpurpc::lockdep
