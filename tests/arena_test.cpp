// Unit tests for the arena allocator and zero-copy std::string crafting.
#include <gtest/gtest.h>

#include <cstring>

#include "arena/arena.hpp"
#include "arena/string_craft.hpp"
#include "common/rng.hpp"

namespace dpurpc::arena {
namespace {

TEST(Arena, BumpAllocatesSequentially) {
  OwningArena a(1024);
  void* p1 = a.allocate(16);
  void* p2 = a.allocate(16);
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(static_cast<std::byte*>(p2) - static_cast<std::byte*>(p1), 16);
}

TEST(Arena, RespectsAlignment) {
  OwningArena a(1024);
  a.allocate(1, 1);
  void* p = a.allocate(8, 64);
  EXPECT_TRUE(dpurpc::is_aligned(p, 64));
}

TEST(Arena, ExhaustionReturnsNull) {
  OwningArena a(64);
  EXPECT_NE(a.allocate(64, 1), nullptr);
  EXPECT_EQ(a.allocate(1, 1), nullptr);
}

TEST(Arena, AlignmentPaddingCountsTowardCapacity) {
  OwningArena a(16);
  a.allocate(1, 1);                     // used = 1
  EXPECT_EQ(a.allocate(16, 8), nullptr);  // would need 8 (pad) + 16 > 16
  EXPECT_NE(a.allocate(8, 8), nullptr);
}

TEST(Arena, ResetReclaimsEverything) {
  OwningArena a(128);
  a.allocate(100, 1);
  EXPECT_EQ(a.allocate(100, 1), nullptr);
  a.reset();
  EXPECT_NE(a.allocate(100, 1), nullptr);
}

TEST(Arena, ContainsChecksBounds) {
  OwningArena a(64);
  void* p = a.allocate(8);
  EXPECT_TRUE(a.contains(p));
  int local;
  EXPECT_FALSE(a.contains(&local));
}

TEST(Arena, AllocateArrayTyped) {
  OwningArena a(1024);
  auto* xs = a.allocate_array<uint64_t>(10);
  ASSERT_NE(xs, nullptr);
  EXPECT_TRUE(dpurpc::is_aligned(xs, alignof(uint64_t)));
  for (int i = 0; i < 10; ++i) xs[i] = i;  // must be writable
}

// ------------------------------------------------------ string crafting

TEST(StringLayout, HostIsLibstdcpp) {
  // This build runs against libstdc++; the self-check must pass for it and
  // fail for the libc++ layout. (On a libc++ host the roles would flip —
  // exactly the runtime detection the paper calls for.)
  auto flavor = detect_string_layout();
  ASSERT_TRUE(flavor.is_ok()) << flavor.status().to_string();
  EXPECT_EQ(*flavor, StdLibFlavor::kLibstdcpp);
  EXPECT_TRUE(verify_string_layout(StdLibFlavor::kLibstdcpp).is_ok());
  EXPECT_FALSE(verify_string_layout(StdLibFlavor::kLibcpp).is_ok());
}

// Craft with delta=0 (the paper's mirrored address space): the crafted
// bytes must behave as a real std::string *in this process*.
TEST(StringCraft, SsoStringIsReadableAsRealString) {
  OwningArena a(4096);
  alignas(8) unsigned char slot[sizeof(std::string)];
  ASSERT_TRUE(craft_string(slot, "short", a, {}, StdLibFlavor::kLibstdcpp).is_ok());
  const auto* s = reinterpret_cast<const std::string*>(slot);
  EXPECT_EQ(*s, "short");
  EXPECT_EQ(s->size(), 5u);
  EXPECT_EQ(s->c_str()[5], '\0');
  // SSO: data must point inside the instance, and no arena use.
  EXPECT_GE(reinterpret_cast<const unsigned char*>(s->data()), slot);
  EXPECT_LT(reinterpret_cast<const unsigned char*>(s->data()), slot + sizeof(slot));
  EXPECT_EQ(a.used(), 0u);
}

TEST(StringCraft, SsoBoundaryAt15Chars) {
  OwningArena a(4096);
  alignas(8) unsigned char slot[sizeof(std::string)];
  std::string fifteen(15, 'x');
  ASSERT_TRUE(craft_string(slot, fifteen, a, {}, StdLibFlavor::kLibstdcpp).is_ok());
  EXPECT_EQ(a.used(), 0u);  // still SSO
  const auto* s = reinterpret_cast<const std::string*>(slot);
  EXPECT_EQ(*s, fifteen);

  std::string sixteen(16, 'y');
  ASSERT_TRUE(craft_string(slot, sixteen, a, {}, StdLibFlavor::kLibstdcpp).is_ok());
  EXPECT_GT(a.used(), 0u);  // out of line
  EXPECT_EQ(*reinterpret_cast<const std::string*>(slot), sixteen);
}

TEST(StringCraft, LongStringLivesInArena) {
  OwningArena a(4096);
  alignas(8) unsigned char slot[sizeof(std::string)];
  std::string big(1000, 'z');
  ASSERT_TRUE(craft_string(slot, big, a, {}, StdLibFlavor::kLibstdcpp).is_ok());
  const auto* s = reinterpret_cast<const std::string*>(slot);
  EXPECT_EQ(*s, big);
  EXPECT_TRUE(a.contains(s->data()));
  EXPECT_EQ(s->c_str()[1000], '\0');  // NUL-terminated like a real string
}

TEST(StringCraft, EmptyString) {
  OwningArena a(64);
  alignas(8) unsigned char slot[sizeof(std::string)];
  ASSERT_TRUE(craft_string(slot, "", a, {}, StdLibFlavor::kLibstdcpp).is_ok());
  const auto* s = reinterpret_cast<const std::string*>(slot);
  EXPECT_TRUE(s->empty());
  EXPECT_EQ(s->c_str()[0], '\0');
}

TEST(StringCraft, ArenaExhaustionReported) {
  OwningArena a(8);  // too small for a 100-char payload
  alignas(8) unsigned char slot[sizeof(std::string)];
  std::string big(100, 'q');
  EXPECT_EQ(craft_string(slot, big, a, {}, StdLibFlavor::kLibstdcpp).code(),
            dpurpc::Code::kResourceExhausted);
}

// Nonzero delta: pointers are emitted in the receiver's address space.
// Simulate by crafting into a "send" buffer, memcpy'ing it to a "receive"
// buffer at a different address (the RDMA write), and reading it there.
TEST(StringCraft, DeltaRebasesPointersAcrossBufferCopy) {
  constexpr size_t kSize = 4096;
  std::vector<unsigned char> sbuf(kSize), rbuf(kSize);
  AddressTranslator xlate{reinterpret_cast<intptr_t>(rbuf.data()) -
                          reinterpret_cast<intptr_t>(sbuf.data())};
  Arena send_arena(sbuf.data() + 64, kSize - 64);

  std::string long_payload(200, 'p');
  ASSERT_TRUE(craft_string(sbuf.data(), long_payload, send_arena, xlate,
                           StdLibFlavor::kLibstdcpp)
                  .is_ok());
  std::string short_payload = "tiny";
  ASSERT_TRUE(craft_string(sbuf.data() + 32, short_payload, send_arena, xlate,
                           StdLibFlavor::kLibstdcpp)
                  .is_ok());

  std::memcpy(rbuf.data(), sbuf.data(), kSize);  // the "RDMA write"

  const auto* s_long = reinterpret_cast<const std::string*>(rbuf.data());
  const auto* s_short = reinterpret_cast<const std::string*>(rbuf.data() + 32);
  EXPECT_EQ(*s_long, long_payload);
  EXPECT_EQ(*s_short, short_payload);
  // The long string's chars must resolve inside the receive buffer.
  EXPECT_GE(reinterpret_cast<const unsigned char*>(s_long->data()), rbuf.data());
  EXPECT_LT(reinterpret_cast<const unsigned char*>(s_long->data()), rbuf.data() + kSize);
}

TEST(StringCraft, ReadCraftedStringMatchesWithoutStdString) {
  OwningArena a(4096);
  alignas(8) unsigned char slot[sizeof(std::string)];
  ASSERT_TRUE(craft_string(slot, "roundtrip-check", a, {}, StdLibFlavor::kLibstdcpp).is_ok());
  auto view = read_crafted_string(slot, StdLibFlavor::kLibstdcpp);
  ASSERT_TRUE(view.is_ok());
  EXPECT_EQ(*view, "roundtrip-check");
}

// Property sweep: random contents across the SSO boundary round-trip.
class StringCraftSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(StringCraftSweep, RoundTripsAtEveryLength) {
  size_t n = GetParam();
  std::mt19937_64 rng(dpurpc::kDefaultSeed + n);
  OwningArena a(1 << 16);
  alignas(8) unsigned char slot[sizeof(std::string)];
  for (int i = 0; i < 50; ++i) {
    std::string content = dpurpc::random_ascii(rng, n);
    ASSERT_TRUE(craft_string(slot, content, a, {}, StdLibFlavor::kLibstdcpp).is_ok());
    EXPECT_EQ(*reinterpret_cast<const std::string*>(slot), content);
    a.reset();
  }
}

INSTANTIATE_TEST_SUITE_P(AroundSsoBoundary, StringCraftSweep,
                         ::testing::Values(0, 1, 7, 14, 15, 16, 17, 31, 32, 255,
                                           8000));

}  // namespace
}  // namespace dpurpc::arena
