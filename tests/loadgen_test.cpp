// Tests for the open-loop load generator (DESIGN.md §3.19): the arrival
// processes' statistics and determinism, and the driver's open-loop
// invariant — a stalled system changes what completes, never what
// arrives or how much is offered.
#include "loadgen/loadgen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <vector>

#include "loadgen/schedule.hpp"

namespace dpurpc::loadgen {
namespace {

std::vector<uint64_t> draw_arrivals(const ScheduleConfig& config, size_t n) {
  ArrivalSchedule s(config);
  std::vector<uint64_t> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(s.next_arrival_ns());
  return out;
}

/// Mean and coefficient of variation of the inter-arrival gaps.
struct GapStats {
  double mean_ns = 0;
  double cv = 0;
};

GapStats gap_stats(const std::vector<uint64_t>& arrivals) {
  GapStats g;
  if (arrivals.size() < 2) return g;
  std::vector<double> gaps;
  gaps.reserve(arrivals.size() - 1);
  for (size_t i = 1; i < arrivals.size(); ++i) {
    gaps.push_back(static_cast<double>(arrivals[i] - arrivals[i - 1]));
  }
  double sum = 0;
  for (double d : gaps) sum += d;
  g.mean_ns = sum / static_cast<double>(gaps.size());
  double var = 0;
  for (double d : gaps) var += (d - g.mean_ns) * (d - g.mean_ns);
  var /= static_cast<double>(gaps.size());
  g.cv = g.mean_ns > 0 ? std::sqrt(var) / g.mean_ns : 0;
  return g;
}

/// Index of dispersion of counts: variance/mean of per-window arrival
/// counts. ~1 for Poisson; >> 1 for bursty processes at window sizes
/// comparable to the burst holding times.
double dispersion(const std::vector<uint64_t>& arrivals, uint64_t window_ns) {
  std::vector<uint64_t> counts((arrivals.back() / window_ns) + 1, 0);
  for (uint64_t a : arrivals) ++counts[a / window_ns];
  double mean = static_cast<double>(arrivals.size()) /
                static_cast<double>(counts.size());
  double var = 0;
  for (uint64_t c : counts) {
    double d = static_cast<double>(c) - mean;
    var += d * d;
  }
  var /= static_cast<double>(counts.size());
  return mean > 0 ? var / mean : 0;
}

TEST(ArrivalSchedule, SameSeedSameSequence) {
  ScheduleConfig config;
  config.rate_rps = 50'000;
  config.seed = 1234;
  EXPECT_EQ(draw_arrivals(config, 5000), draw_arrivals(config, 5000));

  config.process = ArrivalProcess::kBursty;
  EXPECT_EQ(draw_arrivals(config, 5000), draw_arrivals(config, 5000));
}

TEST(ArrivalSchedule, DifferentSeedDifferentSequence) {
  ScheduleConfig a, b;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(draw_arrivals(a, 100), draw_arrivals(b, 100));
}

TEST(ArrivalSchedule, ArrivalsAreNonDecreasing) {
  for (ArrivalProcess p : {ArrivalProcess::kPoisson, ArrivalProcess::kBursty}) {
    ScheduleConfig config;
    config.process = p;
    config.rate_rps = 200'000;
    auto arrivals = draw_arrivals(config, 20'000);
    EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()))
        << arrival_process_name(p);
  }
}

TEST(ArrivalSchedule, PoissonMatchesRateAndIsMemoryless) {
  ScheduleConfig config;
  config.rate_rps = 100'000;  // 10 µs mean gap
  config.seed = 42;
  auto arrivals = draw_arrivals(config, 50'000);
  GapStats g = gap_stats(arrivals);
  // Mean inter-arrival = 1/rate within sampling noise.
  EXPECT_NEAR(g.mean_ns, 10'000.0, 500.0);
  // Exponential gaps: coefficient of variation 1.
  EXPECT_NEAR(g.cv, 1.0, 0.05);
  // Counts in fixed windows are Poisson: dispersion index ~1.
  EXPECT_LT(dispersion(arrivals, 1'000'000), 1.5);
}

TEST(ArrivalSchedule, BurstyKeepsLongRunRateButOverdisperses) {
  ScheduleConfig config;
  config.process = ArrivalProcess::kBursty;
  config.rate_rps = 100'000;
  config.on_mean_s = 0.002;
  config.off_mean_s = 0.002;
  config.seed = 42;
  auto arrivals = draw_arrivals(config, 50'000);
  // Long-run offered rate stays the configured one (the ON-state rate is
  // scaled up by the duty cycle to compensate for the silences).
  double span_s = static_cast<double>(arrivals.back()) * 1e-9;
  double rate = static_cast<double>(arrivals.size()) / span_s;
  EXPECT_NEAR(rate, 100'000.0, 15'000.0);
  // At windows comparable to the holding times, on-off traffic is far
  // burstier than Poisson at the same mean rate.
  EXPECT_GT(dispersion(arrivals, 1'000'000), 3.0);
}

TEST(LoadgenRun, CompletionsAreCountedAndQuantilesFinite) {
  RunConfig config;
  config.schedule.rate_rps = 100'000;
  config.requests = 2000;
  RunResult r = run_open_loop(config, [](size_t, CompletionFn done) {
    done(true);
    return true;
  });
  EXPECT_EQ(r.scheduled, 2000u);
  EXPECT_EQ(r.launched, 2000u);
  EXPECT_EQ(r.completed, 2000u);
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(r.timeouts, 0u);
  EXPECT_GT(r.offered_rps, 0.0);
  EXPECT_GT(r.achieved_rps, 0.0);
  EXPECT_TRUE(std::isfinite(r.p99_us));
  EXPECT_LE(r.p50_us, r.p95_us);
  EXPECT_LE(r.p95_us, r.p99_us);
}

TEST(LoadgenRun, ErrorsAreNotLatencySamples) {
  RunConfig config;
  config.schedule.rate_rps = 200'000;
  config.requests = 500;
  RunResult r = run_open_loop(config, [](size_t, CompletionFn done) {
    done(false);
    return true;
  });
  EXPECT_EQ(r.errors, 500u);
  EXPECT_EQ(r.completed, 0u);
  EXPECT_EQ(r.timeouts, 0u);
}

TEST(LoadgenRun, RefusedSubmitIsADropAndNeverCompletes) {
  RunConfig config;
  config.schedule.rate_rps = 200'000;
  config.requests = 300;
  RunResult r = run_open_loop(config, [](size_t, CompletionFn) {
    return false;  // client-edge backpressure on every arrival
  });
  EXPECT_EQ(r.scheduled, 300u);
  EXPECT_EQ(r.launched, 0u);
  EXPECT_EQ(r.dropped, 300u);
  EXPECT_EQ(r.completed, 0u);
  EXPECT_EQ(r.timeouts, 0u);
}

// The open-loop invariant: a system that never completes anything still
// sees every scheduled arrival — the schedule does not self-pace. The
// outstanding cap converts the unabsorbable arrivals into drops, and the
// in-flight requests into timeouts at drain.
TEST(LoadgenRun, StalledSystemGetsFullOfferedLoad) {
  RunConfig config;
  config.schedule.rate_rps = 200'000;
  config.requests = 100;
  config.max_outstanding = 8;
  config.timeout_ns = 20'000'000;  // keep the drain wait short
  std::vector<CompletionFn> parked;
  std::mutex mu;
  RunResult r = run_open_loop(config, [&](size_t, CompletionFn done) {
    std::lock_guard<std::mutex> lock(mu);
    parked.push_back(std::move(done));
    return true;
  });
  EXPECT_EQ(r.scheduled, 100u);
  EXPECT_EQ(r.launched, 8u);
  EXPECT_EQ(r.dropped, 92u);
  EXPECT_EQ(r.completed, 0u);
  EXPECT_EQ(r.timeouts, 8u);
  // Stragglers completing after the run ended must be safe no-ops (the
  // callbacks hold the run state alive) and not disturb the accounting.
  for (auto& done : parked) done(true);
}

TEST(LoadgenRun, MixDrawHonorsZeroWeights) {
  RunConfig config;
  config.schedule.rate_rps = 200'000;
  config.requests = 400;
  config.mix_weights = {0.0, 1.0, 0.0};
  std::atomic<uint64_t> wrong{0};
  RunResult r = run_open_loop(config, [&](size_t mix_index, CompletionFn done) {
    if (mix_index != 1) wrong.fetch_add(1);
    done(true);
    return true;
  });
  EXPECT_EQ(r.completed, 400u);
  EXPECT_EQ(wrong.load(), 0u);
}

TEST(LoadgenCalibrate, InstantCompletionsYieldPositiveRate) {
  double rate = calibrate_max_rps(
      [](size_t, CompletionFn done) {
        done(true);
        return true;
      },
      /*seconds=*/0.05, /*concurrency=*/16);
  EXPECT_GT(rate, 0.0);
}

TEST(LoadgenBounds, LatencyBucketsAreStrictlyIncreasing) {
  auto bounds = latency_bounds_seconds();
  ASSERT_GE(bounds.size(), 2u);
  EXPECT_NEAR(bounds.front(), 1e-6, 1e-9);
  EXPECT_GE(bounds.back(), 10.0);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
  }
}

}  // namespace
}  // namespace dpurpc::loadgen
