// End-to-end randomized stress: every feature at once through the full
// stack — foreground + background methods, copy-path + fully-offloaded
// responses, payloads from empty to multi-block, deliberate error methods,
// several concurrent xRPC clients — then total-consistency and
// full-reclamation checks. Deterministic seeds.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/rng.hpp"
#include "grpccompat/dpu_proxy.hpp"
#include "grpccompat/host_service.hpp"
#include "proto/schema_parser.hpp"
#include "xrpc/channel.hpp"

namespace dpurpc::grpccompat {
namespace {

constexpr std::string_view kSchema = R"(
syntax = "proto3";
package st;
message Blob { bytes data = 1; uint64 checksum = 2; repeated uint32 ints = 3; }
message Ack { uint64 checksum = 1; uint64 bytes_seen = 2; }
service Stress {
  rpc EchoSum (Blob) returns (Ack);      // foreground, copy response
  rpc SlowSum (Blob) returns (Ack);      // background
  rpc FastSum (Blob) returns (Ack);      // fully offloaded response
  rpc AlwaysFail (Blob) returns (Ack);   // handler error
}
)";

uint64_t fnv1a(ByteSpan data) {
  uint64_t h = 1469598103934665603ull;
  for (std::byte b : data) {
    h ^= static_cast<uint8_t>(b);
    h *= 1099511628211ull;
  }
  return h;
}

TEST(EndToEndStress, EverythingAtOnce) {
  proto::DescriptorPool pool;
  proto::SchemaParser parser(pool);
  ASSERT_TRUE(parser.parse_and_link(kSchema).is_ok());
  auto manifest = OffloadManifest::build(pool, arena::StdLibFlavor::kLibstdcpp);
  ASSERT_TRUE(manifest.is_ok());

  rdmarpc::ConnectionConfig cfg;  // stress reclamation with small buffers
  cfg.sbuf_size = 512 * 1024;
  cfg.rbuf_size = 1024 * 1024;
  cfg.credits = 32;
  simverbs::ProtectionDomain dpu_pd("dpu"), host_pd("host");
  rdmarpc::Connection dpu_conn(rdmarpc::Role::kClient, &dpu_pd, cfg);
  rdmarpc::Connection host_conn(rdmarpc::Role::kServer, &host_pd, cfg);
  ASSERT_TRUE(rdmarpc::Connection::connect(dpu_conn, host_conn).is_ok());

  HostEngine host(&host_conn, &*manifest, &pool);
  ASSERT_TRUE(host.rpc_server().enable_background({.threads = 2}).is_ok());

  // Shared verification state (handlers run on poller + pool threads).
  std::atomic<uint64_t> host_bytes_seen{0};

  auto sum_logic = [&](const adt::LayoutView& req, uint64_t* checksum,
                       uint64_t* nbytes) {
    std::string_view data = req.get_string(1);
    *checksum = fnv1a(as_bytes_view(data));
    for (uint32_t i = 0; i < req.repeated_size(3); ++i) {
      *checksum ^= req.repeated_uint64(3, i);
    }
    *nbytes = data.size();
    host_bytes_seen.fetch_add(data.size(), std::memory_order_relaxed);
  };

  ASSERT_TRUE(host.register_unary(
                      "st.Stress/EchoSum",
                      [&](const ServerContext&, const adt::LayoutView& req,
                          proto::DynamicMessage& resp) {
                        uint64_t sum, n;
                        sum_logic(req, &sum, &n);
                        resp.set_uint64(resp.descriptor()->field_by_name("checksum"), sum);
                        resp.set_uint64(resp.descriptor()->field_by_name("bytes_seen"), n);
                        return Status::ok();
                      })
                  .is_ok());
  ASSERT_TRUE(host.register_unary_inplace(
                      "st.Stress/FastSum",
                      [&](const ServerContext&, const adt::LayoutView& req,
                          adt::LayoutBuilder& resp) {
                        uint64_t sum, n;
                        sum_logic(req, &sum, &n);
                        DPURPC_RETURN_IF_ERROR(resp.set_uint64(1, sum));
                        return resp.set_uint64(2, n);
                      })
                  .is_ok());
  const auto* slow_entry = manifest->find_by_name("st.Stress/SlowSum");
  const auto* ack_desc = pool.find_message("st.Ack");
  ASSERT_TRUE(host.rpc_server()
                  .register_background_handler(
                      slow_entry->method_id,
                      [&](const rdmarpc::RequestView& r, Bytes& out) {
                        adt::LayoutView req(&manifest->adt(), slow_entry->input_class,
                                            r.object);
                        uint64_t sum, n;
                        sum_logic(req, &sum, &n);
                        proto::DynamicMessage ack(ack_desc);
                        ack.set_uint64(ack_desc->field_by_name("checksum"), sum);
                        ack.set_uint64(ack_desc->field_by_name("bytes_seen"), n);
                        proto::WireCodec::serialize(ack, out);
                        return Status::ok();
                      })
                  .is_ok());
  ASSERT_TRUE(host.register_unary(
                      "st.Stress/AlwaysFail",
                      [](const ServerContext&, const adt::LayoutView&,
                         proto::DynamicMessage&) {
                        return Status(Code::kInvalidArgument, "nope");
                      })
                  .is_ok());

  std::atomic<bool> stop{false};
  std::thread host_thread([&] {
    while (!stop.load()) {
      auto n = host.event_loop_once();
      if (!n.is_ok()) return;
      if (*n == 0) host.wait(1);
    }
  });
  DpuProxy proxy(&dpu_conn, &*manifest);
  auto port = proxy.start();
  ASSERT_TRUE(port.is_ok());

  constexpr int kClients = 3;
  constexpr int kCallsEach = 60;
  const char* kMethods[] = {"st.Stress/EchoSum", "st.Stress/SlowSum",
                            "st.Stress/FastSum"};
  std::atomic<uint64_t> client_bytes_sent{0};
  std::atomic<int> ok_calls{0}, failed_calls{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937_64 rng(kDefaultSeed + static_cast<uint64_t>(c));
      auto chan = xrpc::Channel::connect(*port);
      ASSERT_TRUE(chan.is_ok());
      const auto* blob_desc = pool.find_message("st.Blob");
      for (int i = 0; i < kCallsEach; ++i) {
        // Payload sizes: empty .. 40 KB (multi-block).
        size_t n = rng() % 5 == 0 ? 0 : (1ull << (rng() % 16)) + rng() % 100;
        n = std::min<size_t>(n, 40000);
        std::string data = random_bytes(rng, n);

        proto::DynamicMessage blob(blob_desc);
        blob.set_string(blob_desc->field_by_name("data"), data);
        uint64_t expect = fnv1a(as_bytes_view(data));
        size_t ints = rng() % 20;
        SkewedVarintDistribution dist;
        for (size_t j = 0; j < ints; ++j) {
          uint32_t v = dist(rng);
          blob.add_uint64(blob_desc->field_by_name("ints"), v);
          expect ^= v;
        }
        Bytes wire = proto::WireCodec::serialize(blob);

        if (rng() % 10 == 0) {
          auto resp = (*chan)->call("st.Stress/AlwaysFail", ByteSpan(wire), 20000);
          EXPECT_EQ(resp.status().code(), Code::kInvalidArgument);
          ++failed_calls;
          continue;
        }
        const char* method = kMethods[rng() % 3];
        auto resp = (*chan)->call(method, ByteSpan(wire), 20000);
        ASSERT_TRUE(resp.is_ok()) << method << ": " << resp.status().to_string();
        proto::DynamicMessage ack(pool.find_message("st.Ack"));
        ASSERT_TRUE(proto::WireCodec::parse(ByteSpan(*resp), ack).is_ok());
        EXPECT_EQ(ack.get_uint64(ack.descriptor()->field_by_name("checksum")), expect)
            << method << " payload " << n;
        EXPECT_EQ(ack.get_uint64(ack.descriptor()->field_by_name("bytes_seen")), n);
        client_bytes_sent.fetch_add(n);
        ++ok_calls;
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(ok_calls.load() + failed_calls.load(), kClients * kCallsEach);
  EXPECT_GT(ok_calls.load(), 0);
  EXPECT_GT(failed_calls.load(), 0);
  EXPECT_EQ(host_bytes_seen.load(), client_bytes_sent.load());
  EXPECT_EQ(proxy.stats().deserialize_failures.load(), 0u);
  EXPECT_EQ(dpu_conn.tx_counters().rnr_events.load(), 0u);
  EXPECT_EQ(host_conn.tx_counters().rnr_events.load(), 0u);

  // Reclamation is asynchronous: the final responses' send-completion and
  // credit-return events still have to drain through both pollers after the
  // last client call returns. Wait (bounded) for quiescence while both
  // sides are still polling, then shut down and assert.
  auto quiescent = [&] {
    return dpu_conn.allocator().used() == 0 && host_conn.allocator().used() == 0 &&
           dpu_conn.credits_available() == cfg.credits &&
           host_conn.credits_available() == cfg.credits;
  };
  for (int spin = 0; spin < 5000 && !quiescent(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  proxy.stop();
  stop.store(true);
  host_conn.interrupt();
  host_thread.join();

  // Quiescent reclamation despite small buffers and mixed completion
  // orders: nothing leaked.
  EXPECT_EQ(dpu_conn.allocator().used(), 0u);
  EXPECT_EQ(host_conn.allocator().used(), 0u);
  EXPECT_EQ(dpu_conn.credits_available(), cfg.credits);
  EXPECT_EQ(host_conn.credits_available(), cfg.credits);
}

}  // namespace
}  // namespace dpurpc::grpccompat
