// Tests for the serialize-plan compiler and the planned response path.
//
// The load-bearing property mirrors parse_plan_test: *bit-for-bit
// equivalence*. With use_serialize_plan toggled, the serializer must emit
// identical bytes (and identical error statuses) for every object — the
// interpretive walk stays as the ablation baseline, so any divergence
// would poison the comparison. The reference WireCodec acts as a third,
// independent oracle: everything either path emits must re-decode to the
// message we started from.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "adt/adt.hpp"
#include "adt/arena_deserializer.hpp"
#include "adt/object_codec.hpp"
#include "adt/serialize_plan.hpp"
#include "common/rng.hpp"
#include "metrics/metrics.hpp"
#include "proto/dynamic_message.hpp"
#include "proto/schema_parser.hpp"

namespace dpurpc::adt {
namespace {

using arena::OwningArena;
using arena::StdLibFlavor;
using proto::DynamicMessage;
using proto::FieldDescriptor;
using proto::FieldType;
using proto::MessageDescriptor;
using proto::WireCodec;

// The bench_messages.proto shapes plus a kitchen-sink message that covers
// every field type, singular and repeated.
constexpr std::string_view kSchema = R"(
syntax = "proto3";
package sp;

message Small {
  int32 id = 1;
  bool flag = 2;
  float score = 3;
  uint64 stamp = 4;
}
message IntArray { repeated uint32 values = 1; }
message CharArray { string data = 1; }
message Nested {
  Small head = 1;
  repeated Small items = 2;
  string label = 3;
  repeated string tags = 4;
  repeated sint64 deltas = 5;
  double weight = 6;
}
message Recur { Recur next = 1; int32 depth = 2; }

enum Mode { MODE_OFF = 0; MODE_ON = 1; MODE_AUTO = 2; }
message AllTypes {
  double   f_double   = 1;
  float    f_float    = 2;
  int32    f_int32    = 3;
  int64    f_int64    = 4;
  uint32   f_uint32   = 5;
  uint64   f_uint64   = 6;
  sint32   f_sint32   = 7;
  sint64   f_sint64   = 8;
  fixed32  f_fixed32  = 9;
  fixed64  f_fixed64  = 10;
  sfixed32 f_sfixed32 = 11;
  sfixed64 f_sfixed64 = 12;
  bool     f_bool     = 13;
  string   f_string   = 14;
  bytes    f_bytes    = 15;
  Mode     f_enum     = 16;
  Small    f_msg      = 17;
  repeated double   r_double   = 21;
  repeated int32    r_int32    = 23;
  repeated uint64   r_uint64   = 26;
  repeated sint32   r_sint32   = 27;
  repeated fixed32  r_fixed32  = 29;
  repeated sfixed64 r_sfixed64 = 32;
  repeated bool     r_bool     = 33;
  repeated string   r_string   = 34;
  repeated Mode     r_enum     = 36;
  repeated Small    r_msg      = 37;
}
)";

/// Fill `m` with random content, driven purely by descriptors, so the
/// same helper covers randomized schemas too.
void fill_random(DynamicMessage& m, const MessageDescriptor* desc,
                 std::mt19937_64& rng, int depth = 0) {
  for (const auto& fp : desc->fields()) {
    const FieldDescriptor* f = fp.get();
    const size_t count = f->is_repeated() ? rng() % 5 : (rng() % 2);
    for (size_t i = 0; i < count; ++i) {
      switch (f->type()) {
        case FieldType::kDouble:
          if (f->is_repeated()) m.add_double(f, static_cast<double>(rng()) / 7);
          else m.set_double(f, static_cast<double>(rng()) / 7);
          break;
        case FieldType::kFloat:
          if (f->is_repeated()) m.add_float(f, static_cast<float>(rng() % 4096));
          else m.set_float(f, static_cast<float>(rng() % 4096));
          break;
        case FieldType::kInt32:
        case FieldType::kInt64:
        case FieldType::kSint32:
        case FieldType::kSint64:
        case FieldType::kSfixed32:
        case FieldType::kSfixed64: {
          int64_t v = static_cast<int64_t>(rng());
          if (f->type() == FieldType::kInt32 || f->type() == FieldType::kSint32 ||
              f->type() == FieldType::kSfixed32) {
            v = static_cast<int32_t>(v);
          }
          if (f->is_repeated()) m.add_int64(f, v);
          else m.set_int64(f, v);
          break;
        }
        case FieldType::kUint32:
        case FieldType::kFixed32: {
          uint64_t v = static_cast<uint32_t>(rng());
          if (f->is_repeated()) m.add_uint64(f, v);
          else m.set_uint64(f, v);
          break;
        }
        case FieldType::kUint64:
        case FieldType::kFixed64:
          if (f->is_repeated()) m.add_uint64(f, rng());
          else m.set_uint64(f, rng());
          break;
        case FieldType::kBool:
          if (f->is_repeated()) m.add_uint64(f, rng() & 1);
          else m.set_uint64(f, rng() & 1);
          break;
        case FieldType::kEnum:
          if (f->is_repeated()) m.add_uint64(f, rng() % 3);
          else m.set_uint64(f, rng() % 3);
          break;
        case FieldType::kString:
          if (f->is_repeated()) m.add_string(f, random_ascii(rng, rng() % 80));
          else m.set_string(f, random_ascii(rng, rng() % 200));
          break;
        case FieldType::kBytes:
          if (f->is_repeated()) m.add_string(f, random_bytes(rng, rng() % 60));
          else m.set_string(f, random_bytes(rng, rng() % 60));
          break;
        case FieldType::kMessage:
          if (depth < 3) {
            DynamicMessage* sub =
                f->is_repeated() ? m.add_message(f) : m.mutable_message(f);
            fill_random(*sub, f->message_type(), rng, depth + 1);
          }
          break;
      }
    }
  }
}

class SerializePlanFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    proto::SchemaParser parser(pool_);
    auto st = parser.parse_and_link(kSchema);
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    DescriptorAdtBuilder builder(StdLibFlavor::kLibstdcpp);
    for (const char* name : {"sp.Small", "sp.IntArray", "sp.CharArray",
                             "sp.Nested", "sp.Recur", "sp.AllTypes"}) {
      auto idx = builder.add_message(pool_.find_message(name));
      ASSERT_TRUE(idx.is_ok()) << idx.status().to_string();
    }
    adt_ = std::move(builder).take();
    adt_.set_fingerprint(AbiFingerprint::current(StdLibFlavor::kLibstdcpp));
    ASSERT_TRUE(adt_.validate().is_ok());
  }

  uint32_t cls(std::string_view name) const {
    uint32_t i = adt_.find_class(name);
    EXPECT_NE(i, UINT32_MAX) << name;
    return i;
  }

  static CodecOptions interp_options() {
    CodecOptions o;
    o.use_serialize_plan = false;
    return o;
  }

  /// Deserialize `wire`, then serialize the object through both paths and
  /// demand byte-identical output — and, since `wire` came from the
  /// reference codec, identity with the original bytes too.
  void expect_roundtrip_identical(uint32_t class_index, const Bytes& wire,
                                  const char* what) {
    OwningArena arena(1 << 18);
    ArenaDeserializer deser(&adt_);
    auto obj = deser.deserialize(class_index, ByteSpan(wire), arena, {});
    ASSERT_TRUE(obj.is_ok()) << what << ": " << obj.status().to_string();
    ObjectRef ref(class_index, *obj);

    ObjectSerializer plan_ser(&adt_);
    ObjectSerializer interp_ser(&adt_, interp_options());
    Bytes from_plan, from_interp;
    Status ps = plan_ser.serialize(ref, from_plan);
    Status is = interp_ser.serialize(ref, from_interp);
    ASSERT_TRUE(ps.is_ok()) << what << ": " << ps.to_string();
    ASSERT_TRUE(is.is_ok()) << what << ": " << is.to_string();
    EXPECT_EQ(from_plan, from_interp) << what << ": paths diverge";
    EXPECT_EQ(from_plan, wire) << what << ": round trip not identical";

    auto plan_size = plan_ser.byte_size(ref);
    auto interp_size = interp_ser.byte_size(ref);
    ASSERT_TRUE(plan_size.is_ok() && interp_size.is_ok()) << what;
    EXPECT_EQ(*plan_size, wire.size()) << what;
    EXPECT_EQ(*interp_size, wire.size()) << what;
  }

  proto::DescriptorPool pool_;
  Adt adt_;
};

// ---------------------------------------------------------- plan building

TEST_F(SerializePlanFixture, PlansCompiledForEveryClass) {
  auto plans = adt_.plans();
  ASSERT_NE(plans, nullptr);
  // Unlike parse plans (dense-by-tag, capped), serialize plans are one
  // step per field: every class is eligible.
  EXPECT_EQ(plans->serialize().plan_count(), adt_.class_count());
  for (uint32_t ci = 0; ci < adt_.class_count(); ++ci) {
    const SerializePlan* p = plans->serialize().for_class(ci);
    ASSERT_NE(p, nullptr) << adt_.class_at(ci).name;
    EXPECT_EQ(p->steps().size(), adt_.class_at(ci).fields.size());
  }
}

TEST_F(SerializePlanFixture, StepsCarryPrecomputedTags) {
  auto plans = adt_.plans();
  const SerializePlan* small = plans->serialize().for_class(cls("sp.Small"));
  ASSERT_NE(small, nullptr);
  ASSERT_EQ(small->steps().size(), 4u);
  // int32 id = 1 → varint tag 0x08, one byte, precomputed.
  EXPECT_EQ(small->steps()[0].op, SerOp::kVarintI32);
  EXPECT_EQ(small->steps()[0].tag_len, 1);
  EXPECT_EQ(small->steps()[0].tag_bytes[0], 0x08);
  // float score = 3 → fixed32 tag (3<<3)|5.
  EXPECT_EQ(small->steps()[2].op, SerOp::kFixed32);
  EXPECT_EQ(small->steps()[2].tag_bytes[0], (3u << 3) | 5u);

  const SerializePlan* ints = plans->serialize().for_class(cls("sp.IntArray"));
  ASSERT_NE(ints, nullptr);
  // repeated uint32 → packed: one LEN record, tag (1<<3)|2.
  EXPECT_EQ(ints->steps()[0].op, SerOp::kPackedU32);
  EXPECT_EQ(ints->steps()[0].tag_bytes[0], (1u << 3) | 2u);
}

TEST_F(SerializePlanFixture, PlanSetBundlesBothDirectionsInOneCache) {
  auto a = adt_.plans();
  auto b = adt_.plans();
  EXPECT_EQ(a.get(), b.get());  // one compile, one snapshot, both codecs
  EXPECT_EQ(a->parse().plan_count() > 0, true);
  EXPECT_EQ(a->serialize().plan_count(), adt_.class_count());

  // Mutation invalidates the single cache slot for both directions.
  ClassEntry extra;
  extra.name = "sp.Extra";
  extra.size = 16;
  extra.align = 8;
  extra.default_bytes.assign(16, 0);
  adt_.add_class(std::move(extra));
  auto c = adt_.plans();
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(c->serialize().plan_count(), adt_.class_count());
}

// ----------------------------------------- bit-for-bit path equivalence

TEST_F(SerializePlanFixture, DifferentialBenchShapes) {
  std::mt19937_64 rng(kDefaultSeed);
  {
    const auto* desc = pool_.find_message("sp.Small");
    DynamicMessage m(desc);
    m.set_int64(desc->field_by_name("id"), -42);  // negative → 10-byte varint
    m.set_uint64(desc->field_by_name("flag"), 1);
    m.set_float(desc->field_by_name("score"), 3.25f);
    m.set_uint64(desc->field_by_name("stamp"), 0xdeadbeefull);
    expect_roundtrip_identical(cls("sp.Small"), WireCodec::serialize(m), "Small");
  }
  {
    const auto* desc = pool_.find_message("sp.IntArray");
    SkewedVarintDistribution dist;
    DynamicMessage m(desc);
    for (int i = 0; i < 512; ++i) m.add_uint64(desc->field_by_name("values"), dist(rng));
    expect_roundtrip_identical(cls("sp.IntArray"), WireCodec::serialize(m),
                               "IntArray x512");
  }
  {
    const auto* desc = pool_.find_message("sp.CharArray");
    DynamicMessage m(desc);
    m.set_string(desc->field_by_name("data"), random_ascii(rng, 8000));
    expect_roundtrip_identical(cls("sp.CharArray"), WireCodec::serialize(m),
                               "CharArray x8000");
  }
  {
    const auto* nested = pool_.find_message("sp.Nested");
    const auto* small = pool_.find_message("sp.Small");
    DynamicMessage m(nested);
    m.mutable_message(nested->field_by_name("head"))
        ->set_int64(small->field_by_name("id"), 77);
    for (int i = 0; i < 5; ++i) {
      auto* item = m.add_message(nested->field_by_name("items"));
      item->set_int64(small->field_by_name("id"), i);
      m.add_string(nested->field_by_name("tags"), "tag-" + std::to_string(i));
      m.add_int64(nested->field_by_name("deltas"), (i - 2) * 1'000'000'007ll);
    }
    m.set_string(nested->field_by_name("label"), "plan-vs-interp");
    m.set_double(nested->field_by_name("weight"), 2.75);
    expect_roundtrip_identical(cls("sp.Nested"), WireCodec::serialize(m), "Nested");
  }
}

TEST_F(SerializePlanFixture, DifferentialRandomizedAllTypes) {
  const auto* desc = pool_.find_message("sp.AllTypes");
  std::mt19937_64 rng(kDefaultSeed ^ 0xa11f);
  for (int round = 0; round < 100; ++round) {
    DynamicMessage m(desc);
    fill_random(m, desc, rng);
    expect_roundtrip_identical(cls("sp.AllTypes"), WireCodec::serialize(m),
                               ("AllTypes round " + std::to_string(round)).c_str());
  }
}

TEST_F(SerializePlanFixture, DifferentialRandomizedSchemas) {
  // Fresh schemas synthesized at test time: field-number gaps, type mixes,
  // and nesting the fixture schema does not cover.
  std::mt19937_64 rng(kDefaultSeed ^ 0x5c4e);
  static constexpr const char* kTypes[] = {
      "double", "float",   "int32",   "int64",    "uint32",  "uint64",
      "sint32", "sint64",  "fixed32", "fixed64",  "sfixed32", "sfixed64",
      "bool",   "string",  "bytes"};
  for (int round = 0; round < 20; ++round) {
    std::string schema = "syntax = \"proto3\";\npackage rs;\n";
    schema += "message Inner { uint64 x = 1; string s = 2; }\n";
    schema += "message Outer {\n";
    uint32_t number = 0;
    const size_t nfields = 2 + rng() % 10;
    for (size_t i = 0; i < nfields; ++i) {
      number += 1 + rng() % 30;  // ascending with random gaps
      const bool repeated = (rng() % 3) == 0;
      const char* type = (rng() % 5 == 0)
                             ? "Inner"
                             : kTypes[rng() % (sizeof(kTypes) / sizeof(kTypes[0]))];
      schema += std::string("  ") + (repeated ? "repeated " : "") + type +
                " f" + std::to_string(number) + " = " + std::to_string(number) +
                ";\n";
    }
    schema += "}\n";

    proto::DescriptorPool pool;
    proto::SchemaParser parser(pool);
    ASSERT_TRUE(parser.parse_and_link(schema).is_ok()) << schema;
    DescriptorAdtBuilder builder(StdLibFlavor::kLibstdcpp);
    auto idx = builder.add_message(pool.find_message("rs.Outer"));
    ASSERT_TRUE(idx.is_ok());
    Adt adt = std::move(builder).take();
    adt.set_fingerprint(AbiFingerprint::current(StdLibFlavor::kLibstdcpp));

    const auto* desc = pool.find_message("rs.Outer");
    DynamicMessage m(desc);
    fill_random(m, desc, rng);
    Bytes wire = WireCodec::serialize(m);

    OwningArena arena(1 << 18);
    ArenaDeserializer deser(&adt);
    auto obj = deser.deserialize(*idx, ByteSpan(wire), arena, {});
    ASSERT_TRUE(obj.is_ok()) << schema;
    ObjectRef ref(*idx, *obj);
    Bytes from_plan, from_interp;
    ASSERT_TRUE(ObjectSerializer(&adt).serialize(ref, from_plan).is_ok());
    ASSERT_TRUE(
        ObjectSerializer(&adt, interp_options()).serialize(ref, from_interp).is_ok());
    EXPECT_EQ(from_plan, from_interp) << schema;
    EXPECT_EQ(from_plan, wire) << schema;
  }
}

TEST_F(SerializePlanFixture, PackedVarintEdgeValues) {
  // Varint length-class boundaries, including the 8-byte encoder chunk
  // boundary (2^56) and the >8-byte scalar fallback.
  const auto* desc = pool_.find_message("sp.AllTypes");
  DynamicMessage m(desc);
  const auto* ru64 = desc->field_by_name("r_uint64");
  const uint64_t u64_edges[] = {0,           1,          127,
                                128,         16383,      16384,
                                (1ull << 28) - 1,        1ull << 28,
                                (1ull << 56) - 1,        1ull << 56,
                                UINT64_MAX};
  for (uint64_t v : u64_edges) m.add_uint64(ru64, v);
  const auto* ri32 = desc->field_by_name("r_int32");
  const int64_t i32_edges[] = {0, -1, 1, 2147483647ll, -2147483648ll};
  // Negative int32 → 10-byte sign-extended varint.
  for (int64_t v : i32_edges) m.add_int64(ri32, v);
  const auto* rs32 = desc->field_by_name("r_sint32");
  for (int64_t v : i32_edges) m.add_int64(rs32, v);
  const auto* rb = desc->field_by_name("r_bool");
  for (int i = 0; i < 9; ++i) m.add_uint64(rb, i & 1);
  expect_roundtrip_identical(cls("sp.AllTypes"), WireCodec::serialize(m),
                             "packed edges");
}

TEST_F(SerializePlanFixture, ExplicitZerosStayUnemittedByBothPaths) {
  // A has-bit can be set while the stored value is the proto3 default
  // (e.g. a peer explicitly encoded a zero). Neither path may emit it.
  Bytes wire;
  wire.push_back(std::byte{0x08});  // id = 0 (explicit varint zero)
  wire.push_back(std::byte{0x00});
  wire.push_back(std::byte{0x1d});  // score = 0.0f (explicit fixed32 zero)
  for (int i = 0; i < 4; ++i) wire.push_back(std::byte{0x00});

  OwningArena arena(1 << 12);
  ArenaDeserializer deser(&adt_);
  auto obj = deser.deserialize(cls("sp.Small"), ByteSpan(wire), arena, {});
  ASSERT_TRUE(obj.is_ok());
  ObjectRef ref(cls("sp.Small"), *obj);
  Bytes from_plan, from_interp;
  ASSERT_TRUE(ObjectSerializer(&adt_).serialize(ref, from_plan).is_ok());
  ASSERT_TRUE(ObjectSerializer(&adt_, interp_options())
                  .serialize(ref, from_interp)
                  .is_ok());
  EXPECT_TRUE(from_plan.empty());
  EXPECT_TRUE(from_interp.empty());
}

// --------------------------------------------------- errors and limits

TEST_F(SerializePlanFixture, UnknownClassRejected) {
  ObjectSerializer ser(&adt_);
  Bytes out;
  char dummy[64] = {};
  EXPECT_EQ(ser.serialize(ObjectRef(999, dummy), out).code(), Code::kNotFound);
  EXPECT_FALSE(ser.byte_size(ObjectRef(999, dummy)).is_ok());
}

TEST_F(SerializePlanFixture, RecursionDepthEnforcedIdentically) {
  // Build a chain deeper than the configured limit with LayoutBuilder,
  // then serialize under a small max_recursion_depth: both paths must
  // fail with the same status, and the output must be untouched.
  OwningArena arena(1 << 16);
  auto root = LayoutBuilder::create(&adt_, cls("sp.Recur"), &arena);
  ASSERT_TRUE(root.is_ok());
  LayoutBuilder cur = *root;
  for (int d = 0; d < 12; ++d) {
    ASSERT_TRUE(cur.set_int64(2, d).is_ok());
    auto next = cur.mutable_message(1);
    ASSERT_TRUE(next.is_ok());
    cur = *next;
  }
  CodecOptions shallow;
  shallow.max_recursion_depth = 4;
  CodecOptions shallow_interp = shallow;
  shallow_interp.use_serialize_plan = false;

  Bytes plan_out, interp_out;
  Status ps = ObjectSerializer(&adt_, shallow).serialize(ObjectRef(*root), plan_out);
  Status is =
      ObjectSerializer(&adt_, shallow_interp).serialize(ObjectRef(*root), interp_out);
  EXPECT_FALSE(ps.is_ok());
  EXPECT_EQ(ps.to_string(), is.to_string());
  EXPECT_TRUE(plan_out.empty());  // failed serialize must not leave bytes

  // With the default limit the same chain serializes fine on both paths.
  Bytes ok_plan, ok_interp;
  ASSERT_TRUE(ObjectSerializer(&adt_).serialize(ObjectRef(*root), ok_plan).is_ok());
  ASSERT_TRUE(ObjectSerializer(&adt_, interp_options())
                  .serialize(ObjectRef(*root), ok_interp)
                  .is_ok());
  EXPECT_EQ(ok_plan, ok_interp);
}

// ------------------------------------------------- ObjectRef plumbing

TEST_F(SerializePlanFixture, ObjectRefFromBuilderViewAndRawAgree) {
  OwningArena arena(1 << 14);
  auto b = LayoutBuilder::create(&adt_, cls("sp.Small"), &arena);
  ASSERT_TRUE(b.is_ok());
  ASSERT_TRUE(b->set_int64(1, 1234).is_ok());
  ASSERT_TRUE(b->set_bool(2, true).is_ok());

  ObjectSerializer ser(&adt_);
  Bytes from_builder, from_view, from_raw;
  ASSERT_TRUE(ser.serialize(ObjectRef(*b), from_builder).is_ok());
  ASSERT_TRUE(ser.serialize(ObjectRef(b->view()), from_view).is_ok());
  ASSERT_TRUE(
      ser.serialize(ObjectRef(cls("sp.Small"), b->object()), from_raw).is_ok());
  EXPECT_EQ(from_builder, from_view);
  EXPECT_EQ(from_builder, from_raw);
  EXPECT_FALSE(from_builder.empty());
}

// ----------------------------------------------------------- metrics

TEST_F(SerializePlanFixture, DispatchCountersSplitPlanFromInterp) {
  auto& plan_c = metrics::default_counter("dpurpc_ser_plan_serializes_total", "");
  auto& interp_c = metrics::default_counter("dpurpc_ser_interp_serializes_total", "");
  const uint64_t p0 = plan_c.value(), i0 = interp_c.value();

  OwningArena arena(1 << 12);
  auto b = LayoutBuilder::create(&adt_, cls("sp.Small"), &arena);
  ASSERT_TRUE(b.is_ok());
  Bytes out;
  ASSERT_TRUE(ObjectSerializer(&adt_).serialize(ObjectRef(*b), out).is_ok());
  EXPECT_EQ(plan_c.value(), p0 + 1);
  ASSERT_TRUE(
      ObjectSerializer(&adt_, interp_options()).serialize(ObjectRef(*b), out).is_ok());
  EXPECT_EQ(interp_c.value(), i0 + 1);
}

}  // namespace
}  // namespace dpurpc::adt
