// Tests for the shared server poller (§III.C): one poller thread serving
// several client connections through one completion channel — the paper's
// many-to-one-to-one model.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.hpp"
#include "rdmarpc/client.hpp"
#include "rdmarpc/poller.hpp"

namespace dpurpc::rdmarpc {
namespace {

constexpr uint16_t kEcho = 1;

TEST(ServerPoller, OnePollerManyConnections) {
  constexpr int kConns = 4;
  constexpr int kPerConn = 40;

  ServerPoller poller;
  ConnectionConfig server_cfg;
  server_cfg.shared_channel = poller.shared_channel();

  simverbs::ProtectionDomain server_pd("host");
  std::vector<std::unique_ptr<simverbs::ProtectionDomain>> client_pds;
  std::vector<std::unique_ptr<Connection>> server_conns, client_conns;
  std::vector<std::unique_ptr<RpcServer>> servers;
  std::vector<std::unique_ptr<RpcClient>> clients;

  for (int i = 0; i < kConns; ++i) {
    client_pds.push_back(std::make_unique<simverbs::ProtectionDomain>(
        "dpu" + std::to_string(i)));
    client_conns.push_back(std::make_unique<Connection>(Role::kClient,
                                                        client_pds.back().get(),
                                                        ConnectionConfig{}));
    server_conns.push_back(
        std::make_unique<Connection>(Role::kServer, &server_pd, server_cfg));
    ASSERT_TRUE(Connection::connect(*client_conns.back(), *server_conns.back()).is_ok());
    servers.push_back(std::make_unique<RpcServer>(server_conns.back().get()));
    servers.back()->register_handler(kEcho, [i](const RequestView& req, Bytes& out) {
      out = to_bytes("conn" + std::to_string(i) + ":" +
                     std::string(as_string_view(req.payload)));
      return Status::ok();
    });
    poller.add(servers.back().get());
    clients.push_back(std::make_unique<RpcClient>(client_conns.back().get()));
  }
  EXPECT_EQ(poller.connection_count(), static_cast<size_t>(kConns));

  // One poller thread serves everything (the paper's server-side model).
  std::atomic<bool> stop{false};
  std::thread poller_thread([&] {
    while (!stop.load()) {
      auto n = poller.event_loop_once();
      if (!n.is_ok()) return;
      if (*n == 0) poller.wait(1);
    }
  });

  std::atomic<int> done{0};
  for (int round = 0; round < kPerConn; ++round) {
    for (int i = 0; i < kConns; ++i) {
      std::string payload = "r" + std::to_string(round);
      std::string expect = "conn" + std::to_string(i) + ":" + payload;
      ASSERT_TRUE(clients[i]
                      ->call(kEcho, as_bytes_view(payload),
                             [expect, &done](const Status& st, const InMessage& resp) {
                               ASSERT_TRUE(st.is_ok());
                               EXPECT_EQ(as_string_view(resp.payload), expect);
                               ++done;
                             })
                      .is_ok());
    }
    // Pump all clients until this round completes.
    int target = (round + 1) * kConns;
    for (int iter = 0; iter < 20000 && done.load() < target; ++iter) {
      for (auto& c : clients) ASSERT_TRUE(c->event_loop_once().is_ok());
      if (done.load() < target) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
    ASSERT_EQ(done.load(), target) << "round " << round;
  }

  stop.store(true);
  poller.interrupt();
  poller_thread.join();
  EXPECT_EQ(done.load(), kConns * kPerConn);
  uint64_t total_served = 0;
  for (auto& s : servers) total_served += s->requests_served();
  EXPECT_EQ(total_served, static_cast<uint64_t>(kConns) * kPerConn);
}

TEST(ServerPoller, SharedChannelWakesOnAnyConnection) {
  ServerPoller poller;
  ConnectionConfig server_cfg;
  server_cfg.shared_channel = poller.shared_channel();

  simverbs::ProtectionDomain server_pd("host"), c1_pd("c1"), c2_pd("c2");
  Connection c1(Role::kClient, &c1_pd, {}), c2(Role::kClient, &c2_pd, {});
  Connection s1(Role::kServer, &server_pd, server_cfg);
  Connection s2(Role::kServer, &server_pd, server_cfg);
  ASSERT_TRUE(Connection::connect(c1, s1).is_ok());
  ASSERT_TRUE(Connection::connect(c2, s2).is_ok());
  RpcServer srv1(&s1), srv2(&s2);
  poller.add(&srv1);
  poller.add(&srv2);

  EXPECT_FALSE(poller.wait(10));  // idle: times out

  // Traffic on the SECOND connection must wake the shared channel.
  RpcClient client2(&c2);
  ASSERT_TRUE(client2.call(kEcho, as_bytes_view("x"), nullptr).is_ok());
  ASSERT_TRUE(client2.event_loop_once().is_ok());  // flush
  EXPECT_TRUE(poller.wait(1000));
}

}  // namespace
}  // namespace dpurpc::rdmarpc
