// End-to-end tests for the response-serialization offload (§III.A "the
// response's serialization ... can be implemented similarly in our
// design"): the host builds the response *object* in place with a
// LayoutBuilder; the DPU serializes it with the ADT-driven
// ObjectSerializer before answering the xRPC client. With both directions
// offloaded, the host performs no serialization work at all.
#include <gtest/gtest.h>

#include <thread>

#include "common/rng.hpp"
#include "grpccompat/dpu_proxy.hpp"
#include "grpccompat/host_service.hpp"
#include "grpccompat/manifest.hpp"
#include "proto/schema_parser.hpp"
#include "xrpc/channel.hpp"

namespace dpurpc::grpccompat {
namespace {

constexpr std::string_view kSchema = R"(
syntax = "proto3";
package ro;

message Query { string text = 1; uint32 top_k = 2; }
message Hit { string doc = 1; double score = 2; }
message Results { repeated Hit hits = 1; uint64 total = 2; string shard = 3; }

service Search {
  rpc Find (Query) returns (Results);
}
)";

class ResponseOffloadFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    proto::SchemaParser parser(pool_);
    ASSERT_TRUE(parser.parse_and_link(kSchema).is_ok());
    auto built = OffloadManifest::build(pool_, arena::StdLibFlavor::kLibstdcpp);
    ASSERT_TRUE(built.is_ok()) << built.status().to_string();
    // Ship it (serialize/deserialize round trip, incl. output classes).
    Bytes shipped = built->serialize();
    auto received = OffloadManifest::deserialize(ByteSpan(shipped));
    ASSERT_TRUE(received.is_ok()) << received.status().to_string();
    host_manifest_ = std::make_unique<OffloadManifest>(std::move(*built));
    dpu_manifest_ = std::make_unique<OffloadManifest>(std::move(*received));

    dpu_pd_ = std::make_unique<simverbs::ProtectionDomain>("dpu");
    host_pd_ = std::make_unique<simverbs::ProtectionDomain>("host");
    dpu_conn_ = std::make_unique<rdmarpc::Connection>(rdmarpc::Role::kClient,
                                                      dpu_pd_.get(),
                                                      rdmarpc::ConnectionConfig{});
    host_conn_ = std::make_unique<rdmarpc::Connection>(rdmarpc::Role::kServer,
                                                       host_pd_.get(),
                                                       rdmarpc::ConnectionConfig{});
    ASSERT_TRUE(rdmarpc::Connection::connect(*dpu_conn_, *host_conn_).is_ok());
    host_ = std::make_unique<HostEngine>(host_conn_.get(), host_manifest_.get(), &pool_);
  }

  void start() {
    host_thread_ = std::thread([this] {
      while (!stop_.load()) {
        auto n = host_->event_loop_once();
        if (!n.is_ok()) return;
        if (*n == 0) host_->wait(1);
      }
    });
    proxy_ = std::make_unique<DpuProxy>(dpu_conn_.get(), dpu_manifest_.get());
    auto port = proxy_->start();
    ASSERT_TRUE(port.is_ok());
    port_ = *port;
  }

  void TearDown() override {
    if (proxy_) proxy_->stop();
    stop_.store(true);
    host_conn_->interrupt();
    if (host_thread_.joinable()) host_thread_.join();
  }

  proto::DescriptorPool pool_;
  std::unique_ptr<OffloadManifest> host_manifest_, dpu_manifest_;
  std::unique_ptr<simverbs::ProtectionDomain> dpu_pd_, host_pd_;
  std::unique_ptr<rdmarpc::Connection> dpu_conn_, host_conn_;
  std::unique_ptr<HostEngine> host_;
  std::unique_ptr<DpuProxy> proxy_;
  std::thread host_thread_;
  std::atomic<bool> stop_{false};
  uint16_t port_ = 0;
};

TEST_F(ResponseOffloadFixture, ManifestCarriesOutputClasses) {
  const auto* find = host_manifest_->find_by_name("ro.Search/Find");
  ASSERT_NE(find, nullptr);
  EXPECT_EQ(host_manifest_->adt().class_at(find->output_class).name, "ro.Results");
  const auto* shipped = dpu_manifest_->find_by_name("ro.Search/Find");
  ASSERT_NE(shipped, nullptr);
  EXPECT_EQ(shipped->output_class, find->output_class);
}

TEST_F(ResponseOffloadFixture, FullyOffloadedRoundTrip) {
  // Host handler: reads the in-place request, BUILDS the in-place response
  // — zero host-side (de)serialization in either direction.
  ASSERT_TRUE(host_
                  ->register_unary_inplace(
                      "ro.Search/Find",
                      [](const ServerContext&, const adt::LayoutView& req,
                         adt::LayoutBuilder& resp) {
                        std::string text(req.get_string(1));
                        uint64_t top_k = req.get_uint64(2);
                        for (uint64_t i = 0; i < top_k; ++i) {
                          auto hit = resp.add_message(1);
                          if (!hit.is_ok()) return hit.status();
                          DPURPC_RETURN_IF_ERROR(hit->set_string(
                              1, text + "-doc-" + std::to_string(i)));
                          DPURPC_RETURN_IF_ERROR(
                              hit->set_double(2, 1.0 / static_cast<double>(i + 1)));
                        }
                        DPURPC_RETURN_IF_ERROR(resp.set_uint64(2, top_k * 100));
                        return resp.set_string(3, "shard-7");
                      })
                  .is_ok());
  start();

  auto chan = xrpc::Channel::connect(port_);
  ASSERT_TRUE(chan.is_ok());
  const auto* query_desc = pool_.find_message("ro.Query");
  proto::DynamicMessage q(query_desc);
  q.set_string(query_desc->field_by_name("text"), "fast rpc");
  q.set_uint64(query_desc->field_by_name("top_k"), 3);
  Bytes wire = proto::WireCodec::serialize(q);

  auto resp = (*chan)->call("ro.Search/Find", ByteSpan(wire));
  ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();

  // The client receives ordinary proto3 wire bytes, produced by the DPU's
  // ObjectSerializer — parse them with the reference codec.
  const auto* results_desc = pool_.find_message("ro.Results");
  const auto* hit_desc = pool_.find_message("ro.Hit");
  proto::DynamicMessage r(results_desc);
  ASSERT_TRUE(proto::WireCodec::parse(ByteSpan(*resp), r).is_ok());
  ASSERT_EQ(r.repeated_size(results_desc->field_by_name("hits")), 3u);
  EXPECT_EQ(r.get_repeated_message(results_desc->field_by_name("hits"), 0)
                ->get_string(hit_desc->field_by_name("doc")),
            "fast rpc-doc-0");
  EXPECT_DOUBLE_EQ(r.get_repeated_message(results_desc->field_by_name("hits"), 2)
                       ->get_double(hit_desc->field_by_name("score")),
                   1.0 / 3.0);
  EXPECT_EQ(r.get_uint64(results_desc->field_by_name("total")), 300u);
  EXPECT_EQ(r.get_string(results_desc->field_by_name("shard")), "shard-7");
}

// The acceptance criterion, literally: bytes serialized by the codec
// pool's encode direction are bit-identical to what the reference
// WireCodec produces for the equivalent DynamicMessage — over randomized
// response content, not one lucky shape.
TEST_F(ResponseOffloadFixture, PoolSerializedBytesMatchWireCodecOracle) {
  ASSERT_TRUE(host_
                  ->register_unary_inplace(
                      "ro.Search/Find",
                      [](const ServerContext&, const adt::LayoutView& req,
                         adt::LayoutBuilder& resp) {
                        // Deterministic function of the request, so the
                        // test can rebuild the exact message client-side.
                        std::string text(req.get_string(1));
                        uint64_t top_k = req.get_uint64(2) % 6;
                        for (uint64_t i = 0; i < top_k; ++i) {
                          auto hit = resp.add_message(1);
                          if (!hit.is_ok()) return hit.status();
                          DPURPC_RETURN_IF_ERROR(hit->set_string(
                              1, text + "#" + std::to_string(i)));
                          DPURPC_RETURN_IF_ERROR(hit->set_double(
                              2, static_cast<double>(i) * 0.25));
                        }
                        DPURPC_RETURN_IF_ERROR(resp.set_uint64(2, top_k));
                        return resp.set_string(3, text);
                      })
                  .is_ok());
  start();
  auto chan = xrpc::Channel::connect(port_);
  ASSERT_TRUE(chan.is_ok());
  const auto* query_desc = pool_.find_message("ro.Query");
  const auto* results_desc = pool_.find_message("ro.Results");
  const auto* hit_desc = pool_.find_message("ro.Hit");

  std::mt19937_64 rng(kDefaultSeed);
  constexpr int kCalls = 40;
  for (int i = 0; i < kCalls; ++i) {
    // Strings long and short: SSO and heap forms both cross the
    // copy-out + relocate + pool-serialize path.
    std::string text = random_ascii(rng, 1 + rng() % 150);
    // top_k is uint32 on the wire: stay inside it so client and server
    // compute the same k % 6.
    uint64_t k = rng() % 100000;
    proto::DynamicMessage q(query_desc);
    q.set_string(query_desc->field_by_name("text"), text);
    q.set_uint64(query_desc->field_by_name("top_k"), k);
    Bytes wire = proto::WireCodec::serialize(q);
    auto resp = (*chan)->call("ro.Search/Find", ByteSpan(wire));
    ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();

    // Rebuild the exact response message and demand the exact bytes.
    proto::DynamicMessage want(results_desc);
    for (uint64_t j = 0; j < k % 6; ++j) {
      auto* hit = want.add_message(results_desc->field_by_name("hits"));
      hit->set_string(hit_desc->field_by_name("doc"),
                      text + "#" + std::to_string(j));
      hit->set_double(hit_desc->field_by_name("score"),
                      static_cast<double>(j) * 0.25);
    }
    want.set_uint64(results_desc->field_by_name("total"), k % 6);
    want.set_string(results_desc->field_by_name("shard"), text);
    EXPECT_EQ(*resp, proto::WireCodec::serialize(want)) << "call " << i;
  }

  // The ledger: every reply was an in-place object, and each one was
  // serialized exactly once — on the pool unless the spill path fired.
  const auto& stats = proxy_->stats();
  EXPECT_EQ(stats.offloaded_responses.load() + stats.inline_serializes.load(),
            static_cast<uint64_t>(kCalls));
  // One blocking client, empty rings: nothing should ever have spilled.
  EXPECT_EQ(stats.inline_serializes.load(), 0u);
  uint64_t pool_encodes = 0;
  for (size_t w = 0; w < proxy_->codec_pool().worker_count(); ++w)
    pool_encodes += proxy_->codec_pool().worker_stats(w).encodes;
  EXPECT_EQ(pool_encodes, static_cast<uint64_t>(kCalls));
}

TEST_F(ResponseOffloadFixture, ManyCallsStayConsistent) {
  ASSERT_TRUE(host_
                  ->register_unary_inplace(
                      "ro.Search/Find",
                      [](const ServerContext&, const adt::LayoutView& req,
                         adt::LayoutBuilder& resp) {
                        DPURPC_RETURN_IF_ERROR(
                            resp.set_uint64(2, req.get_uint64(2) * 2));
                        return resp.set_string(3, std::string(req.get_string(1)));
                      })
                  .is_ok());
  start();
  auto chan = xrpc::Channel::connect(port_);
  ASSERT_TRUE(chan.is_ok());
  const auto* query_desc = pool_.find_message("ro.Query");
  const auto* results_desc = pool_.find_message("ro.Results");
  std::mt19937_64 rng(kDefaultSeed);
  for (int i = 0; i < 60; ++i) {
    std::string text = random_ascii(rng, rng() % 120);
    uint64_t k = rng() % 5000;
    proto::DynamicMessage q(query_desc);
    q.set_string(query_desc->field_by_name("text"), text);
    q.set_uint64(query_desc->field_by_name("top_k"), k);
    Bytes wire = proto::WireCodec::serialize(q);
    auto resp = (*chan)->call("ro.Search/Find", ByteSpan(wire));
    ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
    proto::DynamicMessage r(results_desc);
    ASSERT_TRUE(proto::WireCodec::parse(ByteSpan(*resp), r).is_ok());
    EXPECT_EQ(r.get_uint64(results_desc->field_by_name("total")), k * 2);
    EXPECT_EQ(r.get_string(results_desc->field_by_name("shard")), text);
  }
}

TEST_F(ResponseOffloadFixture, HandlerErrorFallsBackToErrorResponse) {
  ASSERT_TRUE(host_
                  ->register_unary_inplace(
                      "ro.Search/Find",
                      [](const ServerContext&, const adt::LayoutView&,
                         adt::LayoutBuilder&) {
                        return Status(Code::kInvalidArgument, "bad query");
                      })
                  .is_ok());
  start();
  auto chan = xrpc::Channel::connect(port_);
  ASSERT_TRUE(chan.is_ok());
  auto resp = (*chan)->call("ro.Search/Find", {});
  EXPECT_EQ(resp.status().code(), Code::kInvalidArgument);
}

}  // namespace
}  // namespace dpurpc::grpccompat
