// End-to-end offload tests: xRPC client → DPU proxy (deserialization
// offload) → RPC over RDMA → host compat layer → business logic → back.
// This is Fig. 1 of the paper as a running system.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <thread>

#include "common/endian.hpp"
#include "common/rng.hpp"
#include "grpccompat/dpu_proxy.hpp"
#include "grpccompat/host_service.hpp"
#include "grpccompat/manifest.hpp"
#include "proto/schema_parser.hpp"
#include "xrpc/channel.hpp"

namespace dpurpc::grpccompat {
namespace {

constexpr std::string_view kSchema = R"(
syntax = "proto3";
package kv;

message GetRequest { string key = 1; uint32 shard = 2; }
message GetResponse { string value = 1; bool found = 2; }
message PutRequest { string key = 1; string value = 2; }
message PutResponse { bool created = 1; }
message StatsRequest { repeated uint32 shard_ids = 1; }
message StatsResponse { uint64 keys = 1; double load = 2; }

service KvStore {
  rpc Get (GetRequest) returns (GetResponse);
  rpc Put (PutRequest) returns (PutResponse);
  rpc Stats (StatsRequest) returns (StatsResponse);
}
)";

// Full deployment harness: host engine thread + DPU proxy + xRPC channel.
class OffloadFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    proto::SchemaParser parser(pool_);
    ASSERT_TRUE(parser.parse_and_link(kSchema).is_ok());

    // Host builds the manifest and "ships" it to the DPU (serialize →
    // deserialize round-trip, like the real one-time transfer).
    auto built = OffloadManifest::build(pool_, arena::StdLibFlavor::kLibstdcpp);
    ASSERT_TRUE(built.is_ok()) << built.status().to_string();
    host_manifest_ = std::make_unique<OffloadManifest>(std::move(*built));
    Bytes shipped = host_manifest_->serialize();
    auto received = OffloadManifest::deserialize(ByteSpan(shipped));
    ASSERT_TRUE(received.is_ok()) << received.status().to_string();
    dpu_manifest_ = std::make_unique<OffloadManifest>(std::move(*received));

    // RDMA link between DPU (client role) and host (server role).
    dpu_pd_ = std::make_unique<simverbs::ProtectionDomain>("dpu");
    host_pd_ = std::make_unique<simverbs::ProtectionDomain>("host");
    dpu_conn_ = std::make_unique<rdmarpc::Connection>(rdmarpc::Role::kClient,
                                                      dpu_pd_.get(),
                                                      rdmarpc::ConnectionConfig{});
    host_conn_ = std::make_unique<rdmarpc::Connection>(rdmarpc::Role::kServer,
                                                       host_pd_.get(),
                                                       rdmarpc::ConnectionConfig{});
    ASSERT_TRUE(rdmarpc::Connection::connect(*dpu_conn_, *host_conn_).is_ok());

    host_ = std::make_unique<HostEngine>(host_conn_.get(), host_manifest_.get(), &pool_);
  }

  void start_host_loop() {
    host_thread_ = std::thread([this] {
      while (!stop_.load(std::memory_order_relaxed)) {
        auto n = host_->event_loop_once();
        if (!n.is_ok()) return;
        if (*n == 0) host_->wait(1);
      }
    });
  }

  void TearDown() override {
    if (proxy_) proxy_->stop();
    stop_.store(true);
    host_conn_->interrupt();
    if (host_thread_.joinable()) host_thread_.join();
  }

  proto::DescriptorPool pool_;
  std::unique_ptr<OffloadManifest> host_manifest_, dpu_manifest_;
  std::unique_ptr<simverbs::ProtectionDomain> dpu_pd_, host_pd_;
  std::unique_ptr<rdmarpc::Connection> dpu_conn_, host_conn_;
  std::unique_ptr<HostEngine> host_;
  std::unique_ptr<DpuProxy> proxy_;
  std::thread host_thread_;
  std::atomic<bool> stop_{false};
};

TEST_F(OffloadFixture, ManifestMapsAllMethods) {
  EXPECT_EQ(host_manifest_->methods().size(), 3u);
  const auto* get = host_manifest_->find_by_name("kv.KvStore/Get");
  ASSERT_NE(get, nullptr);
  EXPECT_EQ(get->input_type, "kv.GetRequest");
  EXPECT_EQ(get->output_type, "kv.GetResponse");
  EXPECT_EQ(host_manifest_->find_by_id(get->method_id), get);
  EXPECT_EQ(host_manifest_->find_by_name("kv.KvStore/Nope"), nullptr);
  // The shipped manifest agrees.
  EXPECT_EQ(dpu_manifest_->methods().size(), 3u);
  EXPECT_NE(dpu_manifest_->adt().find_class("kv.GetRequest"), UINT32_MAX);
}

TEST_F(OffloadFixture, RegisterUnknownMethodFails) {
  EXPECT_EQ(host_->register_unary("kv.KvStore/Nope", nullptr).code(), Code::kNotFound);
  EXPECT_EQ(host_->register_stream("kv.KvStore/Nope", nullptr).code(),
            Code::kNotFound);
  EXPECT_EQ(host_->register_unary_inplace("kv.KvStore/Nope", nullptr).code(),
            Code::kNotFound);
  EXPECT_EQ(host_->register_unary_object("kv.KvStore/Nope", nullptr).code(),
            Code::kNotFound);
}

TEST_F(OffloadFixture, FullOffloadPathEndToEnd) {
  // Business logic on the host: zero deserialization — reads the request
  // through the in-place object view.
  std::map<std::string, std::string> store;
  const auto* get_resp_desc = pool_.find_message("kv.GetResponse");
  const auto* put_resp_desc = pool_.find_message("kv.PutResponse");
  ASSERT_TRUE(host_
                  ->register_unary(
                      "kv.KvStore/Put",
                      [&store](const ServerContext&, const adt::LayoutView& req,
                               proto::DynamicMessage& resp) {
                        std::string key(req.get_string(1));
                        bool created = store.find(key) == store.end();
                        store[key] = std::string(req.get_string(2));
                        resp.set_uint64(resp.descriptor()->field_by_name("created"),
                                        created ? 1 : 0);
                        return Status::ok();
                      })
                  .is_ok());
  ASSERT_TRUE(host_
                  ->register_unary(
                      "kv.KvStore/Get",
                      [&store](const ServerContext& ctx, const adt::LayoutView& req,
                               proto::DynamicMessage& resp) {
                        EXPECT_EQ(ctx.grpc_context, nullptr);  // mocked (§V.D)
                        auto it = store.find(std::string(req.get_string(1)));
                        if (it != store.end()) {
                          resp.set_string(resp.descriptor()->field_by_name("value"),
                                          it->second);
                          resp.set_uint64(resp.descriptor()->field_by_name("found"), 1);
                        }
                        return Status::ok();
                      })
                  .is_ok());
  (void)get_resp_desc;
  (void)put_resp_desc;
  start_host_loop();

  proxy_ = std::make_unique<DpuProxy>(dpu_conn_.get(), dpu_manifest_.get());
  auto port = proxy_->start();
  ASSERT_TRUE(port.is_ok()) << port.status().to_string();

  // The unmodified xRPC client dials the DPU's address (§III.A).
  auto chan = xrpc::Channel::connect(*port);
  ASSERT_TRUE(chan.is_ok());

  // Serialize requests the way any gRPC client would.
  const auto* put_desc = pool_.find_message("kv.PutRequest");
  const auto* get_desc = pool_.find_message("kv.GetRequest");

  auto put = [&](const std::string& k, const std::string& v) {
    proto::DynamicMessage m(put_desc);
    m.set_string(put_desc->field_by_name("key"), k);
    m.set_string(put_desc->field_by_name("value"), v);
    Bytes wire = proto::WireCodec::serialize(m);
    auto resp = (*chan)->call("kv.KvStore/Put", ByteSpan(wire));
    ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
    proto::DynamicMessage r(pool_.find_message("kv.PutResponse"));
    ASSERT_TRUE(proto::WireCodec::parse(ByteSpan(*resp), r).is_ok());
  };
  auto get = [&](const std::string& k) -> std::pair<bool, std::string> {
    proto::DynamicMessage m(get_desc);
    m.set_string(get_desc->field_by_name("key"), k);
    Bytes wire = proto::WireCodec::serialize(m);
    auto resp = (*chan)->call("kv.KvStore/Get", ByteSpan(wire));
    EXPECT_TRUE(resp.is_ok()) << resp.status().to_string();
    proto::DynamicMessage r(pool_.find_message("kv.GetResponse"));
    EXPECT_TRUE(proto::WireCodec::parse(ByteSpan(*resp), r).is_ok());
    return {r.get_uint64(r.descriptor()->field_by_name("found")) != 0,
            r.get_string(r.descriptor()->field_by_name("value"))};
  };

  put("alpha", "first value");
  put("beta", std::string(500, 'b'));  // beyond SSO, spills to the arena
  auto [found_a, val_a] = get("alpha");
  EXPECT_TRUE(found_a);
  EXPECT_EQ(val_a, "first value");
  auto [found_b, val_b] = get("beta");
  EXPECT_TRUE(found_b);
  EXPECT_EQ(val_b, std::string(500, 'b'));
  auto [found_c, val_c] = get("gamma");
  EXPECT_FALSE(found_c);
  EXPECT_TRUE(val_c.empty());

  EXPECT_EQ(proxy_->stats().offloaded_requests.load(), 5u);
  EXPECT_EQ(proxy_->stats().responses_forwarded.load(), 5u);
  EXPECT_EQ(proxy_->stats().deserialize_failures.load(), 0u);
}

TEST_F(OffloadFixture, ObjectResponsePathServedByThePlanSerializer) {
  // register_unary_object: the handler builds the response *object* with
  // a LayoutBuilder and the host serializes it through the compiled plan —
  // the middle rung between the WireCodec baseline and DPU-side response
  // offload. An unmodified client must see byte-compatible responses.
  std::map<std::string, std::string> store;
  ASSERT_TRUE(host_
                  ->register_unary_object(
                      "kv.KvStore/Get",
                      [&store](const ServerContext& ctx, const adt::LayoutView& req,
                               adt::LayoutBuilder& resp) {
                        EXPECT_EQ(ctx.grpc_context, nullptr);
                        auto it = store.find(std::string(req.get_string(1)));
                        if (it == store.end()) return Status::ok();  // empty resp
                        DPURPC_RETURN_IF_ERROR(resp.set_string(1, it->second));
                        return resp.set_bool(2, true);
                      })
                  .is_ok());
  // Unknown method still rejected through this registration flavor.
  EXPECT_EQ(host_->register_unary_object("kv.KvStore/Nope", nullptr).code(),
            Code::kNotFound);
  start_host_loop();
  proxy_ = std::make_unique<DpuProxy>(dpu_conn_.get(), dpu_manifest_.get());
  auto port = proxy_->start();
  ASSERT_TRUE(port.is_ok());
  auto chan = xrpc::Channel::connect(*port);
  ASSERT_TRUE(chan.is_ok());

  store["alpha"] = "plan-served value";
  store["big"] = std::string(2000, 'z');  // spills past SSO into the arena

  const auto* get_desc = pool_.find_message("kv.GetRequest");
  auto get = [&](const std::string& k) -> std::pair<bool, std::string> {
    proto::DynamicMessage m(get_desc);
    m.set_string(get_desc->field_by_name("key"), k);
    Bytes wire = proto::WireCodec::serialize(m);
    auto resp = (*chan)->call("kv.KvStore/Get", ByteSpan(wire));
    EXPECT_TRUE(resp.is_ok()) << resp.status().to_string();
    proto::DynamicMessage r(pool_.find_message("kv.GetResponse"));
    EXPECT_TRUE(proto::WireCodec::parse(ByteSpan(*resp), r).is_ok());
    return {r.get_uint64(r.descriptor()->field_by_name("found")) != 0,
            r.get_string(r.descriptor()->field_by_name("value"))};
  };

  auto [found_a, val_a] = get("alpha");
  EXPECT_TRUE(found_a);
  EXPECT_EQ(val_a, "plan-served value");
  auto [found_b, val_b] = get("big");
  EXPECT_TRUE(found_b);
  EXPECT_EQ(val_b, std::string(2000, 'z'));
  auto [found_c, val_c] = get("missing");  // handler returns an empty object
  EXPECT_FALSE(found_c);
  EXPECT_TRUE(val_c.empty());
  EXPECT_EQ(host_->requests_served(), 3u);
}

TEST_F(OffloadFixture, RepeatedFieldsThroughTheFullPath) {
  ASSERT_TRUE(host_
                  ->register_unary(
                      "kv.KvStore/Stats",
                      [](const ServerContext&, const adt::LayoutView& req,
                         proto::DynamicMessage& resp) {
                        uint64_t sum = 0;
                        for (uint32_t i = 0; i < req.repeated_size(1); ++i) {
                          sum += req.repeated_uint64(1, i);
                        }
                        resp.set_uint64(resp.descriptor()->field_by_name("keys"), sum);
                        resp.set_double(resp.descriptor()->field_by_name("load"),
                                        static_cast<double>(req.repeated_size(1)));
                        return Status::ok();
                      })
                  .is_ok());
  start_host_loop();
  proxy_ = std::make_unique<DpuProxy>(dpu_conn_.get(), dpu_manifest_.get());
  auto port = proxy_->start();
  ASSERT_TRUE(port.is_ok());
  auto chan = xrpc::Channel::connect(*port);
  ASSERT_TRUE(chan.is_ok());

  const auto* desc = pool_.find_message("kv.StatsRequest");
  proto::DynamicMessage m(desc);
  uint64_t expect = 0;
  std::mt19937_64 rng(kDefaultSeed);
  SkewedVarintDistribution dist;
  for (int i = 0; i < 512; ++i) {
    uint32_t v = dist(rng);
    expect += v;
    m.add_uint64(desc->field_by_name("shard_ids"), v);
  }
  Bytes wire = proto::WireCodec::serialize(m);
  auto resp = (*chan)->call("kv.KvStore/Stats", ByteSpan(wire));
  ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
  proto::DynamicMessage r(pool_.find_message("kv.StatsResponse"));
  ASSERT_TRUE(proto::WireCodec::parse(ByteSpan(*resp), r).is_ok());
  EXPECT_EQ(r.get_uint64(r.descriptor()->field_by_name("keys")), expect);
  EXPECT_DOUBLE_EQ(r.get_double(r.descriptor()->field_by_name("load")), 512.0);
}

TEST_F(OffloadFixture, MalformedPayloadRejectedAtTheDpu) {
  // The DPU (not the host) pays for and rejects malformed requests.
  start_host_loop();
  proxy_ = std::make_unique<DpuProxy>(dpu_conn_.get(), dpu_manifest_.get());
  auto port = proxy_->start();
  ASSERT_TRUE(port.is_ok());
  auto chan = xrpc::Channel::connect(*port);
  ASSERT_TRUE(chan.is_ok());

  Bytes garbage = to_bytes("\x0a\xff\xff\xff\xff not a protobuf");
  auto resp = (*chan)->call("kv.KvStore/Get", ByteSpan(garbage));
  EXPECT_FALSE(resp.is_ok());
  EXPECT_EQ(proxy_->stats().deserialize_failures.load(), 1u);
  EXPECT_EQ(host_->requests_served(), 0u);  // the host never saw it
}

TEST_F(OffloadFixture, UnknownXrpcMethodRejectedAtTheDpu) {
  start_host_loop();
  proxy_ = std::make_unique<DpuProxy>(dpu_conn_.get(), dpu_manifest_.get());
  auto port = proxy_->start();
  ASSERT_TRUE(port.is_ok());
  auto chan = xrpc::Channel::connect(*port);
  ASSERT_TRUE(chan.is_ok());
  auto resp = (*chan)->call("kv.KvStore/DoesNotExist", {});
  EXPECT_EQ(resp.status().code(), Code::kNotFound);  // rejected by the proxy
  EXPECT_EQ(host_->requests_served(), 0u);
}

TEST_F(OffloadFixture, ConcurrentXrpcClientsThroughOneProxy) {
  // The DPU multiplexes many xRPC connections onto one host link (§III.A).
  ASSERT_TRUE(host_
                  ->register_unary(
                      "kv.KvStore/Get",
                      [](const ServerContext&, const adt::LayoutView& req,
                         proto::DynamicMessage& resp) {
                        resp.set_string(resp.descriptor()->field_by_name("value"),
                                        std::string(req.get_string(1)) + "!");
                        resp.set_uint64(resp.descriptor()->field_by_name("found"), 1);
                        return Status::ok();
                      })
                  .is_ok());
  start_host_loop();
  proxy_ = std::make_unique<DpuProxy>(dpu_conn_.get(), dpu_manifest_.get());
  auto port = proxy_->start();
  ASSERT_TRUE(port.is_ok());

  constexpr int kClients = 3, kCallsEach = 30;
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto chan = xrpc::Channel::connect(*port);
      ASSERT_TRUE(chan.is_ok());
      const auto* desc = pool_.find_message("kv.GetRequest");
      for (int i = 0; i < kCallsEach; ++i) {
        proto::DynamicMessage m(desc);
        std::string key = "k" + std::to_string(c) + "-" + std::to_string(i);
        m.set_string(desc->field_by_name("key"), key);
        Bytes wire = proto::WireCodec::serialize(m);
        auto resp = (*chan)->call("kv.KvStore/Get", ByteSpan(wire));
        ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
        proto::DynamicMessage r(pool_.find_message("kv.GetResponse"));
        ASSERT_TRUE(proto::WireCodec::parse(ByteSpan(*resp), r).is_ok());
        EXPECT_EQ(r.get_string(r.descriptor()->field_by_name("value")), key + "!");
        ++ok;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients * kCallsEach);
  EXPECT_EQ(host_->requests_served(), static_cast<uint64_t>(kClients * kCallsEach));
}

// ------------------------------------------------------------- streaming

uint64_t fnv1a(ByteSpan data) {
  uint64_t h = 1469598103934665603ull;
  for (std::byte b : data) {
    h ^= static_cast<uint64_t>(b);
    h *= 1099511628211ull;
  }
  return h;
}

TEST_F(OffloadFixture, StreamedBulkTransferEndToEnd) {
  // The tentpole path: a multi-MB stream of kv.PutRequest records chunked
  // by the client, cut at record boundaries and chunk-decoded on the DPU
  // pool under a bounded per-stream budget, forwarded to the host as
  // (possibly fragmented) unary RPCs, and answered with a digest of the
  // reassembled bytes. Bit-for-bit parity: the host must accumulate
  // exactly the WireCodec oracle's concatenation.
  std::mutex mu;
  std::map<uint32_t, Bytes> accumulated;
  Bytes finished_stream;
  ASSERT_TRUE(host_
                  ->register_stream(
                      "kv.KvStore/Put",
                      [&](const ServerContext&, uint32_t stream_id,
                          ByteSpan chunk, bool end, Bytes& final_response) {
                        std::lock_guard<std::mutex> lk(mu);
                        Bytes& acc = accumulated[stream_id];
                        if (end) {
                          final_response.resize(8);
                          store_le(final_response.data(), fnv1a(ByteSpan(acc)));
                          finished_stream = std::move(acc);
                          accumulated.erase(stream_id);
                          return Status::ok();
                        }
                        acc.insert(acc.end(), chunk.begin(), chunk.end());
                        return Status::ok();
                      })
                  .is_ok());
  start_host_loop();

  proxy_ = std::make_unique<DpuProxy>(dpu_conn_.get(), dpu_manifest_.get());
  StreamOptions sopts;
  sopts.per_stream_budget = 256 * 1024;  // force backpressure on a 1.5 MB stream
  sopts.piece_target = 64 * 1024;        // pieces fragment on the RDMA hop too
  proxy_->set_stream_options(sopts);
  auto port = proxy_->start();
  ASSERT_TRUE(port.is_ok()) << port.status().to_string();
  auto chan = xrpc::Channel::connect(*port);
  ASSERT_TRUE(chan.is_ok());

  // The oracle: WireCodec-serialized records, concatenated.
  const auto* put_desc = pool_.find_message("kv.PutRequest");
  std::mt19937_64 rng(kDefaultSeed);
  Bytes oracle;
  int n_records = 0;
  while (oracle.size() < 1536u * 1024) {  // ~1.5 MB, 6x the budget
    proto::DynamicMessage m(put_desc);
    m.set_string(put_desc->field_by_name("key"),
                 "key-" + std::to_string(n_records));
    m.set_string(put_desc->field_by_name("value"),
                 random_ascii(rng, 200 + rng() % 1200));
    Bytes wire = proto::WireCodec::serialize(m);
    oracle.insert(oracle.end(), wire.begin(), wire.end());
    ++n_records;
  }
  ASSERT_GT(oracle.size(), sopts.per_stream_budget);

  auto stream = (*chan)->open_stream("kv.KvStore/Put");
  ASSERT_TRUE(stream.is_ok()) << stream.status().to_string();
  constexpr size_t kWrite = 32 * 1024;  // deliberately not record-aligned
  for (size_t off = 0; off < oracle.size(); off += kWrite) {
    size_t n = std::min(kWrite, oracle.size() - off);
    ASSERT_TRUE((*stream)->write(ByteSpan(oracle.data() + off, n)).is_ok());
  }
  auto resp = (*stream)->finish(60000);
  ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
  ASSERT_EQ(resp->size(), 8u);
  EXPECT_EQ(load_le<uint64_t>(resp->data()), fnv1a(ByteSpan(oracle)));

  {
    std::lock_guard<std::mutex> lk(mu);
    ASSERT_EQ(finished_stream.size(), oracle.size());
    EXPECT_TRUE(std::equal(finished_stream.begin(), finished_stream.end(),
                           oracle.begin()));
    EXPECT_TRUE(accumulated.empty());
  }

  // Bounded memory: the proxy never held more than the configured budget.
  EXPECT_GT(proxy_->stats().stream_chunks.load(), 0u);
  EXPECT_EQ(proxy_->stats().stream_bytes.load(), oracle.size());
  EXPECT_LE(proxy_->stats().stream_peak_bytes.load(), sopts.per_stream_budget);
  EXPECT_EQ(proxy_->stats().stream_aborts.load(), 0u);
  EXPECT_EQ(proxy_->stats().deserialize_failures.load(), 0u);
  // Backpressure engaged at the xRPC edge: the 1.5 MB stream had to wait
  // for the 256 KiB window at least once.
  EXPECT_GE((*stream)->credit_stalls(), 1u);
}

TEST_F(OffloadFixture, StreamMalformedRecordAbortsAtTheDpu) {
  bool host_saw_stream = false;
  ASSERT_TRUE(host_
                  ->register_stream(
                      "kv.KvStore/Put",
                      [&](const ServerContext&, uint32_t, ByteSpan, bool,
                          Bytes&) {
                        host_saw_stream = true;
                        return Status::ok();
                      })
                  .is_ok());
  start_host_loop();
  proxy_ = std::make_unique<DpuProxy>(dpu_conn_.get(), dpu_manifest_.get());
  auto port = proxy_->start();
  ASSERT_TRUE(port.is_ok());
  auto chan = xrpc::Channel::connect(*port);
  ASSERT_TRUE(chan.is_ok());

  auto stream = (*chan)->open_stream("kv.KvStore/Put");
  ASSERT_TRUE(stream.is_ok());
  // Field number 0 is never a valid tag: the record-boundary scan must
  // refuse it at the DPU without forwarding anything to the host.
  Bytes junk = {std::byte{0x00}, std::byte{0x01}, std::byte{0x02}};
  ASSERT_TRUE((*stream)->write(ByteSpan(junk)).is_ok());
  auto resp = (*stream)->finish();
  EXPECT_FALSE(resp.is_ok());
  EXPECT_FALSE(host_saw_stream);
  EXPECT_GE(proxy_->stats().stream_aborts.load(), 1u);
}

TEST_F(OffloadFixture, StreamAbortMidTransferDrainsCleanly) {
  // Client abort mid-stream: the proxy must drop every buffered piece and
  // retire its in-pool decodes without leaking a slice (ASan-checked when
  // the tier runs sanitized), and the datapath must stay healthy for the
  // next call — including a full second stream over the same lane.
  std::mutex mu;
  std::map<uint32_t, Bytes> accumulated;
  Bytes finished_stream;
  ASSERT_TRUE(host_
                  ->register_stream(
                      "kv.KvStore/Put",
                      [&](const ServerContext&, uint32_t stream_id,
                          ByteSpan chunk, bool end, Bytes& final_response) {
                        std::lock_guard<std::mutex> lk(mu);
                        Bytes& acc = accumulated[stream_id];
                        if (end) {
                          final_response.resize(8);
                          store_le(final_response.data(), fnv1a(ByteSpan(acc)));
                          finished_stream = std::move(acc);
                          accumulated.erase(stream_id);
                          return Status::ok();
                        }
                        acc.insert(acc.end(), chunk.begin(), chunk.end());
                        return Status::ok();
                      })
                  .is_ok());
  ASSERT_TRUE(host_
                  ->register_unary(
                      "kv.KvStore/Get",
                      [](const ServerContext&, const adt::LayoutView&,
                         proto::DynamicMessage& resp) {
                        resp.set_uint64(resp.descriptor()->field_by_name("found"),
                                        0);
                        return Status::ok();
                      })
                  .is_ok());
  start_host_loop();
  proxy_ = std::make_unique<DpuProxy>(dpu_conn_.get(), dpu_manifest_.get());
  StreamOptions sopts;
  sopts.per_stream_budget = 256 * 1024;
  sopts.piece_target = 32 * 1024;
  proxy_->set_stream_options(sopts);
  auto port = proxy_->start();
  ASSERT_TRUE(port.is_ok());
  auto chan = xrpc::Channel::connect(*port);
  ASSERT_TRUE(chan.is_ok());

  const auto* put_desc = pool_.find_message("kv.PutRequest");
  std::mt19937_64 rng(kDefaultSeed);
  Bytes records;
  for (int i = 0; i < 400; ++i) {
    proto::DynamicMessage m(put_desc);
    m.set_string(put_desc->field_by_name("key"), "k" + std::to_string(i));
    m.set_string(put_desc->field_by_name("value"), random_ascii(rng, 700));
    Bytes wire = proto::WireCodec::serialize(m);
    records.insert(records.end(), wire.begin(), wire.end());
  }

  auto stream = (*chan)->open_stream("kv.KvStore/Put");
  ASSERT_TRUE(stream.is_ok());
  // Push enough that pieces are in the pool and on the RDMA hop, then pull
  // the plug mid-transfer.
  size_t sent = 0;
  for (; sent < records.size() / 2; sent += 16 * 1024) {
    size_t n = std::min<size_t>(16 * 1024, records.size() - sent);
    ASSERT_TRUE((*stream)->write(ByteSpan(records.data() + sent, n)).is_ok());
  }
  (*stream)->abort(Code::kAborted);

  // The abort races the in-flight pieces; give the proxy a moment to drain.
  for (int i = 0; i < 200 && proxy_->stats().stream_aborts.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(proxy_->stats().stream_aborts.load(), 1u);

  // Datapath still healthy: a unary call and a complete second stream.
  const auto* get_desc = pool_.find_message("kv.GetRequest");
  proto::DynamicMessage g(get_desc);
  g.set_string(get_desc->field_by_name("key"), "after-abort");
  Bytes gw = proto::WireCodec::serialize(g);
  auto unary = (*chan)->call("kv.KvStore/Get", ByteSpan(gw));
  EXPECT_TRUE(unary.is_ok()) << unary.status().to_string();

  auto stream2 = (*chan)->open_stream("kv.KvStore/Put");
  ASSERT_TRUE(stream2.is_ok());
  for (size_t off = 0; off < records.size(); off += 16 * 1024) {
    size_t n = std::min<size_t>(16 * 1024, records.size() - off);
    ASSERT_TRUE((*stream2)->write(ByteSpan(records.data() + off, n)).is_ok());
  }
  auto resp2 = (*stream2)->finish(60000);
  ASSERT_TRUE(resp2.is_ok()) << resp2.status().to_string();
  EXPECT_EQ(load_le<uint64_t>(resp2->data()), fnv1a(ByteSpan(records)));
  {
    std::lock_guard<std::mutex> lk(mu);
    EXPECT_EQ(finished_stream.size(), records.size());
  }
}

}  // namespace
}  // namespace dpurpc::grpccompat
