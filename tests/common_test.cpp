// Unit tests for src/common: status propagation, endian helpers, alignment
// math, the bounded queue, and the workload RNG distributions.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/align.hpp"
#include "common/bounded_queue.hpp"
#include "common/bytes.hpp"
#include "common/cpu_timer.hpp"
#include "common/endian.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "wire/varint.hpp"

namespace dpurpc {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), Code::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s(Code::kDataLoss, "truncated varint");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), Code::kDataLoss);
  EXPECT_EQ(s.to_string(), "DATA_LOSS: truncated varint");
}

TEST(Status, EqualityIgnoresMessage) {
  EXPECT_EQ(Status(Code::kDataLoss, "a"), Status(Code::kDataLoss, "b"));
  EXPECT_FALSE(Status(Code::kDataLoss, "a") == Status(Code::kInternal, "a"));
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(Code::kAborted); ++c) {
    EXPECT_NE(code_name(static_cast<Code>(c)), "UNKNOWN");
  }
}

StatusOr<int> parse_positive(int v) {
  if (v <= 0) return Status(Code::kInvalidArgument, "not positive");
  return v;
}

Status use_it(int v, int* out) {
  DPURPC_ASSIGN_OR_RETURN(*out, parse_positive(v));
  return Status::ok();
}

TEST(StatusOr, ValueAndErrorPaths) {
  auto good = parse_positive(7);
  ASSERT_TRUE(good.is_ok());
  EXPECT_EQ(*good, 7);

  auto bad = parse_positive(-1);
  ASSERT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), Code::kInvalidArgument);
}

TEST(StatusOr, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(use_it(5, &out).is_ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(use_it(-2, &out).code(), Code::kInvalidArgument);
}

TEST(Endian, RoundTripUnaligned) {
  alignas(8) uint8_t buf[12] = {};
  store_le<uint32_t>(buf + 1, 0x12345678u);  // deliberately unaligned
  EXPECT_EQ(load_le<uint32_t>(buf + 1), 0x12345678u);
  store_le<uint64_t>(buf + 3, 0xdeadbeefcafebabeull);
  EXPECT_EQ(load_le<uint64_t>(buf + 3), 0xdeadbeefcafebabeull);
}

TEST(Endian, LittleEndianByteOrderOnWire) {
  uint8_t buf[4];
  store_le<uint32_t>(buf, 0x01020304u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(Align, UpDownAligned) {
  EXPECT_EQ(align_up(0, 8), 0u);
  EXPECT_EQ(align_up(1, 8), 8u);
  EXPECT_EQ(align_up(8, 8), 8u);
  EXPECT_EQ(align_up(1025, 1024), 2048u);
  EXPECT_EQ(align_down(1023, 1024), 0u);
  EXPECT_EQ(align_down(1024, 1024), 1024u);
  EXPECT_TRUE(is_aligned(4096, 1024));
  EXPECT_FALSE(is_aligned(4097, 1024));
}

TEST(Align, Pow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
}

TEST(Bytes, HexDump) {
  Bytes b = to_bytes(std::string_view("\xde\xad\xbe\xef", 4));
  EXPECT_EQ(hex_dump(b), "de ad be ef");
  EXPECT_EQ(hex_dump(b, 2), "de ad ...");
}

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
}

TEST(BoundedQueue, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  q.pop();
  EXPECT_TRUE(q.try_push(3));
}

TEST(BoundedQueue, CloseWakesConsumers) {
  BoundedQueue<int> q(2);
  std::thread consumer([&] {
    auto v = q.pop();
    EXPECT_FALSE(v.has_value());
  });
  q.close();
  consumer.join();
  EXPECT_FALSE(q.push(1));
}

TEST(BoundedQueue, DrainsAfterClose) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, ProducerConsumerStress) {
  BoundedQueue<int> q(8);
  constexpr int kN = 10'000;
  long long sum = 0;
  std::thread consumer([&] {
    for (int i = 0; i < kN; ++i) {
      auto v = q.pop();
      ASSERT_TRUE(v.has_value());
      sum += *v;
    }
  });
  for (int i = 0; i < kN; ++i) ASSERT_TRUE(q.push(i));
  consumer.join();
  EXPECT_EQ(sum, static_cast<long long>(kN) * (kN - 1) / 2);
}

TEST(BoundedQueue, MpmcStressWithSizePolling) {
  // TSan regression shape: many producers and consumers racing against a
  // size()/closed() poller. Everything observable must stay internally
  // consistent (every pushed item popped exactly once) and data-race
  // free — this is the exemplar protocol DESIGN.md §3.12 describes.
  BoundedQueue<int> q(16);
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2'000;
  std::atomic<long long> popped_sum{0};
  std::atomic<int> popped_count{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        popped_sum.fetch_add(*v, std::memory_order_relaxed);
        popped_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread poller([&] {
    // Hammer the const observers while the queue churns.
    while (!q.closed()) {
      (void)q.size();
    }
  });
  long long pushed_sum = 0;
  {
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          ASSERT_TRUE(q.push(p * kPerProducer + i));
        }
      });
    }
    for (auto& t : producers) t.join();
  }
  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < kPerProducer; ++i) pushed_sum += p * kPerProducer + i;
  }
  // Close wakes the consumers; they drain what remains, then exit.
  q.close();
  for (auto& t : threads) t.join();
  poller.join();
  EXPECT_EQ(popped_count.load(), kProducers * kPerProducer);
  EXPECT_EQ(popped_sum.load(), pushed_sum);
}

TEST(BoundedQueue, CloseRacingPushersAndPoppers) {
  // close() during full-throttle traffic: pushes after close fail, pops
  // drain the remainder, nobody deadlocks on a missed wakeup.
  for (int round = 0; round < 20; ++round) {
    BoundedQueue<int> q(4);
    std::atomic<int> pushed{0}, popped{0};
    std::thread producer([&] {
      for (int i = 0; i < 1'000; ++i) {
        if (!q.push(i)) break;  // queue closed mid-stream
        pushed.fetch_add(1, std::memory_order_relaxed);
      }
    });
    std::thread consumer([&] {
      while (q.pop().has_value()) popped.fetch_add(1, std::memory_order_relaxed);
    });
    q.close();
    producer.join();
    consumer.join();
    EXPECT_LE(popped.load(), pushed.load());
  }
}

TEST(Rng, SkewedVarintIsDeterministic) {
  std::mt19937_64 a(kDefaultSeed), b(kDefaultSeed);
  SkewedVarintDistribution dist;
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(dist(a), dist(b));
}

TEST(Rng, SkewedVarintFavorsShortEncodings) {
  // The paper's distribution makes small values (short varints) likelier.
  std::mt19937_64 rng(kDefaultSeed);
  SkewedVarintDistribution dist;
  int len_count[6] = {};
  for (int i = 0; i < 20'000; ++i) {
    ++len_count[wire::varint_size(dist(rng))];
  }
  EXPECT_GT(len_count[1], len_count[2]);
  EXPECT_GT(len_count[2], len_count[3]);
  EXPECT_GT(len_count[3], len_count[4]);
  EXPECT_GT(len_count[4], len_count[5]);
  EXPECT_GT(len_count[5], 0);  // all five byte-length classes are exercised
}

TEST(Rng, RandomAsciiIsPrintable) {
  std::mt19937_64 rng(kDefaultSeed);
  std::string s = random_ascii(rng, 4096);
  for (char c : s) {
    EXPECT_GE(c, ' ');
    EXPECT_LE(c, '~');
  }
}

TEST(Timers, WallTimerAdvances) {
  WallTimer t;
  // Burn a little CPU so both clocks move.
  volatile uint64_t x = 0;
  for (int i = 0; i < 100'000; ++i) x += i;
  EXPECT_GT(t.elapsed_ns(), 0u);
}

TEST(Timers, ThreadCpuTimerCountsOwnWorkOnly) {
  ThreadCpuTimer cpu;
  volatile uint64_t x = 0;
  for (int i = 0; i < 1'000'000; ++i) x += i;
  uint64_t busy = cpu.elapsed_ns();
  EXPECT_GT(busy, 0u);

  // A sleeping thread accumulates (almost) no CPU time.
  uint64_t sleeper_busy = 0;
  std::thread sleeper([&] {
    ThreadCpuTimer t2;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    sleeper_busy = t2.elapsed_ns();
  });
  sleeper.join();
  EXPECT_LT(sleeper_busy, 15'000'000u);  // far below the 20ms wall time
}

}  // namespace
}  // namespace dpurpc
