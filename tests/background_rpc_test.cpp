// Tests for background RPC execution (§III.D extension): thread-pool
// handlers, out-of-order completion (which the response-ID protocol was
// designed for), deferred in-order block acknowledgment, mixing with
// foreground handlers, and full resource reclamation at quiescence.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "common/rng.hpp"
#include "rdmarpc/client.hpp"
#include "rdmarpc/connection.hpp"
#include "rdmarpc/server.hpp"

namespace dpurpc::rdmarpc {
namespace {

constexpr uint16_t kBgEcho = 1;
constexpr uint16_t kFgEcho = 2;
constexpr uint16_t kSlowFirst = 3;
constexpr uint16_t kBgFail = 4;

struct Fixture {
  Fixture() : client_conn(Role::kClient, &client_pd, {}),
              server_conn(Role::kServer, &server_pd, {}),
              client(&client_conn),
              server(&server_conn) {
    EXPECT_TRUE(Connection::connect(client_conn, server_conn).is_ok());
    EXPECT_TRUE(server.enable_background({.threads = 2, .queue_depth = 64}).is_ok());
  }

  // Pump until N responses. The server may be waiting on workers, so allow
  // wall time to pass between turns.
  Status pump_until(uint64_t target, int max_iters = 20000) {
    for (int i = 0; i < max_iters; ++i) {
      auto c = client.event_loop_once();
      if (!c.is_ok()) return c.status();
      auto s = server.event_loop_once();
      if (!s.is_ok()) return s.status();
      if (client.responses_received() >= target) return Status::ok();
      if (*c == 0 && *s == 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return Status(Code::kInternal, "pump did not converge");
  }

  simverbs::ProtectionDomain client_pd{"dpu"}, server_pd{"host"};
  Connection client_conn, server_conn;
  RpcClient client;
  RpcServer server;
};

TEST(BackgroundRpc, RequiresEnableFirst) {
  simverbs::ProtectionDomain pd("x");
  Connection conn(Role::kServer, &pd, {});
  RpcServer server(&conn);
  EXPECT_EQ(server.register_background_handler(1, nullptr).code(),
            Code::kFailedPrecondition);
}

TEST(BackgroundRpc, EnableTwiceFails) {
  Fixture f;
  EXPECT_EQ(f.server.enable_background({}).code(), Code::kFailedPrecondition);
}

TEST(BackgroundRpc, HandlerRunsOffPollerThread) {
  Fixture f;
  std::thread::id poller = std::this_thread::get_id();
  std::atomic<bool> off_thread{false};
  ASSERT_TRUE(f.server
                  .register_background_handler(
                      kBgEcho,
                      [&](const RequestView& req, Bytes& out) {
                        off_thread = std::this_thread::get_id() != poller;
                        out = Bytes(req.payload.begin(), req.payload.end());
                        return Status::ok();
                      })
                  .is_ok());
  std::string got;
  ASSERT_TRUE(f.client
                  .call(kBgEcho, as_bytes_view("bg hello"),
                        [&](const Status& st, const InMessage& resp) {
                          EXPECT_TRUE(st.is_ok());
                          got = std::string(as_string_view(resp.payload));
                        })
                  .is_ok());
  ASSERT_TRUE(f.pump_until(1).is_ok());
  EXPECT_EQ(got, "bg hello");
  EXPECT_TRUE(off_thread.load());
  EXPECT_EQ(f.server.background_served(), 1u);
}

TEST(BackgroundRpc, OutOfOrderCompletionMatchesRequests) {
  // The first request stalls in the pool while later ones finish: the
  // client must still route every response to the right continuation.
  Fixture f;
  std::atomic<bool> release_slow{false};
  ASSERT_TRUE(f.server
                  .register_background_handler(
                      kSlowFirst,
                      [&](const RequestView& req, Bytes& out) {
                        if (as_string_view(req.payload) == "slow") {
                          while (!release_slow.load()) {
                            std::this_thread::sleep_for(std::chrono::microseconds(100));
                          }
                        }
                        out = Bytes(req.payload.begin(), req.payload.end());
                        return Status::ok();
                      })
                  .is_ok());

  std::vector<std::string> completions;
  auto track = [&](std::string expect) {
    return [&completions, expect](const Status& st, const InMessage& resp) {
      ASSERT_TRUE(st.is_ok());
      EXPECT_EQ(as_string_view(resp.payload), expect);
      completions.push_back(expect);
    };
  };
  ASSERT_TRUE(f.client.call(kSlowFirst, as_bytes_view("slow"), track("slow")).is_ok());
  ASSERT_TRUE(f.client.call(kSlowFirst, as_bytes_view("fast1"), track("fast1")).is_ok());
  ASSERT_TRUE(f.client.call(kSlowFirst, as_bytes_view("fast2"), track("fast2")).is_ok());

  // The two fast ones complete while "slow" is pinned.
  ASSERT_TRUE(f.pump_until(2).is_ok());
  EXPECT_EQ(completions, (std::vector<std::string>{"fast1", "fast2"}));
  release_slow = true;
  ASSERT_TRUE(f.pump_until(3).is_ok());
  EXPECT_EQ(completions.back(), "slow");
}

TEST(BackgroundRpc, MixesWithForegroundHandlers) {
  Fixture f;
  ASSERT_TRUE(f.server
                  .register_background_handler(
                      kBgEcho,
                      [](const RequestView& req, Bytes& out) {
                        out = to_bytes("bg:" + std::string(as_string_view(req.payload)));
                        return Status::ok();
                      })
                  .is_ok());
  f.server.register_handler(kFgEcho, [](const RequestView& req, Bytes& out) {
    out = to_bytes("fg:" + std::string(as_string_view(req.payload)));
    return Status::ok();
  });

  std::set<std::string> got;
  auto sink = [&](const Status& st, const InMessage& resp) {
    ASSERT_TRUE(st.is_ok());
    got.insert(std::string(as_string_view(resp.payload)));
  };
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(f.client
                    .call(i % 2 ? kBgEcho : kFgEcho,
                          as_bytes_view(std::to_string(i)), sink)
                    .is_ok());
  }
  ASSERT_TRUE(f.pump_until(10).is_ok());
  EXPECT_EQ(got.size(), 10u);
  EXPECT_TRUE(got.count("fg:0"));
  EXPECT_TRUE(got.count("bg:1"));
  EXPECT_EQ(f.server.background_served(), 5u);
}

TEST(BackgroundRpc, ErrorStatusPropagates) {
  Fixture f;
  ASSERT_TRUE(f.server
                  .register_background_handler(
                      kBgFail,
                      [](const RequestView&, Bytes&) {
                        return Status(Code::kFailedPrecondition, "bg error");
                      })
                  .is_ok());
  Status seen;
  ASSERT_TRUE(f.client
                  .call(kBgFail, as_bytes_view("x"),
                        [&](const Status& st, const InMessage&) { seen = st; })
                  .is_ok());
  ASSERT_TRUE(f.pump_until(1).is_ok());
  EXPECT_EQ(seen.code(), Code::kFailedPrecondition);
}

TEST(BackgroundRpc, ResourcesReclaimedAtQuiescence) {
  // Deferred acknowledgments must still retire every block once background
  // work drains — no leaked credits, buffers, or IDs.
  Fixture f;
  ASSERT_TRUE(f.server
                  .register_background_handler(
                      kBgEcho,
                      [](const RequestView& req, Bytes& out) {
                        out = Bytes(req.payload.begin(), req.payload.end());
                        return Status::ok();
                      })
                  .is_ok());
  std::mt19937_64 rng(kDefaultSeed);
  uint64_t sent = 0;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 30; ++i) {
      ++sent;
      ASSERT_TRUE(
          f.client.call(kBgEcho, as_bytes_view(random_ascii(rng, 80)), nullptr).is_ok());
    }
    ASSERT_TRUE(f.pump_until(sent).is_ok());
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(f.client.event_loop_once().is_ok());
    ASSERT_TRUE(f.server.event_loop_once().is_ok());
  }
  EXPECT_EQ(f.client_conn.credits_available(), f.client_conn.config().credits);
  EXPECT_EQ(f.server_conn.credits_available(), f.server_conn.config().credits);
  EXPECT_EQ(f.client_conn.allocator().used(), 0u);
  EXPECT_EQ(f.server_conn.allocator().used(), 0u);
  EXPECT_EQ(f.client.in_flight(), 0u);
}

TEST(BackgroundRpc, InPlaceObjectStaysValidDuringBackgroundWork) {
  // The in-place request object lives in the receive buffer; deferred
  // acknowledgment keeps the region from being rewritten while a worker
  // reads it "slowly".
  Fixture f;
  std::atomic<uint64_t> checksum{0};
  ASSERT_TRUE(f.server
                  .register_background_handler(
                      kBgEcho,
                      [&](const RequestView& req, Bytes& out) {
                        uint64_t v = load_le<uint64_t>(req.object);
                        std::this_thread::sleep_for(std::chrono::milliseconds(1));
                        // Re-read: must be unchanged.
                        EXPECT_EQ(load_le<uint64_t>(req.object), v);
                        checksum += v;
                        out.resize(8);
                        store_le(out.data(), v);
                        return Status::ok();
                      })
                  .is_ok());
  uint64_t expect = 0;
  for (uint64_t i = 1; i <= 8; ++i) {
    expect += i * 111;
    ASSERT_TRUE(f.client
                    .call_inplace(
                        kBgEcho, 0, 64,
                        [i](arena::Arena& arena, const arena::AddressTranslator&)
                            -> StatusOr<uint32_t> {
                          auto* p = static_cast<std::byte*>(arena.allocate(8));
                          if (p == nullptr) {
                            return Status(Code::kResourceExhausted, "full");
                          }
                          store_le<uint64_t>(p, i * 111);
                          return static_cast<uint32_t>(arena.used());
                        },
                        nullptr)
                    .is_ok());
  }
  ASSERT_TRUE(f.pump_until(8).is_ok());
  EXPECT_EQ(checksum.load(), expect);
}

}  // namespace
}  // namespace dpurpc::rdmarpc
