// End-to-end trace propagation over the full offload datapath: xRPC
// client → DPU proxy (pool decode) → RPC over RDMA → host → back. Every
// datapath stage must record exactly one span into the request's tree.
#include <gtest/gtest.h>

#include <chrono>
#include <iterator>
#include <map>
#include <thread>

#include "grpccompat/dpu_proxy.hpp"
#include "grpccompat/host_service.hpp"
#include "grpccompat/manifest.hpp"
#include "proto/schema_parser.hpp"
#include "trace/collector.hpp"
#include "trace/trace.hpp"
#include "xrpc/channel.hpp"

namespace dpurpc::grpccompat {
namespace {

constexpr std::string_view kSchema = R"(
syntax = "proto3";
package kv;

message PutRequest { string key = 1; string value = 2; }
message PutResponse { bool created = 1; }

service KvStore {
  rpc Put (PutRequest) returns (PutResponse);
}
)";

class TraceE2eFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    proto::SchemaParser parser(pool_);
    ASSERT_TRUE(parser.parse_and_link(kSchema).is_ok());
    auto built = OffloadManifest::build(pool_, arena::StdLibFlavor::kLibstdcpp);
    ASSERT_TRUE(built.is_ok()) << built.status().to_string();
    manifest_ = std::make_unique<OffloadManifest>(std::move(*built));

    dpu_pd_ = std::make_unique<simverbs::ProtectionDomain>("dpu");
    host_pd_ = std::make_unique<simverbs::ProtectionDomain>("host");
    dpu_conn_ = std::make_unique<rdmarpc::Connection>(
        rdmarpc::Role::kClient, dpu_pd_.get(), rdmarpc::ConnectionConfig{});
    host_conn_ = std::make_unique<rdmarpc::Connection>(
        rdmarpc::Role::kServer, host_pd_.get(), rdmarpc::ConnectionConfig{});
    ASSERT_TRUE(rdmarpc::Connection::connect(*dpu_conn_, *host_conn_).is_ok());
    host_ = std::make_unique<HostEngine>(host_conn_.get(), manifest_.get(),
                                         &pool_);
  }

  void start_host_loop() {
    host_thread_ = std::thread([this] {
      while (!stop_.load(std::memory_order_relaxed)) {
        auto n = host_->event_loop_once();
        if (!n.is_ok()) return;
        if (*n == 0) host_->wait(1);
      }
    });
  }

  void TearDown() override {
    if (proxy_) proxy_->stop();
    stop_.store(true);
    host_conn_->interrupt();
    if (host_thread_.joinable()) host_thread_.join();
    trace::Tracer::instance().configure(trace::TraceConfig{});
  }

  proto::DescriptorPool pool_;
  std::unique_ptr<OffloadManifest> manifest_;
  std::unique_ptr<simverbs::ProtectionDomain> dpu_pd_, host_pd_;
  std::unique_ptr<rdmarpc::Connection> dpu_conn_, host_conn_;
  std::unique_ptr<HostEngine> host_;
  std::unique_ptr<DpuProxy> proxy_;
  std::thread host_thread_;
  std::atomic<bool> stop_{false};
};

TEST_F(TraceE2eFixture, EveryStageRecordsExactlyOnce) {
#if !DPURPC_TRACE_ENABLED
  GTEST_SKIP() << "tracing compiled out (DPURPC_TRACE=OFF)";
#endif
  // Full tracing; drain anything a previous test binary run left behind.
  {
    std::vector<trace::SpanRecord> junk;
    trace::Tracer::instance().drain_into(junk);
  }
  trace::TraceConfig config;
  config.mode = trace::Mode::kFull;
  trace::Tracer::instance().configure(config);

  metrics::Registry reg;
  trace::TraceCollector::Options copts;
  copts.registry = &reg;
  copts.tail_keep_every = 1;     // retain every tree: we inspect them all
  copts.orphan_max_age = 10000;  // never age out mid-test
  trace::TraceCollector collector(copts);

  std::map<std::string, std::string> store;
  ASSERT_TRUE(host_
                  ->register_unary(
                      "kv.KvStore/Put",
                      [&store](const ServerContext&, const adt::LayoutView& req,
                               proto::DynamicMessage& resp) {
                        store[std::string(req.get_string(1))] =
                            std::string(req.get_string(2));
                        resp.set_uint64(resp.descriptor()->field_by_name("created"),
                                        1);
                        return Status::ok();
                      })
                  .is_ok());
  start_host_loop();

  proxy_ = std::make_unique<DpuProxy>(dpu_conn_.get(), manifest_.get());
  auto port = proxy_->start();
  ASSERT_TRUE(port.is_ok()) << port.status().to_string();
  auto chan = xrpc::Channel::connect(*port);
  ASSERT_TRUE(chan.is_ok());

  constexpr int kCalls = 8;
  const auto* put_desc = pool_.find_message("kv.PutRequest");
  for (int i = 0; i < kCalls; ++i) {
    proto::DynamicMessage m(put_desc);
    m.set_string(put_desc->field_by_name("key"), "k" + std::to_string(i));
    m.set_string(put_desc->field_by_name("value"), "v" + std::to_string(i));
    Bytes wire = proto::WireCodec::serialize(m);
    auto resp = (*chan)->call("kv.KvStore/Put", ByteSpan(wire));
    ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
  }

  // The root span lands on the channel reader thread *after* the callback
  // that completed the sync call, so keep collecting until all trees close.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (collector.traces_completed() < kCalls &&
         std::chrono::steady_clock::now() < deadline) {
    collector.collect();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(collector.traces_completed(), static_cast<uint64_t>(kCalls));
  ASSERT_EQ(collector.retained().size(), static_cast<size_t>(kCalls));

  // The stages a pool-decoded offloaded request passes through, in Fig. 1
  // order. Each must appear exactly once per tree.
  const trace::Stage expected[] = {
      trace::Stage::kRequest,        trace::Stage::kClientSerialize,
      trace::Stage::kXrpcInbound,    trace::Stage::kProxyDispatch,
      trace::Stage::kLaneQueueWait,  trace::Stage::kDecodeRingWait,
      trace::Stage::kWorkerDecode,   trace::Stage::kBlockBuild,
      trace::Stage::kFlushWait,      trace::Stage::kRdmaInbound,
      trace::Stage::kHostDispatch,   trace::Stage::kHostSerialize,
      trace::Stage::kRespFlushWait,  trace::Stage::kRdmaOutbound,
      trace::Stage::kComplete,       trace::Stage::kXrpcOutbound,
  };
  for (const trace::SpanTree& tree : collector.retained()) {
    std::map<trace::Stage, int> counts;
    for (const trace::Span& s : tree.spans) counts[s.stage] += 1;
    for (trace::Stage st : expected) {
      EXPECT_EQ(counts[st], 1) << "stage " << trace::stage_name(st)
                               << " in trace " << tree.trace_id;
    }
    EXPECT_EQ(tree.spans.size(), std::size(expected))
        << "unexpected extra spans in trace " << tree.trace_id;

    // Tree shape: one root, every stage span parented to it, and no span
    // longer than the end-to-end time plus scheduling slack.
    const trace::Span* root = tree.root();
    ASSERT_NE(root, nullptr);
    EXPECT_GT(root->duration_ns(), 0u);
    for (const trace::Span& s : tree.spans) {
      if (&s == root) continue;
      EXPECT_EQ(s.parent_span_id, root->span_id);
      EXPECT_LE(s.start_ns, s.end_ns);
    }
  }

  // Per-stage histograms populated for every expected stage.
  metrics::Snapshot snap = reg.scrape();
  for (trace::Stage st : expected) {
    const metrics::Sample* count = snap.find(
        "dpurpc_trace_stage_seconds_count", {{"stage", trace::stage_name(st)}});
    ASSERT_NE(count, nullptr) << trace::stage_name(st);
    EXPECT_EQ(count->value, static_cast<double>(kCalls))
        << trace::stage_name(st);
  }

  // The exporter produces an openable timeline for what we retained.
  std::string json = collector.export_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker_decode\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"request\""), std::string::npos);
}

// The response-offload variant: handlers built with register_unary_object
// reply with an in-place *object* that the codec pool serializes on the
// DPU. The host-serialize span disappears and the two response-side pool
// stages appear — each exactly once per reply.
TEST_F(TraceE2eFixture, OffloadedReplyStagesRecordExactlyOnce) {
#if !DPURPC_TRACE_ENABLED
  GTEST_SKIP() << "tracing compiled out (DPURPC_TRACE=OFF)";
#endif
  {
    std::vector<trace::SpanRecord> junk;
    trace::Tracer::instance().drain_into(junk);
  }
  trace::TraceConfig config;
  config.mode = trace::Mode::kFull;
  trace::Tracer::instance().configure(config);

  metrics::Registry reg;
  trace::TraceCollector::Options copts;
  copts.registry = &reg;
  copts.tail_keep_every = 1;
  copts.orphan_max_age = 10000;
  trace::TraceCollector collector(copts);

  ASSERT_TRUE(host_
                  ->register_unary_object(
                      "kv.KvStore/Put",
                      [](const ServerContext&, const adt::LayoutView&,
                         adt::LayoutBuilder& resp) {
                        return resp.set_uint64(1, 1);
                      })
                  .is_ok());
  start_host_loop();

  proxy_ = std::make_unique<DpuProxy>(dpu_conn_.get(), manifest_.get());
  auto port = proxy_->start();
  ASSERT_TRUE(port.is_ok()) << port.status().to_string();
  auto chan = xrpc::Channel::connect(*port);
  ASSERT_TRUE(chan.is_ok());

  constexpr int kCalls = 8;
  const auto* put_desc = pool_.find_message("kv.PutRequest");
  for (int i = 0; i < kCalls; ++i) {
    proto::DynamicMessage m(put_desc);
    m.set_string(put_desc->field_by_name("key"), "k" + std::to_string(i));
    m.set_string(put_desc->field_by_name("value"), "v" + std::to_string(i));
    Bytes wire = proto::WireCodec::serialize(m);
    auto resp = (*chan)->call("kv.KvStore/Put", ByteSpan(wire));
    ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
  }
  // Nothing spilled: every reply actually rode the pool's encode direction.
  ASSERT_EQ(proxy_->stats().offloaded_responses.load(),
            static_cast<uint64_t>(kCalls));
  ASSERT_EQ(proxy_->stats().inline_serializes.load(), 0u);

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (collector.traces_completed() < kCalls &&
         std::chrono::steady_clock::now() < deadline) {
    collector.collect();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(collector.traces_completed(), static_cast<uint64_t>(kCalls));
  ASSERT_EQ(collector.retained().size(), static_cast<size_t>(kCalls));

  // The offloaded-reply stage set: the copy path's 16 stages, minus the
  // host serialize (the host never serializes), plus the encode ring wait
  // and the pool serialize span.
  const trace::Stage expected[] = {
      trace::Stage::kRequest,        trace::Stage::kClientSerialize,
      trace::Stage::kXrpcInbound,    trace::Stage::kProxyDispatch,
      trace::Stage::kLaneQueueWait,  trace::Stage::kDecodeRingWait,
      trace::Stage::kWorkerDecode,   trace::Stage::kBlockBuild,
      trace::Stage::kFlushWait,      trace::Stage::kRdmaInbound,
      trace::Stage::kHostDispatch,   trace::Stage::kRespFlushWait,
      trace::Stage::kRdmaOutbound,   trace::Stage::kEncodeRingWait,
      trace::Stage::kWorkerEncode,   trace::Stage::kComplete,
      trace::Stage::kXrpcOutbound,
  };
  for (const trace::SpanTree& tree : collector.retained()) {
    std::map<trace::Stage, int> counts;
    for (const trace::Span& s : tree.spans) counts[s.stage] += 1;
    for (trace::Stage st : expected) {
      EXPECT_EQ(counts[st], 1) << "stage " << trace::stage_name(st)
                               << " in trace " << tree.trace_id;
    }
    EXPECT_EQ(counts[trace::Stage::kHostSerialize], 0)
        << "offloaded reply must not record a host serialize span";
    EXPECT_EQ(tree.spans.size(), std::size(expected))
        << "unexpected extra spans in trace " << tree.trace_id;
    const trace::Span* root = tree.root();
    ASSERT_NE(root, nullptr);
    for (const trace::Span& s : tree.spans) {
      if (&s == root) continue;
      EXPECT_EQ(s.parent_span_id, root->span_id);
      EXPECT_LE(s.start_ns, s.end_ns);
    }
  }

  metrics::Snapshot snap = reg.scrape();
  for (trace::Stage st : expected) {
    const metrics::Sample* count = snap.find(
        "dpurpc_trace_stage_seconds_count", {{"stage", trace::stage_name(st)}});
    ASSERT_NE(count, nullptr) << trace::stage_name(st);
    EXPECT_EQ(count->value, static_cast<double>(kCalls))
        << trace::stage_name(st);
  }

  // Perfetto/Chrome timelines still tile: the response-side spans export
  // under their wire names.
  std::string json = collector.export_chrome_json();
  EXPECT_NE(json.find("\"name\":\"worker_encode\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"encode_ring_wait\""), std::string::npos);
}

}  // namespace
}  // namespace dpurpc::grpccompat
