// Robustness / fuzz tests: every public byte-consuming surface must
// survive arbitrary hostile input with a clean Status — never a crash,
// hang, or out-of-bounds access. (The DPU terminates untrusted client
// traffic, so this is the paper system's actual threat surface.)
#include <gtest/gtest.h>

#include <random>

#include "adt/arena_deserializer.hpp"
#include "adt/object_codec.hpp"
#include "common/rng.hpp"
#include "grpccompat/manifest.hpp"
#include "common/endian.hpp"
#include "proto/dynamic_message.hpp"
#include "proto/schema_parser.hpp"
#include "xrpc/channel.hpp"
#include "xrpc/server.hpp"

namespace dpurpc {
namespace {

constexpr std::string_view kSchema = R"(
syntax = "proto3";
package fz;
message Inner { string s = 1; repeated uint64 v = 2; }
message Outer {
  Inner one = 1;
  repeated Inner many = 2;
  string name = 3;
  bytes blob = 4;
  repeated sint32 zz = 5;
  double d = 6;
  fixed64 f = 7;
}
)";

struct FuzzEnv {
  proto::DescriptorPool pool;
  adt::Adt adt;
  uint32_t outer = 0;

  FuzzEnv() {
    proto::SchemaParser parser(pool);
    EXPECT_TRUE(parser.parse_and_link(kSchema).is_ok());
    adt::DescriptorAdtBuilder builder(arena::StdLibFlavor::kLibstdcpp);
    outer = *builder.add_message(pool.find_message("fz.Outer"));
    adt = std::move(builder).take();
    adt.set_fingerprint(adt::AbiFingerprint::current(arena::StdLibFlavor::kLibstdcpp));
  }
};

// ------------------------------------------------------- schema parser

TEST(Fuzz, SchemaParserSurvivesRandomBytes) {
  std::mt19937_64 rng(kDefaultSeed);
  for (int i = 0; i < 500; ++i) {
    std::string junk = random_bytes(rng, rng() % 300);
    proto::DescriptorPool pool;
    proto::SchemaParser parser(pool);
    (void)parser.parse_and_link(junk);  // any Status is fine; no crash
  }
}

TEST(Fuzz, SchemaParserSurvivesTokenSoup) {
  std::mt19937_64 rng(kDefaultSeed);
  const char* tokens[] = {"syntax",   "=",      "\"proto3\"", ";",      "message",
                          "M",        "{",      "}",          "int32",  "repeated",
                          "string",   "rpc",    "service",    "(",      ")",
                          "returns",  "enum",   "package",    "import", "option",
                          "reserved", "12345",  "-3",         ".",      "//x\n",
                          "/*",       "*/",     "\"str\"",    "'c'",    "\\"};
  for (int i = 0; i < 800; ++i) {
    std::string src;
    int n = 1 + static_cast<int>(rng() % 40);
    for (int j = 0; j < n; ++j) {
      src += tokens[rng() % std::size(tokens)];
      src += ' ';
    }
    proto::DescriptorPool pool;
    proto::SchemaParser parser(pool);
    (void)parser.parse_and_link(src);
  }
}

// ----------------------------------------------------- arena deserializer

TEST(Fuzz, DeserializerSurvivesRandomBytes) {
  FuzzEnv env;
  adt::ArenaDeserializer deser(&env.adt);
  arena::OwningArena arena(1 << 18);
  std::mt19937_64 rng(kDefaultSeed);
  int accepted = 0;
  for (int i = 0; i < 3000; ++i) {
    arena.reset();
    std::string junk = random_bytes(rng, rng() % 200);
    auto obj = deser.deserialize(env.outer, ByteSpan(as_bytes_view(junk)), arena, {});
    if (obj.is_ok()) ++accepted;
  }
  // Random bytes occasionally parse (e.g. empty/skip-only); the point is
  // no crash, and most inputs are rejected.
  EXPECT_LT(accepted, 3000);
}

TEST(Fuzz, DeserializerSurvivesMutatedValidWire) {
  // Mutations of real messages probe deeper code paths than pure noise.
  FuzzEnv env;
  const auto* outer = env.pool.find_message("fz.Outer");
  const auto* inner = env.pool.find_message("fz.Inner");
  std::mt19937_64 rng(kDefaultSeed);

  proto::DynamicMessage m(outer);
  auto* one = m.mutable_message(outer->field_by_name("one"));
  one->set_string(inner->field_by_name("s"), "valid seed message");
  for (int i = 0; i < 30; ++i) one->add_uint64(inner->field_by_name("v"), i * 7);
  for (int i = 0; i < 3; ++i) {
    m.add_message(outer->field_by_name("many"))
        ->set_string(inner->field_by_name("s"), random_ascii(rng, 20));
  }
  m.set_string(outer->field_by_name("name"), "outer");
  m.add_int64(outer->field_by_name("zz"), -5);
  m.set_double(outer->field_by_name("d"), 2.5);
  Bytes seed = proto::WireCodec::serialize(m);

  adt::ArenaDeserializer deser(&env.adt);
  arena::OwningArena arena(1 << 18);
  for (int i = 0; i < 4000; ++i) {
    Bytes wire = seed;
    int mutations = 1 + static_cast<int>(rng() % 4);
    for (int j = 0; j < mutations; ++j) {
      size_t pos = rng() % wire.size();
      switch (rng() % 3) {
        case 0: wire[pos] = static_cast<std::byte>(rng() & 0xff); break;
        case 1: wire.resize(pos); break;  // truncate
        case 2: wire.insert(wire.begin() + static_cast<long>(pos),
                            static_cast<std::byte>(rng() & 0xff));
                break;
      }
      if (wire.empty()) break;
    }
    arena.reset();
    auto obj = deser.deserialize(env.outer, ByteSpan(wire), arena, {});
    if (obj.is_ok()) {
      // Anything accepted must re-serialize without crashing and parse
      // with the reference codec (i.e. the object is self-consistent).
      adt::ObjectSerializer ser(&env.adt);
      Bytes back;
      ASSERT_TRUE(ser.serialize(adt::ObjectRef(env.outer, *obj), back).is_ok());
      proto::DynamicMessage check(outer);
      EXPECT_TRUE(proto::WireCodec::parse(ByteSpan(back), check).is_ok());
    }
  }
}

TEST(Fuzz, ReferenceCodecAgreesOnAcceptReject) {
  // The custom deserializer and the reference codec must accept/reject the
  // same inputs (modulo arena exhaustion, which cannot occur at this size).
  FuzzEnv env;
  const auto* outer = env.pool.find_message("fz.Outer");
  adt::ArenaDeserializer deser(&env.adt);
  arena::OwningArena arena(1 << 18);
  std::mt19937_64 rng(kDefaultSeed + 1);
  for (int i = 0; i < 2000; ++i) {
    std::string junk = random_bytes(rng, rng() % 120);
    arena.reset();
    bool custom_ok =
        deser.deserialize(env.outer, ByteSpan(as_bytes_view(junk)), arena, {}).is_ok();
    proto::DynamicMessage ref(outer);
    bool ref_ok = proto::WireCodec::parse(ByteSpan(as_bytes_view(junk)), ref).is_ok();
    EXPECT_EQ(custom_ok, ref_ok) << "input: " << hex_dump(as_bytes_view(junk), 120);
  }
}

// ------------------------------------------------------------- manifest

TEST(Fuzz, ManifestDeserializeSurvivesCorruption) {
  FuzzEnv env;
  auto manifest = grpccompat::OffloadManifest::build(env.pool,
                                                     arena::StdLibFlavor::kLibstdcpp);
  // No services in the schema: build a tiny one instead.
  proto::DescriptorPool pool;
  proto::SchemaParser parser(pool);
  ASSERT_TRUE(parser
                  .parse_and_link("syntax = \"proto3\"; package z;"
                                  "message A { int32 x = 1; }"
                                  "service S { rpc Do (A) returns (A); }")
                  .is_ok());
  auto m = grpccompat::OffloadManifest::build(pool, arena::StdLibFlavor::kLibstdcpp);
  ASSERT_TRUE(m.is_ok());
  Bytes wire = m->serialize();
  std::mt19937_64 rng(kDefaultSeed);
  for (int i = 0; i < 2000; ++i) {
    Bytes bad = wire;
    size_t flips = 1 + rng() % 8;
    for (size_t j = 0; j < flips; ++j) {
      bad[rng() % bad.size()] = static_cast<std::byte>(rng() & 0xff);
    }
    (void)grpccompat::OffloadManifest::deserialize(ByteSpan(bad));  // no crash
  }
  for (size_t cut = 0; cut < wire.size(); cut += 3) {
    (void)grpccompat::OffloadManifest::deserialize(ByteSpan(wire.data(), cut));
  }
}

// ----------------------------------------------------------------- xrpc

TEST(Fuzz, XrpcServerSurvivesGarbageBytes) {
  auto server = xrpc::Server::start(
      xrpc::CallHandler([](xrpc::CallContext ctx) {
        ctx.respond(Code::kOk, ByteSpan(ctx.payload));
      }));
  ASSERT_TRUE(server.is_ok());

  std::mt19937_64 rng(kDefaultSeed);
  for (int i = 0; i < 30; ++i) {
    auto fd = xrpc::dial((*server)->port());
    ASSERT_TRUE(fd.is_ok());
    std::string junk = random_bytes(rng, 1 + rng() % 500);
    // Avoid declaring a huge frame that would make the server block
    // reading forever: clamp the first 4 bytes.
    if (junk.size() >= 4) {
      junk[0] = static_cast<char>(rng() % 64);
      junk[1] = junk[2] = junk[3] = 0;
    }
    (void)xrpc::write_all(*fd, junk.data(), junk.size());
    // Drop the connection; server's reader must clean up.
  }

  // The server must still serve a well-formed client.
  auto chan = xrpc::Channel::connect((*server)->port());
  ASSERT_TRUE(chan.is_ok());
  auto resp = (*chan)->call("any/Method", as_bytes_view("still alive"));
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(as_string_view(ByteSpan(*resp)), "still alive");
}

TEST(Fuzz, XrpcRejectsOversizeFrameDeclaration) {
  // Deliberately the legacy Dispatch shape: the deprecated Server::start
  // shim's only remaining first-party use (compile coverage until its
  // removal next PR).
  auto server = xrpc::Server::start(
      [](const std::string&, Bytes, trace::TraceContext, xrpc::Server::Responder respond) {
        respond(Code::kOk, {});
      });
  ASSERT_TRUE(server.is_ok());
  auto fd = xrpc::dial((*server)->port());
  ASSERT_TRUE(fd.is_ok());
  uint8_t huge[4];
  store_le<uint32_t>(huge, 0x7FFFFFFF);  // > kMaxFrameBody
  ASSERT_TRUE(xrpc::write_all(*fd, huge, 4).is_ok());
  // Server drops the connection instead of trying to allocate 2 GiB; a
  // fresh client still works.
  auto chan = xrpc::Channel::connect((*server)->port());
  ASSERT_TRUE(chan.is_ok());
  EXPECT_TRUE((*chan)->call("m", {}).is_ok());
}

}  // namespace
}  // namespace dpurpc
