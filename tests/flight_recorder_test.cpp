// Unit tests for the tail-forensics primitives: FlightRecorder (trigger
// logic, counter watches, bounded reservoir, JSON dump), ResourceSampler
// (probe rings, gauges, background thread), and the counter-track
// overload of TraceCollector::to_chrome_json. Everything here drives the
// components directly with hand-built span trees — no datapath, no
// Tracer; the end-to-end wiring is forensics_test.cpp's job.
#include "trace/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "metrics/metrics.hpp"
#include "trace/collector.hpp"
#include "trace/resource_sampler.hpp"

namespace {

using dpurpc::metrics::Registry;
using dpurpc::trace::CounterSeries;
using dpurpc::trace::FlightRecorder;
using dpurpc::trace::ResourceSampler;
using dpurpc::trace::Span;
using dpurpc::trace::SpanTree;
using dpurpc::trace::Stage;
using dpurpc::trace::TraceCollector;
using dpurpc::trace::TriggerKind;

// A minimal well-formed tree: a root (parent 0) spanning e2e_ns, plus one
// stage child covering most of it, so stage_sum_ns() tiles duration_ns().
SpanTree make_tree(uint64_t trace_id, uint64_t e2e_ns) {
  SpanTree t;
  t.trace_id = trace_id;
  Span root;
  root.span_id = 1;
  root.parent_span_id = 0;
  root.start_ns = 1'000;
  root.end_ns = 1'000 + e2e_ns;
  root.stage = Stage::kRequest;
  Span child;
  child.span_id = 2;
  child.parent_span_id = 1;
  child.start_ns = 1'100;
  child.end_ns = 1'100 + (e2e_ns * 9) / 10;
  child.stage = Stage::kWorkerDecode;
  t.spans = {root, child};
  return t;
}

// ------------------------------------------------------- latency trigger

TEST(FlightRecorder, LatencyTriggerWaitsForHistoryThenFires) {
  Registry reg;
  FlightRecorder::Options o;
  o.registry = &reg;
  o.min_history = 8;
  o.latency_factor = 3.0;
  FlightRecorder rec(o);

  // Below min_history nothing can fire, outlier or not — a cold quantile
  // is meaningless.
  for (uint64_t i = 0; i < 7; ++i) {
    EXPECT_FALSE(rec.offer(make_tree(100 + i, 1'000'000)));
  }
  EXPECT_EQ(rec.captured_total(), 0u);
  EXPECT_EQ(rec.rolling_threshold_s(), 0.0);

  // Build history past the floor; the rolling p99 of a 1ms population puts
  // the threshold around 3× that.
  for (uint64_t i = 0; i < 60; ++i) {
    rec.offer(make_tree(200 + i, 1'000'000));
  }
  double thr = rec.rolling_threshold_s();
  EXPECT_GT(thr, 0.0);
  EXPECT_LT(thr, 0.1);

  // A 100ms outlier is far above any 3× p99 of the 1ms history.
  EXPECT_TRUE(rec.offer(make_tree(999, 100'000'000)));
  EXPECT_EQ(rec.captured_total(), 1u);
  EXPECT_EQ(rec.trigger_total(TriggerKind::kLatency), 1u);
  ASSERT_EQ(rec.exemplars().size(), 1u);
  const auto& ex = rec.exemplars()[0];
  EXPECT_EQ(ex.trace_id, 999u);
  EXPECT_EQ(ex.trigger, TriggerKind::kLatency);
  EXPECT_EQ(ex.e2e_ns, 100'000'000u);
  EXPECT_GT(ex.threshold_s, 0.0);
  // The capture copies the whole tree, stage children included.
  EXPECT_EQ(ex.tree.spans.size(), 2u);
}

TEST(FlightRecorder, SlowBurstDoesNotMaskItself) {
  // should_capture checks BEFORE the observation feeds the rolling
  // histogram, so a burst of equally-slow requests is captured at least
  // at its front — the burst can't raise the threshold ahead of itself.
  Registry reg;
  FlightRecorder::Options o;
  o.registry = &reg;
  o.min_history = 8;
  o.latency_factor = 2.0;
  FlightRecorder rec(o);
  for (uint64_t i = 0; i < 32; ++i) rec.offer(make_tree(i, 1'000'000));
  uint64_t first_burst_captures = 0;
  for (uint64_t i = 0; i < 4; ++i) {
    if (rec.offer(make_tree(500 + i, 50'000'000))) ++first_burst_captures;
  }
  EXPECT_GE(first_burst_captures, 1u);
}

// -------------------------------------------------------- counter watches

TEST(FlightRecorder, WatchPrimesThenArmsWindowOnIncrease) {
  Registry reg;
  FlightRecorder::Options o;
  o.registry = &reg;
  o.anomaly_window = 2;
  FlightRecorder rec(o);

  std::atomic<uint64_t> drops{7};  // nonzero start: priming must not fire
  rec.watch_counter(TriggerKind::kDrop, "test_drops_total",
                    [&] { return drops.load(); });

  // First poll baselines; no window opens off the initial value.
  rec.poll_watches();
  EXPECT_FALSE(rec.offer(make_tree(1, 1'000)));

  // An increase arms the window: the next `anomaly_window` trees are kept
  // regardless of latency, attributed to the watch's kind, threshold 0.
  drops.store(9);
  rec.poll_watches();
  EXPECT_TRUE(rec.offer(make_tree(2, 1'000)));
  EXPECT_TRUE(rec.offer(make_tree(3, 1'000)));
  EXPECT_FALSE(rec.offer(make_tree(4, 1'000)));  // window exhausted
  EXPECT_EQ(rec.trigger_total(TriggerKind::kDrop), 2u);
  ASSERT_GE(rec.exemplars().size(), 2u);
  EXPECT_EQ(rec.exemplars()[0].trigger, TriggerKind::kDrop);
  EXPECT_EQ(rec.exemplars()[0].threshold_s, 0.0);

  // Steady counter → no new window.
  rec.poll_watches();
  EXPECT_FALSE(rec.offer(make_tree(5, 1'000)));
}

TEST(FlightRecorder, ManualArmOpensOneWindow) {
  Registry reg;
  FlightRecorder::Options o;
  o.registry = &reg;
  o.anomaly_window = 1;
  FlightRecorder rec(o);
  rec.arm(TriggerKind::kManual);
  EXPECT_TRUE(rec.offer(make_tree(11, 1'000)));
  EXPECT_FALSE(rec.offer(make_tree(12, 1'000)));
  EXPECT_EQ(rec.trigger_total(TriggerKind::kManual), 1u);
}

// ----------------------------------------------------- bounded reservoir

TEST(FlightRecorder, ReservoirIsBoundedRing) {
  Registry reg;
  FlightRecorder::Options o;
  o.registry = &reg;
  o.reservoir_capacity = 4;
  o.anomaly_window = 100;  // capture everything offered
  FlightRecorder rec(o);
  rec.arm(TriggerKind::kManual);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(rec.offer(make_tree(1000 + i, 1'000)));
  }
  EXPECT_EQ(rec.captured_total(), 10u);
  EXPECT_EQ(rec.exemplars().size(), 4u);  // oldest overwritten, never grows
  // The survivors are from the most recent captures.
  for (const auto& ex : rec.exemplars()) {
    EXPECT_GE(ex.trace_id, 1006u);
  }
}

// ------------------------------------------------------------- JSON dump

TEST(FlightRecorder, ToJsonCarriesTriggerAndTraceId) {
  Registry reg;
  FlightRecorder::Options o;
  o.registry = &reg;
  o.anomaly_window = 1;
  FlightRecorder rec(o);
  rec.arm(TriggerKind::kManual);
  rec.offer(make_tree(0xabcdef0123456789ull, 2'000'000));
  std::string j = rec.to_json();
  EXPECT_NE(j.find("\"exemplars\""), std::string::npos);
  EXPECT_NE(j.find("abcdef0123456789"), std::string::npos);
  EXPECT_NE(j.find("manual"), std::string::npos);
  EXPECT_NE(j.find("worker_decode"), std::string::npos);
}

// --------------------------------------------------------------- sampler

TEST(ResourceSampler, SampleOnceFillsRingsAndGauges) {
  Registry reg;
  ResourceSampler::Options o;
  o.registry = &reg;
  o.capacity = 8;
  ResourceSampler sampler(o);
  double depth = 3.0;
  sampler.add_probe("lane0_ring_depth", [&] { return depth; });
  sampler.add_probe("worker_busy", [] { return 0.5; });
  EXPECT_EQ(sampler.probe_count(), 2u);

  sampler.sample_once();
  depth = 5.0;
  sampler.sample_once();
  EXPECT_EQ(sampler.samples_taken(), 2u);

  auto series = sampler.series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].name, "lane0_ring_depth");
  ASSERT_EQ(series[0].points.size(), 2u);
  EXPECT_EQ(series[0].points[0].second, 3.0);
  EXPECT_EQ(series[0].points[1].second, 5.0);
  // Timestamps are monotone within a ring.
  EXPECT_GE(series[0].points[1].first, series[0].points[0].first);

  // The live gauges mirror the most recent sample, labeled by probe.
  std::string text = reg.expose_text();
  EXPECT_NE(text.find("dpurpc_resource_occupancy{probe=\"lane0_ring_depth\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("dpurpc_resource_occupancy{probe=\"worker_busy\"} 0.5"),
            std::string::npos);
}

TEST(ResourceSampler, RingOverwritesOldestBeyondCapacity) {
  Registry reg;
  ResourceSampler::Options o;
  o.registry = &reg;
  o.capacity = 4;
  ResourceSampler sampler(o);
  double v = 0;
  sampler.add_probe("p", [&] { return v; });
  for (int i = 0; i < 10; ++i) {
    v = i;
    sampler.sample_once();
  }
  auto series = sampler.series();
  ASSERT_EQ(series.size(), 1u);
  ASSERT_EQ(series[0].points.size(), 4u);
  // Oldest-first view of the last 4 samples: 6, 7, 8, 9.
  EXPECT_EQ(series[0].points.front().second, 6.0);
  EXPECT_EQ(series[0].points.back().second, 9.0);
}

TEST(ResourceSampler, BackgroundThreadSamples) {
  Registry reg;
  ResourceSampler::Options o;
  o.registry = &reg;
  o.period_ns = 1'000'000;  // 1ms
  ResourceSampler sampler(o);
  sampler.add_probe("p", [] { return 1.0; });
  sampler.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  sampler.stop();
  EXPECT_GE(sampler.samples_taken(), 2u);
  uint64_t after = sampler.samples_taken();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(sampler.samples_taken(), after);  // stop() really stopped it
}

// ------------------------------------------------- counter-track export

TEST(ChromeExport, CounterSeriesBecomeCounterTracks) {
  std::vector<SpanTree> trees = {make_tree(42, 5'000)};
  std::vector<Span> globals;
  CounterSeries cs;
  cs.name = "lane0_ring_depth";
  cs.points = {{2'000, 1.0}, {4'000, 3.0}};
  std::string j = TraceCollector::to_chrome_json(trees, globals, {cs});
  EXPECT_NE(j.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(j.find("\"cat\":\"resource\""), std::string::npos);
  EXPECT_NE(j.find("lane0_ring_depth"), std::string::npos);
  // Span tracks still present alongside.
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
}

TEST(ChromeExport, EmptyCountersMatchesTwoArgOverloadExactly) {
  std::vector<SpanTree> trees = {make_tree(7, 1'000), make_tree(8, 2'000)};
  std::vector<Span> globals;
  EXPECT_EQ(TraceCollector::to_chrome_json(trees, globals, {}),
            TraceCollector::to_chrome_json(trees, globals));
}

TEST(ChromeExport, CountersOnlyIsValidJsonShape) {
  // No spans at all: the comma logic must still produce a well-formed
  // array (single shared `first` flag across spans -> globals -> counters).
  CounterSeries cs;
  cs.name = "depth";
  cs.points = {{1'000, 2.0}};
  std::string j = TraceCollector::to_chrome_json({}, {}, {cs});
  EXPECT_EQ(j.find(",["), std::string::npos);
  EXPECT_EQ(j.find("[,"), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"C\""), std::string::npos);
}

}  // namespace
