// Unit + property tests for the wire primitives: varint, zigzag, tags,
// coded streams, and UTF-8 validation.
#include <gtest/gtest.h>

#include <random>

#include "common/rng.hpp"
#include "wire/coded_stream.hpp"
#include "wire/utf8.hpp"
#include "wire/varint.hpp"
#include "wire/varint_batch.hpp"
#include "wire/wire_format.hpp"

namespace dpurpc::wire {
namespace {

// ---------------------------------------------------------------- varint

TEST(Varint, SizeBoundaries) {
  EXPECT_EQ(varint_size(0), 1u);
  EXPECT_EQ(varint_size(127), 1u);
  EXPECT_EQ(varint_size(128), 2u);
  EXPECT_EQ(varint_size((1ull << 14) - 1), 2u);
  EXPECT_EQ(varint_size(1ull << 14), 3u);
  EXPECT_EQ(varint_size((1ull << 28) - 1), 4u);
  EXPECT_EQ(varint_size(1ull << 28), 5u);
  EXPECT_EQ(varint_size(UINT64_MAX), 10u);
}

TEST(Varint, EncodeKnownVectors) {
  uint8_t buf[10];
  uint8_t* end = encode_varint(buf, 300);
  ASSERT_EQ(end - buf, 2);
  EXPECT_EQ(buf[0], 0xAC);  // protobuf docs example: 300 = AC 02
  EXPECT_EQ(buf[1], 0x02);
}

TEST(Varint, DecodeRejectsTruncated) {
  uint8_t buf[2] = {0x80, 0x80};  // continuation bits never end
  auto r = decode_varint(buf, buf + 2);
  EXPECT_FALSE(r.ok);
}

TEST(Varint, DecodeRejectsOverlong) {
  // 11 bytes of continuation: longer than any valid varint.
  uint8_t buf[11];
  for (auto& b : buf) b = 0x80;
  buf[10] = 0x01;
  auto r = decode_varint(buf, buf + 11);
  EXPECT_FALSE(r.ok);
}

TEST(Varint, DecodeRejectsOverflowInTenthByte) {
  // 10-byte encoding whose last byte pushes past 64 bits.
  uint8_t buf[10];
  for (int i = 0; i < 9; ++i) buf[i] = 0xFF;
  buf[9] = 0x02;  // bit 64+ set
  auto r = decode_varint(buf, buf + 10);
  EXPECT_FALSE(r.ok);
}

TEST(Varint, DecodeMaxU64) {
  uint8_t buf[10];
  uint8_t* end = encode_varint(buf, UINT64_MAX);
  ASSERT_EQ(end - buf, 10);
  auto r = decode_varint(buf, end);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, UINT64_MAX);
}

TEST(Varint, EmptyInput) {
  uint8_t buf[1];
  EXPECT_FALSE(decode_varint(buf, buf).ok);
}

// Property: round-trip over every byte-length class and random values.
class VarintRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(VarintRoundTrip, EncodeDecodeIdentity) {
  int len = GetParam();
  std::mt19937_64 rng(dpurpc::kDefaultSeed + len);
  uint64_t lo = len == 1 ? 0 : 1ull << (7 * (len - 1));
  uint64_t hi = len == 10 ? UINT64_MAX : (1ull << (7 * len)) - 1;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = lo + rng() % (hi - lo + 1);
    uint8_t buf[kMaxVarint64Bytes];
    uint8_t* end = encode_varint(buf, v);
    ASSERT_EQ(static_cast<size_t>(end - buf), varint_size(v));
    ASSERT_EQ(varint_size(v), static_cast<size_t>(len));
    auto r = decode_varint(buf, end);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.value, v);
    EXPECT_EQ(r.next, end);
  }
}

INSTANTIATE_TEST_SUITE_P(AllByteLengths, VarintRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(Varint, TruncationAtEveryPrefixFails) {
  // Every strict prefix of a valid encoding must fail cleanly — for every
  // encoded length class, not just the long ones.
  for (int len = 1; len <= 10; ++len) {
    uint64_t v = len == 1 ? 1 : 1ull << (7 * (len - 1));
    if (len == 10) v = UINT64_MAX;
    uint8_t buf[kMaxVarint64Bytes];
    uint8_t* end = encode_varint(buf, v);
    ASSERT_EQ(end - buf, len);
    for (int cut = 0; cut < len; ++cut) {
      EXPECT_FALSE(decode_varint(buf, buf + cut).ok)
          << "len " << len << " cut " << cut;
    }
    auto full = decode_varint(buf, end);
    ASSERT_TRUE(full.ok);
    EXPECT_EQ(full.value, v);
  }
}

TEST(Varint, TenthByteOverflowBoundary) {
  // 10th byte may only contribute bit 63: value 0x01 is the last legal
  // payload; every larger payload overflows uint64.
  uint8_t buf[10];
  for (int i = 0; i < 9; ++i) buf[i] = 0xFF;
  buf[9] = 0x01;
  auto ok = decode_varint(buf, buf + 10);
  ASSERT_TRUE(ok.ok);
  EXPECT_EQ(ok.value, UINT64_MAX);
  for (uint8_t tenth : {0x02, 0x03, 0x7F}) {
    buf[9] = tenth;
    EXPECT_FALSE(decode_varint(buf, buf + 10).ok)
        << "tenth byte " << int(tenth);
  }
}

// -------------------------------------------------------- batch decoding

TEST(VarintBatch, AllOneByteRun) {
  // The SWAR fast path: 8-byte word probe sees no continuation bits.
  uint8_t buf[64];
  for (int i = 0; i < 64; ++i) buf[i] = static_cast<uint8_t>(i);
  uint64_t out[64];
  const uint8_t* next = decode_varint_batch64(buf, buf + 64, 64, out);
  ASSERT_EQ(next, buf + 64);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[i], static_cast<uint64_t>(i));
}

TEST(VarintBatch, TwoByteFastPath) {
  uint8_t buf[2 * 16];
  uint8_t* p = buf;
  for (int i = 0; i < 16; ++i) p = encode_varint(p, 128 + i * 100);
  uint32_t out[16];
  const uint8_t* next = decode_varint_batch32(buf, p, 16, out);
  ASSERT_EQ(next, p);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[i], 128u + i * 100);
}

TEST(VarintBatch, MalformedRunReturnsNull) {
  uint8_t buf[4] = {0x80, 0x80, 0x80, 0x80};  // never terminates
  uint64_t out[1];
  EXPECT_EQ(decode_varint_batch64(buf, buf + 4, 1, out), nullptr);
}

TEST(VarintBatch, XformApplied) {
  uint8_t buf[kMaxVarint64Bytes];
  uint8_t* end = encode_varint(buf, zigzag_encode64(-123456789));
  int64_t out[1];
  const uint8_t* next = decode_varint_run(
      buf, end, 1, out, [](uint64_t v) { return zigzag_decode64(v); });
  ASSERT_EQ(next, end);
  EXPECT_EQ(out[0], -123456789);
}

TEST(VarintBatch, RandomizedMatchesScalarDecoder) {
  // Differential test: random mixes of every byte-length class (skewed
  // toward short encodings, like real workloads) must decode identically
  // through the batch path and the scalar path.
  std::mt19937_64 rng(dpurpc::kDefaultSeed ^ 0xba7c);
  for (int round = 0; round < 200; ++round) {
    const size_t count = 1 + rng() % 700;
    std::vector<uint64_t> values(count);
    std::vector<uint8_t> buf(count * kMaxVarint64Bytes);
    uint8_t* p = buf.data();
    for (size_t i = 0; i < count; ++i) {
      int bits = static_cast<int>(rng() % 64) + 1;
      values[i] = rng() >> (64 - bits);
      p = encode_varint(p, values[i]);
    }
    std::vector<uint64_t> out(count);
    const uint8_t* next = decode_varint_batch64(buf.data(), p, count, out.data());
    ASSERT_EQ(next, p) << "round " << round;
    ASSERT_EQ(out, values) << "round " << round;

    // And through the 32-bit truncating wrapper.
    std::vector<uint32_t> out32(count);
    const uint8_t* next32 =
        decode_varint_batch32(buf.data(), p, count, out32.data());
    ASSERT_EQ(next32, p);
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ(out32[i], static_cast<uint32_t>(values[i])) << i;
    }
  }
}

TEST(VarintBatch, TruncatedTailReturnsNull) {
  // A run whose final element is cut off mid-varint must fail, never read
  // past `end`.
  std::mt19937_64 rng(dpurpc::kDefaultSeed + 77);
  uint8_t buf[32];
  uint8_t* p = buf;
  for (int i = 0; i < 3; ++i) p = encode_varint(p, (1ull << 40) + rng() % 1000);
  uint64_t out[3];
  for (const uint8_t* cut = p - 1; cut > buf; --cut) {
    // Count how many whole varints remain before `cut`; asking for one
    // more than that must fail.
    uint32_t whole = 0;
    const uint8_t* q = buf;
    while (q < cut) {
      auto r = decode_varint(q, cut);
      if (!r.ok) break;
      q = r.next;
      ++whole;
    }
    if (whole >= 3) continue;
    EXPECT_EQ(decode_varint_batch64(buf, cut, whole + 1, out), nullptr)
        << "cut at " << (cut - buf);
  }
}

TEST(VarintBatch, EncodeRunMatchesScalarEncoder) {
  // Differential test for the emit direction: random mixes of every
  // byte-length class must produce the exact bytes the scalar encoder
  // does, through both the BMI2 and the exactly-sized-buffer tail paths.
  std::mt19937_64 rng(dpurpc::kDefaultSeed ^ 0xe4c0);
  for (int round = 0; round < 200; ++round) {
    const size_t count = 1 + rng() % 700;
    std::vector<uint64_t> values(count);
    std::vector<uint8_t> expect(count * kMaxVarint64Bytes);
    uint8_t* ep = expect.data();
    for (size_t i = 0; i < count; ++i) {
      int bits = static_cast<int>(rng() % 64) + 1;
      values[i] = rng() >> (64 - bits);
      ep = encode_varint(ep, values[i]);
    }
    const size_t wire_len = static_cast<size_t>(ep - expect.data());
    EXPECT_EQ(varint_size_run(values.data(), static_cast<uint32_t>(count)),
              wire_len);

    // Exactly-sized destination: the encoder must not touch a byte past
    // the end even when its 8-byte store fast path is in play.
    std::vector<uint8_t> got(wire_len);
    uint8_t* gp = encode_varint_run(got.data(), got.data() + wire_len,
                                    values.data(), static_cast<uint32_t>(count));
    ASSERT_EQ(gp, got.data() + wire_len) << "round " << round;
    ASSERT_EQ(std::memcmp(got.data(), expect.data(), wire_len), 0)
        << "round " << round;

    // Slack destination (the common case inside a larger message body).
    // Bytes between the returned pointer and dst_end are scratch (the
    // 8-byte fast path may scribble there; sequential emission overwrites
    // them), but nothing at or past dst_end may ever be touched.
    std::vector<uint8_t> slack(wire_len + 32, 0xCD);
    uint8_t* dst_end = slack.data() + wire_len + 16;
    gp = encode_varint_run(slack.data(), dst_end, values.data(),
                           static_cast<uint32_t>(count));
    ASSERT_EQ(gp, slack.data() + wire_len);
    ASSERT_EQ(std::memcmp(slack.data(), expect.data(), wire_len), 0);
    for (size_t i = wire_len + 16; i < slack.size(); ++i) {
      ASSERT_EQ(slack[i], 0xCD) << "encoder wrote past dst_end at +" << i;
    }
  }
}

TEST(VarintBatch, EncodeRunEdgeValues) {
  // Every length-class boundary in one run, incl. the 10-byte fallback.
  const uint64_t edges[] = {0,
                            1,
                            127,
                            128,
                            16383,
                            16384,
                            (1ull << 28) - 1,
                            1ull << 28,
                            (1ull << 56) - 1,
                            1ull << 56,
                            UINT64_MAX};
  constexpr uint32_t n = sizeof(edges) / sizeof(edges[0]);
  uint8_t expect[n * kMaxVarint64Bytes];
  uint8_t* ep = expect;
  for (uint64_t v : edges) ep = encode_varint(ep, v);
  const size_t wire_len = static_cast<size_t>(ep - expect);

  std::vector<uint8_t> got(wire_len);
  uint8_t* gp = encode_varint_run(got.data(), got.data() + wire_len, edges, n);
  ASSERT_EQ(gp, got.data() + wire_len);
  EXPECT_EQ(std::memcmp(got.data(), expect, wire_len), 0);
}

// ---------------------------------------------------------------- zigzag

TEST(ZigZag, KnownVectors) {
  EXPECT_EQ(zigzag_encode32(0), 0u);
  EXPECT_EQ(zigzag_encode32(-1), 1u);
  EXPECT_EQ(zigzag_encode32(1), 2u);
  EXPECT_EQ(zigzag_encode32(-2), 3u);
  EXPECT_EQ(zigzag_encode32(INT32_MAX), 0xFFFFFFFEu);
  EXPECT_EQ(zigzag_encode32(INT32_MIN), 0xFFFFFFFFu);
}

class ZigZagRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(ZigZagRoundTrip, Identity64) {
  int64_t v = GetParam();
  EXPECT_EQ(zigzag_decode64(zigzag_encode64(v)), v);
}
TEST_P(ZigZagRoundTrip, Identity32) {
  auto v = static_cast<int32_t>(GetParam());
  EXPECT_EQ(zigzag_decode32(zigzag_encode32(v)), v);
}

INSTANTIATE_TEST_SUITE_P(Extremes, ZigZagRoundTrip,
                         ::testing::Values(int64_t{0}, int64_t{1}, int64_t{-1},
                                           int64_t{INT32_MAX}, int64_t{INT32_MIN},
                                           INT64_MAX, INT64_MIN, int64_t{42},
                                           int64_t{-123456789}));

// ------------------------------------------------------------------ tags

TEST(Tags, MakeAndSplit) {
  uint32_t tag = make_tag(5, WireType::kLengthDelimited);
  EXPECT_EQ(tag, 0x2Au);  // 5<<3 | 2
  EXPECT_EQ(tag_field_number(tag), 5u);
  EXPECT_EQ(tag_wire_type(tag), WireType::kLengthDelimited);
}

TEST(Tags, ValidWireTypes) {
  EXPECT_TRUE(is_valid_wire_type(0));
  EXPECT_TRUE(is_valid_wire_type(1));
  EXPECT_TRUE(is_valid_wire_type(2));
  EXPECT_TRUE(is_valid_wire_type(5));
  EXPECT_FALSE(is_valid_wire_type(3));  // group start (unsupported)
  EXPECT_FALSE(is_valid_wire_type(4));  // group end
  EXPECT_FALSE(is_valid_wire_type(6));
  EXPECT_FALSE(is_valid_wire_type(7));
}

// --------------------------------------------------------- coded streams

TEST(CodedStream, WriterReaderRoundTrip) {
  dpurpc::Bytes out;
  Writer w(out);
  w.write_varint(300);
  w.write_fixed32(0xAABBCCDD);
  w.write_fixed64(0x1122334455667788ull);
  w.write_length_delimited("hello");

  Reader r{dpurpc::ByteSpan(out)};
  EXPECT_EQ(*r.read_varint(), 300u);
  EXPECT_EQ(*r.read_fixed32(), 0xAABBCCDDu);
  EXPECT_EQ(*r.read_fixed64(), 0x1122334455667788ull);
  EXPECT_EQ(*r.read_length_delimited(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(CodedStream, TruncatedFixedFails) {
  uint8_t buf[3] = {1, 2, 3};
  Reader r(buf, buf + 3);
  EXPECT_EQ(r.read_fixed32().status().code(), dpurpc::Code::kDataLoss);
}

TEST(CodedStream, LengthDelimitedOverrunFails) {
  dpurpc::Bytes out;
  Writer w(out);
  w.write_varint(100);  // claims 100 bytes, none follow
  Reader r{dpurpc::ByteSpan(out)};
  EXPECT_EQ(r.read_length_delimited().status().code(), dpurpc::Code::kDataLoss);
}

TEST(CodedStream, ReadTagValidates) {
  {
    dpurpc::Bytes out;
    Writer w(out);
    w.write_varint(make_tag(0, WireType::kVarint));  // field number 0
    Reader r{dpurpc::ByteSpan(out)};
    EXPECT_FALSE(r.read_tag().is_ok());
  }
  {
    dpurpc::Bytes out;
    Writer w(out);
    w.write_varint((1 << 3) | 3);  // wire type 3 (group)
    Reader r{dpurpc::ByteSpan(out)};
    EXPECT_FALSE(r.read_tag().is_ok());
  }
}

TEST(CodedStream, SkipValueAllTypes) {
  dpurpc::Bytes out;
  Writer w(out);
  w.write_varint(12345);
  w.write_fixed64(1);
  w.write_length_delimited("abc");
  w.write_fixed32(2);
  w.write_varint(99);  // sentinel

  Reader r{dpurpc::ByteSpan(out)};
  EXPECT_TRUE(r.skip_value(WireType::kVarint).is_ok());
  EXPECT_TRUE(r.skip_value(WireType::kFixed64).is_ok());
  EXPECT_TRUE(r.skip_value(WireType::kLengthDelimited).is_ok());
  EXPECT_TRUE(r.skip_value(WireType::kFixed32).is_ok());
  EXPECT_EQ(*r.read_varint(), 99u);
}

// ------------------------------------------------------------------ utf8

TEST(Utf8, AcceptsAscii) {
  EXPECT_TRUE(validate_utf8("hello, world! 123"));
  EXPECT_TRUE(validate_utf8(""));
}

TEST(Utf8, AcceptsMultibyte) {
  EXPECT_TRUE(validate_utf8("caf\xc3\xa9"));                  // é (2-byte)
  EXPECT_TRUE(validate_utf8("\xe6\x97\xa5\xe6\x9c\xac"));     // 日本 (3-byte)
  EXPECT_TRUE(validate_utf8("\xf0\x9f\x98\x80"));             // emoji (4-byte)
}

TEST(Utf8, RejectsLoneContinuation) { EXPECT_FALSE(validate_utf8("\x80")); }

TEST(Utf8, RejectsOverlong) {
  EXPECT_FALSE(validate_utf8("\xc0\xaf"));          // overlong '/'
  EXPECT_FALSE(validate_utf8("\xe0\x80\xaf"));      // overlong 3-byte
  EXPECT_FALSE(validate_utf8("\xf0\x80\x80\xaf"));  // overlong 4-byte
}

TEST(Utf8, RejectsSurrogates) {
  EXPECT_FALSE(validate_utf8("\xed\xa0\x80"));  // U+D800
  EXPECT_FALSE(validate_utf8("\xed\xbf\xbf"));  // U+DFFF
  EXPECT_TRUE(validate_utf8("\xed\x9f\xbf"));   // U+D7FF is fine
}

TEST(Utf8, RejectsAboveMaxCodepoint) {
  EXPECT_FALSE(validate_utf8("\xf4\x90\x80\x80"));  // U+110000
  EXPECT_TRUE(validate_utf8("\xf4\x8f\xbf\xbf"));   // U+10FFFF is fine
}

TEST(Utf8, RejectsTruncatedSequences) {
  EXPECT_FALSE(validate_utf8("\xc3"));
  EXPECT_FALSE(validate_utf8("\xe6\x97"));
  EXPECT_FALSE(validate_utf8("\xf0\x9f\x98"));
}

TEST(Utf8, RejectsF5AndAboveLeads) {
  EXPECT_FALSE(validate_utf8("\xf5\x80\x80\x80"));
  EXPECT_FALSE(validate_utf8("\xff"));
}

// Property: SWAR validator agrees with the scalar DFA on random inputs,
// including strings with ASCII runs straddling the 8-byte boundary.
TEST(Utf8, SwarMatchesScalarOnRandomBytes) {
  std::mt19937_64 rng(dpurpc::kDefaultSeed);
  for (int i = 0; i < 3000; ++i) {
    size_t n = rng() % 64;
    std::string s = dpurpc::random_bytes(rng, n);
    const auto* p = reinterpret_cast<const uint8_t*>(s.data());
    EXPECT_EQ(validate_utf8(p, n), validate_utf8_scalar(p, n)) << dpurpc::hex_dump(dpurpc::as_bytes_view(s));
  }
}

TEST(Utf8, SwarMatchesScalarOnValidMixed) {
  std::mt19937_64 rng(dpurpc::kDefaultSeed);
  const char* pieces[] = {"a", "bcdefghij", "\xc3\xa9", "\xe6\x97\xa5",
                          "\xf0\x9f\x98\x80", "0123456789abcdef"};
  for (int i = 0; i < 2000; ++i) {
    std::string s;
    int n_pieces = 1 + static_cast<int>(rng() % 8);
    for (int j = 0; j < n_pieces; ++j) s += pieces[rng() % std::size(pieces)];
    EXPECT_TRUE(validate_utf8(s));
    const auto* p = reinterpret_cast<const uint8_t*>(s.data());
    EXPECT_TRUE(validate_utf8_scalar(p, s.size()));
  }
}

}  // namespace
}  // namespace dpurpc::wire
