// Tests for the decode pool (DESIGN.md §3.14): deserialization sharded
// across the simulated DPU core pool.
//
// The load-bearing property is relocation parity: a worker decodes into a
// private scratch slice with a zero-delta translator, the consumer
// memcpys the slice elsewhere and calls ArenaDeserializer::relocate() —
// and the result must be indistinguishable from having deserialized
// straight into the destination. The oracle is the object serializer:
// both objects must round-trip to byte-identical canonical wire.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <random>
#include <vector>

#include "adt/arena_deserializer.hpp"
#include "adt/object_codec.hpp"
#include "common/rng.hpp"
#include "dpu/decode_pool.hpp"
#include "proto/dynamic_message.hpp"
#include "proto/schema_parser.hpp"

namespace dpurpc::dpu {
namespace {

using arena::AddressTranslator;
using arena::OwningArena;
using arena::StdLibFlavor;
using proto::DynamicMessage;
using proto::WireCodec;

constexpr std::string_view kSchema = R"(
syntax = "proto3";
package dp;
message Leaf { int32 a = 1; string s = 2; repeated uint32 packed = 3; }
message Node {
  Leaf head = 1;
  repeated Leaf items = 2;
  repeated string names = 3;
  string label = 4;
  uint64 id = 5;
}
)";

class DecodePoolFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    proto::SchemaParser parser(pool_);
    ASSERT_TRUE(parser.parse_and_link(kSchema).is_ok());
    adt::DescriptorAdtBuilder builder(StdLibFlavor::kLibstdcpp);
    leaf_ = *builder.add_message(pool_.find_message("dp.Leaf"));
    node_ = *builder.add_message(pool_.find_message("dp.Node"));
    adt_ = std::move(builder).take();
    adt_.set_fingerprint(adt::AbiFingerprint::current(StdLibFlavor::kLibstdcpp));
    deser_ = std::make_unique<adt::ArenaDeserializer>(&adt_);
  }

  Bytes node_wire(uint64_t seed) const {
    std::mt19937_64 rng(seed);
    const auto* node = pool_.find_message("dp.Node");
    const auto* leaf = pool_.find_message("dp.Leaf");
    DynamicMessage m(node);
    auto fill = [&](DynamicMessage* l, size_t strlen_hint) {
      l->set_int64(leaf->field_by_name("a"), static_cast<int32_t>(rng()));
      // Mix SSO-short and heap-long strings: both relocation forms.
      l->set_string(leaf->field_by_name("s"), random_ascii(rng, strlen_hint));
      for (int i = 0; i < 5; ++i)
        l->add_uint64(leaf->field_by_name("packed"), rng() % 1000);
    };
    fill(m.mutable_message(node->field_by_name("head")), 40);
    for (int i = 0; i < 3; ++i)
      fill(m.add_message(node->field_by_name("items")), i % 2 == 0 ? 6 : 64);
    m.add_string(node->field_by_name("names"), "tiny");
    m.add_string(node->field_by_name("names"),
                 std::string(100, 'x') + std::to_string(rng()));
    m.set_string(node->field_by_name("label"), "label");
    m.set_uint64(node->field_by_name("id"), rng());
    return WireCodec::serialize(m);
  }

  /// Canonical wire via the direct (non-pool) path: deserialize into a
  /// local arena, re-serialize.
  Bytes oracle_roundtrip(uint32_t class_index, const Bytes& wire) {
    OwningArena arena(1 << 20);
    auto obj = deser_->deserialize(class_index, ByteSpan(wire), arena, {});
    EXPECT_TRUE(obj.is_ok()) << obj.status().to_string();
    adt::ObjectSerializer ser(&adt_);
    Bytes out;
    EXPECT_TRUE(ser.serialize(adt::ObjectRef(class_index, *obj), out).is_ok());
    return out;
  }

  proto::DescriptorPool pool_;
  adt::Adt adt_;
  std::unique_ptr<adt::ArenaDeserializer> deser_;
  uint32_t leaf_ = 0, node_ = 0;
};

/// Drain helper: pop from every lane until `n` results arrived.
std::vector<DecodeResult> drain(DecodePool& pool, size_t n) {
  std::vector<DecodeResult> out;
  while (out.size() < n) {
    for (size_t lane = 0; lane < pool.lane_count(); ++lane) {
      DecodeResult r;
      while (pool.try_pop_result(lane, r)) out.push_back(std::move(r));
    }
  }
  return out;
}

TEST_F(DecodePoolFixture, RelocatedDecodeMatchesSerializeOracle) {
  DecodePool::Options opts;
  opts.workers = 2;
  DecodePool pool(deser_.get(), /*lanes=*/2, opts);
  pool.start();

  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const Bytes wire = node_wire(seed);
    const Bytes expected = oracle_roundtrip(node_, wire);

    DecodeJob job;
    job.class_index = node_;
    job.cookie = seed;
    job.wire = wire;
    const size_t lane = seed % 2;
    ASSERT_TRUE(pool.submit(lane, job));
    DecodeResult r = std::move(drain(pool, 1)[0]);
    ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
    EXPECT_EQ(r.cookie, seed);
    ASSERT_GT(r.used, 0u);

    // Ship the slice the way the proxy does: memcpy to an 8-aligned
    // destination at a different address, then relocate. The +8 skew
    // keeps the copy off 64-byte alignment, so any pointer the decoder
    // failed to register would land visibly wrong.
    std::byte* raw = static_cast<std::byte*>(
        std::aligned_alloc(64, (r.used + 72 + 63) / 64 * 64));
    ASSERT_NE(raw, nullptr);
    std::byte* dst = raw + 8;
    std::memcpy(dst, r.slice.data(), r.used);
    const ptrdiff_t delta = dst - r.slice.data();
    adt::ArenaDeserializer::SliceRelocation rel;
    rel.old_begin = r.slice.data();
    rel.old_end = r.slice.data() + r.used;
    rel.move_delta = delta;
    rel.publish_delta = delta;  // local consumer: published == local
    deser_->relocate(node_, dst + r.obj_offset, rel);

    // Poison the original slice: the relocated tree must not reference it.
    std::memset(r.slice.data(), 0xAB, r.used);

    adt::ObjectSerializer ser(&adt_);
    Bytes relocated_wire;
    ASSERT_TRUE(
        ser.serialize(adt::ObjectRef(node_, dst + r.obj_offset), relocated_wire)
            .is_ok());
    EXPECT_EQ(relocated_wire, expected) << "seed " << seed;
    std::free(raw);
  }
  pool.stop();
}

TEST_F(DecodePoolFixture, PerWorkerCountersSumToTotalAcrossLanes) {
  constexpr size_t kLanes = 4;
  constexpr uint64_t kJobs = 400;
  DecodePool::Options opts;
  opts.workers = 3;  // uneven on purpose: lanes 3 (and stolen work) shift around
  DecodePool pool(deser_.get(), kLanes, opts);
  EXPECT_EQ(pool.worker_count(), 3u);
  EXPECT_EQ(pool.lane_count(), kLanes);
  pool.start();

  const Bytes wire = node_wire(42);
  uint64_t submitted = 0, completed = 0;
  while (completed < kJobs) {
    for (size_t lane = 0; lane < kLanes && submitted < kJobs; ++lane) {
      DecodeJob job;
      job.class_index = node_;
      job.cookie = submitted;
      job.wire = wire;
      if (pool.submit(lane, job)) ++submitted;
    }
    for (size_t lane = 0; lane < kLanes; ++lane) {
      DecodeResult r;
      while (pool.try_pop_result(lane, r)) {
        EXPECT_TRUE(r.status.is_ok());
        EXPECT_LT(r.worker, pool.worker_count());
        ++completed;
      }
    }
  }
  pool.stop();

  uint64_t sum = 0, bytes = 0;
  for (size_t w = 0; w < pool.worker_count(); ++w) {
    const auto stats = pool.worker_stats(w);
    sum += stats.jobs;
    bytes += stats.bytes_decoded;
    EXPECT_EQ(stats.failures, 0u) << "worker " << w;
  }
  EXPECT_EQ(sum, kJobs);
  EXPECT_EQ(pool.total_jobs(), kJobs);
  EXPECT_EQ(bytes, kJobs * wire.size());
}

TEST_F(DecodePoolFixture, MalformedPayloadYieldsFailureResultNotCrash) {
  DecodePool::Options opts;
  opts.workers = 1;
  DecodePool pool(deser_.get(), /*lanes=*/1, opts);
  pool.start();

  // Truncated length-delimited field: field 1 (head), declared length 200,
  // one byte of body.
  DecodeJob job;
  job.class_index = node_;
  job.cookie = 7;
  job.wire = Bytes{std::byte{0x0a}, std::byte{200}, std::byte{1}, std::byte{0x00}};
  ASSERT_TRUE(pool.submit(0, job));
  DecodeResult r = std::move(drain(pool, 1)[0]);
  EXPECT_FALSE(r.status.is_ok());
  EXPECT_EQ(r.cookie, 7u);
  pool.stop();
  EXPECT_EQ(pool.worker_stats(0).failures, 1u);
  EXPECT_EQ(pool.worker_stats(0).jobs, 1u);
}

TEST_F(DecodePoolFixture, StopWithQueuedJobsShutsDownCleanly) {
  DecodePool::Options opts;
  opts.workers = 1;
  opts.ring_capacity = 64;
  DecodePool pool(deser_.get(), /*lanes=*/2, opts);
  pool.start();

  const Bytes wire = node_wire(9);
  for (uint64_t i = 0; i < 32; ++i) {
    DecodeJob job;
    job.class_index = node_;
    job.cookie = i;
    job.wire = wire;
    (void)pool.submit(i % 2, job);  // full ring is fine here
  }
  // Immediate stop: queued jobs are dropped, nothing hangs or leaks (ASan
  // owns the leak half of this assertion).
  pool.stop();
  // After stop, submits are refused and the job survives for the caller.
  DecodeJob job;
  job.class_index = node_;
  job.cookie = 99;
  job.wire = wire;
  EXPECT_FALSE(pool.submit(0, job));
  EXPECT_EQ(job.wire, wire);
}

TEST_F(DecodePoolFixture, WorkerCountClampsAndEnvOverride) {
  {
    DecodePool::Options opts;
    opts.workers = 16;
    DecodePool pool(deser_.get(), /*lanes=*/2, opts);
    EXPECT_EQ(pool.worker_count(), 2u);  // never more workers than lanes
  }
  ::setenv("DPURPC_DPU_CORES", "3", 1);
  EXPECT_EQ(DeviceInfo::current().cores, 3);
  {
    DecodePool pool(deser_.get(), /*lanes=*/8);  // workers=0 → DeviceInfo
    EXPECT_EQ(pool.worker_count(), 3u);
  }
  ::unsetenv("DPURPC_DPU_CORES");
  EXPECT_EQ(DeviceInfo::current().cores, DeviceSpec::bluefield3().cores);
}

}  // namespace
}  // namespace dpurpc::dpu
