// Tests for the text-format parser: every field kind, syntax variations,
// error reporting, the print→parse round-trip property, and fuzz safety.
#include <gtest/gtest.h>

#include <random>

#include "common/rng.hpp"
#include "proto/schema_parser.hpp"
#include "proto/text_format.hpp"

namespace dpurpc::proto {
namespace {

constexpr std::string_view kSchema = R"(
syntax = "proto3";
package tf;
enum Kind { KIND_NONE = 0; KIND_A = 1; KIND_B = 5; }
message Leaf { string s = 1; int64 n = 2; }
message Root {
  int32 i = 1;
  uint64 u = 2;
  sint32 z = 3;
  bool b = 4;
  float f = 5;
  double d = 6;
  string name = 7;
  bytes raw = 8;
  Kind kind = 9;
  Leaf leaf = 10;
  repeated int32 xs = 11;
  repeated string tags = 12;
  repeated Leaf leaves = 13;
}
)";

class TextFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    SchemaParser parser(pool_);
    ASSERT_TRUE(parser.parse_and_link(kSchema).is_ok());
    root_ = pool_.find_message("tf.Root");
    leaf_ = pool_.find_message("tf.Leaf");
  }
  DescriptorPool pool_;
  const MessageDescriptor* root_ = nullptr;
  const MessageDescriptor* leaf_ = nullptr;
};

TEST_F(TextFixture, ParsesAllScalarKinds) {
  DynamicMessage m(root_);
  auto st = TextFormat::parse(R"(
i: -42
u: 18446744073709551615
z: -7
b: true
f: 1.5
d: -2.25e2
name: "hello \"world\"\n"
raw: "\x01\x02"
kind: KIND_B
)", m);
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_EQ(m.get_int64(root_->field_by_name("i")), -42);
  EXPECT_EQ(m.get_uint64(root_->field_by_name("u")), UINT64_MAX);
  EXPECT_EQ(m.get_int64(root_->field_by_name("z")), -7);
  EXPECT_EQ(m.get_uint64(root_->field_by_name("b")), 1u);
  EXPECT_FLOAT_EQ(m.get_float(root_->field_by_name("f")), 1.5f);
  EXPECT_DOUBLE_EQ(m.get_double(root_->field_by_name("d")), -225.0);
  EXPECT_EQ(m.get_string(root_->field_by_name("name")), "hello \"world\"\n");
  EXPECT_EQ(m.get_string(root_->field_by_name("raw")), std::string("\x01\x02", 2));
  EXPECT_EQ(m.get_uint64(root_->field_by_name("kind")), 5u);
}

TEST_F(TextFixture, EnumByNumberAndAdjacentStrings) {
  DynamicMessage m(root_);
  ASSERT_TRUE(TextFormat::parse("kind: 1 name: \"ab\" \"cd\"", m).is_ok());
  EXPECT_EQ(m.get_uint64(root_->field_by_name("kind")), 1u);
  EXPECT_EQ(m.get_string(root_->field_by_name("name")), "abcd");
}

TEST_F(TextFixture, NestedMessagesBothSyntaxes) {
  DynamicMessage a(root_), b(root_);
  ASSERT_TRUE(TextFormat::parse("leaf { s: \"x\" n: 3 }", a).is_ok());
  ASSERT_TRUE(TextFormat::parse("leaf: { s: \"x\" n: 3 }", b).is_ok());
  EXPECT_TRUE(a.equals(b));
  EXPECT_EQ(a.get_message(root_->field_by_name("leaf"))
                ->get_int64(leaf_->field_by_name("n")),
            3);
}

TEST_F(TextFixture, RepeatedByRepetitionAndList) {
  DynamicMessage a(root_), b(root_);
  ASSERT_TRUE(TextFormat::parse("xs: 1 xs: 2 xs: 3 tags: \"p\" tags: \"q\"", a).is_ok());
  ASSERT_TRUE(TextFormat::parse("xs: [1, 2, 3] tags: [\"p\", \"q\"]", b).is_ok());
  EXPECT_TRUE(a.equals(b));
  EXPECT_EQ(a.repeated_size(root_->field_by_name("xs")), 3u);
}

TEST_F(TextFixture, RepeatedMessages) {
  DynamicMessage m(root_);
  ASSERT_TRUE(TextFormat::parse(R"(
leaves { s: "one" }
leaves { s: "two" n: 2 }
)", m).is_ok());
  ASSERT_EQ(m.repeated_size(root_->field_by_name("leaves")), 2u);
  EXPECT_EQ(m.get_repeated_message(root_->field_by_name("leaves"), 1)
                ->get_string(leaf_->field_by_name("s")),
            "two");
}

TEST_F(TextFixture, CommentsAndSeparators) {
  DynamicMessage m(root_);
  ASSERT_TRUE(TextFormat::parse(R"(
# leading comment
i: 1,  # trailing comment
u: 2;
)", m).is_ok());
  EXPECT_EQ(m.get_int64(root_->field_by_name("i")), 1);
  EXPECT_EQ(m.get_uint64(root_->field_by_name("u")), 2u);
}

TEST_F(TextFixture, Errors) {
  DynamicMessage m(root_);
  EXPECT_FALSE(TextFormat::parse("nope: 1", m).is_ok());          // unknown field
  EXPECT_FALSE(TextFormat::parse("i 1", m).is_ok());              // missing colon
  EXPECT_FALSE(TextFormat::parse("i: abc", m).is_ok());           // bad int
  EXPECT_FALSE(TextFormat::parse("u: -5", m).is_ok());            // negative unsigned
  EXPECT_FALSE(TextFormat::parse("b: maybe", m).is_ok());         // bad bool
  EXPECT_FALSE(TextFormat::parse("kind: KIND_X", m).is_ok());     // unknown enum
  EXPECT_FALSE(TextFormat::parse("leaf { s: \"x\"", m).is_ok());  // missing brace
  EXPECT_FALSE(TextFormat::parse("name: \"unterminated", m).is_ok());
  EXPECT_FALSE(TextFormat::parse("xs: [1, 2", m).is_ok());        // open list
  EXPECT_FALSE(TextFormat::parse("name: \"\xff\xfe\"", m).is_ok());  // bad UTF-8
}

TEST_F(TextFixture, ErrorsMentionLineNumbers) {
  DynamicMessage m(root_);
  Status st = TextFormat::parse("i: 1\nu: 2\nbad: 3\n", m);
  ASSERT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("line 3"), std::string::npos) << st.to_string();
}

TEST_F(TextFixture, PrintParseRoundTrip) {
  std::mt19937_64 rng(kDefaultSeed);
  for (int iter = 0; iter < 100; ++iter) {
    DynamicMessage m(root_);
    m.set_int64(root_->field_by_name("i"), static_cast<int32_t>(rng()));
    m.set_uint64(root_->field_by_name("u"), rng());
    m.set_uint64(root_->field_by_name("b"), rng() % 2);
    m.set_double(root_->field_by_name("d"), static_cast<double>(rng() % 10000) / 7);
    m.set_string(root_->field_by_name("name"), random_ascii(rng, rng() % 30));
    m.set_uint64(root_->field_by_name("kind"), (rng() % 2) ? 1 : 5);
    auto* lf = m.mutable_message(root_->field_by_name("leaf"));
    lf->set_string(leaf_->field_by_name("s"), random_ascii(rng, rng() % 20));
    lf->set_int64(leaf_->field_by_name("n"), static_cast<int64_t>(rng()));
    for (int i = 0; i < static_cast<int>(rng() % 6); ++i) {
      m.add_int64(root_->field_by_name("xs"), static_cast<int32_t>(rng()));
    }

    std::string text = TextFormat::print(m);
    DynamicMessage back(root_);
    auto st = TextFormat::parse(text, back);
    ASSERT_TRUE(st.is_ok()) << st.to_string() << "\n--- text ---\n" << text;
    // Note: float/double text uses default ostream precision, so compare
    // via the text rendering rather than exact doubles.
    EXPECT_EQ(TextFormat::print(back), text);
  }
}

TEST_F(TextFixture, FuzzSafety) {
  std::mt19937_64 rng(kDefaultSeed);
  const char* pieces[] = {"i",  ":",  "{",  "}",    "[",     "]",    ",",
                          "\"", "\\", "1",  "-",    "leaf",  "xs",   "name",
                          "#c", "\n", "e9", "true", "KIND_A", "0x7f", "'"};
  for (int iter = 0; iter < 1500; ++iter) {
    std::string text;
    int n = 1 + static_cast<int>(rng() % 30);
    for (int j = 0; j < n; ++j) {
      text += pieces[rng() % std::size(pieces)];
      if (rng() % 3 == 0) text += ' ';
    }
    DynamicMessage m(root_);
    (void)TextFormat::parse(text, m);  // no crash, any Status
  }
  for (int iter = 0; iter < 500; ++iter) {
    DynamicMessage m(root_);
    (void)TextFormat::parse(random_bytes(rng, rng() % 200), m);
  }
}

}  // namespace
}  // namespace dpurpc::proto
