#!/usr/bin/env python3
"""Golden tests for tools/bench_diff.py.

Pins the contract CI's perf-trajectory lane depends on: which moves get
marked REGRESSED vs IMPROVED vs CHANGED, the direction heuristics for the
per-load-point latency leaves fig12 emits, --threshold, and the exit
codes (--strict gates, default warns, unreadable input is 2).

Runs the script as a subprocess — the same way ci.yml does — against
fixture pairs in tests/testdata/bench_diff/, plus direct unit checks of
direction() via import. Stdlib only (unittest), registered with ctest.
"""
import importlib.util
import json
import os
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
BENCH_DIFF = os.environ.get(
    "BENCH_DIFF", os.path.join(HERE, "..", "tools", "bench_diff.py"))
TESTDATA = os.environ.get(
    "BENCH_DIFF_TESTDATA", os.path.join(HERE, "testdata", "bench_diff"))


def run_diff(*args):
    """Run bench_diff.py; returns (exit_code, stdout)."""
    proc = subprocess.run(
        [sys.executable, BENCH_DIFF] + list(args),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    return proc.returncode, proc.stdout


def fixture(name):
    return os.path.join(TESTDATA, name)


def read_json(path):
    with open(path) as f:
        return json.load(f)


def write_json(doc, path):
    with open(path, "w") as f:
        json.dump(doc, f)


class ExitCodes(unittest.TestCase):
    def test_identical_is_clean_and_green(self):
        code, out = run_diff(fixture("base.json"), fixture("base.json"))
        self.assertEqual(code, 0)
        self.assertNotIn("REGRESSED", out)
        self.assertNotIn("IMPROVED", out)
        self.assertIn("no metric moved", out)

    def test_regression_warns_by_default(self):
        code, out = run_diff(fixture("base.json"), fixture("regressed.json"))
        self.assertEqual(code, 0)
        self.assertIn("REGRESSED", out)
        self.assertIn("warn-only", out)

    def test_regression_gates_under_strict(self):
        code, out = run_diff("--strict",
                             fixture("base.json"), fixture("regressed.json"))
        self.assertEqual(code, 1)
        self.assertIn("REGRESSED", out)
        self.assertNotIn("warn-only", out)

    def test_improvement_is_green_even_under_strict(self):
        code, out = run_diff("--strict",
                             fixture("base.json"), fixture("improved.json"))
        self.assertEqual(code, 0)
        self.assertIn("IMPROVED", out)
        self.assertNotIn("REGRESSED", out)

    def test_unreadable_input_is_exit_2(self):
        code, _ = run_diff(fixture("base.json"), fixture("malformed.json"))
        self.assertEqual(code, 2)
        code, _ = run_diff(fixture("base.json"), fixture("does_not_exist.json"))
        self.assertEqual(code, 2)


class Marks(unittest.TestCase):
    def diff_lines(self, *args):
        _, out = run_diff(*args)
        return out.splitlines()

    def line_for(self, lines, path):
        hits = [l for l in lines if l.strip().startswith(path + " ")]
        self.assertEqual(len(hits), 1, "expected one row for %s" % path)
        return hits[0]

    def test_throughput_drop_is_regression(self):
        lines = self.diff_lines(fixture("base.json"), fixture("regressed.json"))
        self.assertIn("REGRESSED", self.line_for(
            lines, "scenarios[Small].dpu.rps"))
        # A MiB/s rate is a throughput, not a duration: the _s suffix must
        # not flip it to lower-is-better.
        self.assertIn("REGRESSED", self.line_for(lines, "stream_mib_s"))

    def test_per_load_point_latency_rise_is_regression(self):
        # The fig12 curve leaves: identity comes from the "label" key, and
        # _us latency quantiles read lower-is-better.
        lines = self.diff_lines(fixture("base.json"), fixture("regressed.json"))
        self.assertIn("REGRESSED", self.line_for(
            lines, "points[0.25x].p99_us"))
        self.assertIn("REGRESSED", self.line_for(
            lines, "points[1.00x].timeouts"))
        # The knee sliding toward lighter load is a regression too.
        self.assertIn("REGRESSED", self.line_for(lines, "knee_fraction"))

    def test_per_load_point_latency_drop_is_improvement(self):
        lines = self.diff_lines(fixture("base.json"), fixture("improved.json"))
        self.assertIn("IMPROVED", self.line_for(
            lines, "points[1.00x].p99_us"))
        self.assertIn("IMPROVED", self.line_for(lines, "unloaded_p99_us"))
        self.assertIn("IMPROVED", self.line_for(lines, "calibrated_max_rps"))

    def test_added_and_removed_points_are_reported(self):
        with tempfile.TemporaryDirectory() as td:
            new = read_json(fixture("base.json"))
            pts = new["fig12_openloop"]["points"]
            pts[0]["label"] = "0.10x"  # renamed point: one REMOVED, one ADDED
            path = os.path.join(td, "new.json")
            write_json(new, path)
            lines = self.diff_lines(fixture("base.json"), path)
            self.assertIn("REMOVED", self.line_for(
                lines, "points[0.25x].p99_us"))
            self.assertIn("ADDED", self.line_for(
                lines, "points[0.10x].p99_us"))

    def test_unknown_direction_is_changed_not_gated(self):
        with tempfile.TemporaryDirectory() as td:
            new = read_json(fixture("base.json"))
            new["fig8_datapath"]["mystery_metric"] = 100.0
            old = read_json(fixture("base.json"))
            old["fig8_datapath"]["mystery_metric"] = 50.0
            old_p = os.path.join(td, "old.json")
            new_p = os.path.join(td, "new.json")
            write_json(old, old_p)
            write_json(new, new_p)
            code, out = run_diff("--strict", old_p, new_p)
            self.assertEqual(code, 0)  # CHANGED never gates
            lines = out.splitlines()
            self.assertIn("CHANGED", self.line_for(lines, "mystery_metric"))


class Threshold(unittest.TestCase):
    def test_threshold_suppresses_small_moves(self):
        # base -> regressed moves Small rps by -20%: marked at the default
        # 10% threshold, silent at 30%.
        code, out = run_diff("--strict", "--threshold", "30",
                             fixture("base.json"), fixture("regressed.json"))
        self.assertNotIn("scenarios[Small].dpu.rps", out)
        # Bigger moves (the 62% stream_mib_s drop) still gate.
        self.assertIn("stream_mib_s", out)
        self.assertEqual(code, 1)


class DirectionHeuristics(unittest.TestCase):
    """Unit checks of direction() itself, via import."""

    @classmethod
    def setUpClass(cls):
        spec = importlib.util.spec_from_file_location("bench_diff", BENCH_DIFF)
        cls.mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(cls.mod)

    def test_latency_leaves_are_lower_better(self):
        d = self.mod.direction
        for leaf in ("p50_us", "p95_us", "p99_us", "mean_us", "latency_us",
                     "unloaded_p99_us", "timeouts", "decode_busy_ns",
                     "credit_stalls", "errors", "dropped", "wall_s"):
            self.assertEqual(d("points[1.00x].%s" % leaf), -1, leaf)

    def test_throughput_leaves_are_higher_better(self):
        d = self.mod.direction
        for leaf in ("offered_rps", "achieved_rps", "calibrated_max_rps",
                     "stream_mib_s", "gbps", "knee_fraction",
                     "knee_offered_rps"):
            self.assertEqual(d(leaf), 1, leaf)

    def test_suffix_matching_is_not_substring_matching(self):
        # "status"/"bonus" contain "us" but are not microsecond leaves.
        d = self.mod.direction
        self.assertEqual(d("status"), 0)
        self.assertEqual(d("bonus"), 0)
        self.assertEqual(d("fraction"), 0)

    def test_share_and_occupancy_leaves_are_informational(self):
        # Attribution shares and occupancy snapshots describe *where* time
        # or capacity went, not how much of it there was — either direction
        # of movement is news, never a regression.
        d = self.mod.direction
        for leaf in ("worker_decode_share", "xrpc_inbound_share",
                     "dominant_share_knee", "driver_share_unloaded",
                     "ring_occupancy", "credit_occupancy"):
            self.assertIsNone(d("points[0.25x].%s" % leaf), leaf)
        # "flush_wait_share" must be INFO even though "wait"-ish stage
        # names would otherwise smell like latency leaves.
        self.assertIsNone(d("flush_wait_share"))
        # The forensics health counters stay unknown-direction (CHANGED):
        # they are gated inside the benchmark itself, not by the diff.
        for leaf in ("counter_tracks", "exemplars_captured",
                     "tiling_exemplars", "pending_at_drain"):
            self.assertEqual(d(leaf), 0, leaf)


class InformationalMarks(unittest.TestCase):
    """fig12_forensics share leaves: reported as INFO, never gated."""

    def test_share_moves_are_info_and_never_gate(self):
        with tempfile.TemporaryDirectory() as td:
            def doc(share):
                return {"fig12_forensics": {
                    "benchmark": "fig12_forensics",
                    "dominant_stage": "xrpc_inbound",
                    "points": [
                        {"label": "0.10x", "worker_decode_share": 0.05},
                        {"label": "1.00x", "worker_decode_share": share},
                    ]}}
            old_p = os.path.join(td, "old.json")
            new_p = os.path.join(td, "new.json")
            write_json(doc(0.10), old_p)
            write_json(doc(0.40), new_p)  # +300%: adverse if it were gated
            code, out = run_diff("--strict", old_p, new_p)
            self.assertEqual(code, 0, out)
            lines = out.splitlines()
            hits = [l for l in lines
                    if "points[1.00x].worker_decode_share" in l]
            self.assertEqual(len(hits), 1, out)
            self.assertIn("INFO", hits[0])
            self.assertNotIn("REGRESSED", out)


if __name__ == "__main__":
    unittest.main()
