// Tests for the parse-plan compiler and the plan-driven deserializer loop.
//
// The load-bearing property is *bit-for-bit equivalence*: with
// use_parse_plan toggled, the deserializer must produce identical arena
// images (same allocation order, sizes, and contents) and identical error
// statuses for malformed input — the interpretive path stays as the
// ablation baseline, so any divergence would poison the comparison.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "adt/adt.hpp"
#include "adt/arena_deserializer.hpp"
#include "adt/parse_plan.hpp"
#include "adt/serialize_plan.hpp"
#include "common/rng.hpp"
#include "metrics/metrics.hpp"
#include "proto/dynamic_message.hpp"
#include "proto/schema_parser.hpp"
#include "wire/coded_stream.hpp"

namespace dpurpc::adt {
namespace {

using arena::AddressTranslator;
using arena::StdLibFlavor;
using proto::DynamicMessage;
using proto::WireCodec;

constexpr std::string_view kSchema = R"(
syntax = "proto3";
package bench;

message Small {
  int32 id = 1;
  bool flag = 2;
  float score = 3;
  uint64 stamp = 4;
}
message IntArray { repeated uint32 values = 1; }
message CharArray { string data = 1; }
message Nested {
  Small head = 1;
  repeated Small items = 2;
  string label = 3;
  repeated string tags = 4;
  repeated sint64 deltas = 5;
  double weight = 6;
}
message Recur { Recur next = 1; int32 depth = 2; }
)";

class ParsePlanFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    proto::SchemaParser parser(pool_);
    auto st = parser.parse_and_link(kSchema);
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    DescriptorAdtBuilder builder(StdLibFlavor::kLibstdcpp);
    for (const char* name :
         {"bench.Small", "bench.IntArray", "bench.CharArray", "bench.Nested",
          "bench.Recur"}) {
      auto idx = builder.add_message(pool_.find_message(name));
      ASSERT_TRUE(idx.is_ok()) << idx.status().to_string();
    }
    adt_ = std::move(builder).take();
    adt_.set_fingerprint(AbiFingerprint::current(StdLibFlavor::kLibstdcpp));
    ASSERT_TRUE(adt_.validate().is_ok());
  }

  uint32_t cls(std::string_view name) const {
    uint32_t i = adt_.find_class(name);
    EXPECT_NE(i, UINT32_MAX) << name;
    return i;
  }

  /// Deserialize `wire` through both paths into poisoned buffers whose
  /// pointers are rebased to one shared fake receiver base, so equal
  /// allocation behavior ⇒ byte-identical images.
  struct PathResult {
    Status status = Status::ok();
    size_t used = 0;
    std::vector<std::byte> image;
  };
  PathResult run_path(uint32_t class_index, ByteSpan wire, bool use_plan,
                      size_t buf_size = 1 << 16) {
    PathResult out;
    std::vector<std::byte> buf(buf_size);
    std::memset(buf.data(), 0xAA, buf.size());
    arena::Arena arena(buf.data(), buf.size());
    constexpr uintptr_t kFakeReceiverBase = 0x7f31'0000'0000ull;
    AddressTranslator xlate{static_cast<ptrdiff_t>(kFakeReceiverBase) -
                            reinterpret_cast<intptr_t>(buf.data())};
    CodecOptions opts;
    opts.use_parse_plan = use_plan;
    ArenaDeserializer deser(&adt_, opts);
    auto obj = deser.deserialize(class_index, wire, arena, xlate);
    out.status = obj.is_ok() ? Status::ok() : obj.status();
    out.used = arena.used();
    out.image = std::move(buf);
    return out;
  }

  void expect_paths_identical(uint32_t class_index, ByteSpan wire,
                              const char* what) {
    PathResult plan = run_path(class_index, wire, true);
    PathResult interp = run_path(class_index, wire, false);
    EXPECT_EQ(plan.status.is_ok(), interp.status.is_ok()) << what;
    EXPECT_EQ(plan.status.to_string(), interp.status.to_string()) << what;
    EXPECT_EQ(plan.used, interp.used) << what;
    EXPECT_EQ(std::memcmp(plan.image.data(), interp.image.data(),
                          plan.image.size()),
              0)
        << what << ": arena images diverge";
  }

  Bytes rich_nested_wire() {
    const auto* nested = pool_.find_message("bench.Nested");
    const auto* small = pool_.find_message("bench.Small");
    DynamicMessage m(nested);
    m.mutable_message(nested->field_by_name("head"))
        ->set_int64(small->field_by_name("id"), 77);
    for (int i = 0; i < 5; ++i) {
      auto* item = m.add_message(nested->field_by_name("items"));
      item->set_int64(small->field_by_name("id"), i);
      item->set_uint64(small->field_by_name("flag"), i & 1);
      m.add_string(nested->field_by_name("tags"),
                   "tag-" + std::string(40, 'y') + std::to_string(i));
      m.add_int64(nested->field_by_name("deltas"), (i - 2) * 1'000'000'007ll);
    }
    m.set_string(nested->field_by_name("label"), "plan-vs-interp");
    m.set_double(nested->field_by_name("weight"), 2.75);
    return WireCodec::serialize(m);
  }

  proto::DescriptorPool pool_;
  Adt adt_;
};

// --------------------------------------------------------- plan building

TEST_F(ParsePlanFixture, PlansCompiledForEveryClass) {
  auto plans = adt_.plans();
  ASSERT_NE(plans, nullptr);
  EXPECT_EQ(plans->parse().plan_count(), adt_.class_count());
  const ParsePlan* small = plans->parse().for_class(cls("bench.Small"));
  ASSERT_NE(small, nullptr);
  // 4 fields, max number 4: table covers tags [0, 4<<3 | 7].
  EXPECT_EQ(small->table_size(), ((4u + 1) << 3));
  // First field (int32 id = 1) seeds the prediction with its varint tag.
  EXPECT_EQ(small->first_tag(), (1u << 3) | 0u);
}

TEST_F(ParsePlanFixture, SlotOpsFuseTypeAndWireType) {
  auto plans = adt_.plans();
  const ParsePlan* small = plans->parse().for_class(cls("bench.Small"));
  ASSERT_NE(small, nullptr);
  // id=1 int32: varint slot decodes, fixed32 slot is a mismatch.
  EXPECT_EQ(small->slot((1u << 3) | 0u)->op, PlanOp::kVarint32);
  EXPECT_EQ(small->slot((1u << 3) | 5u)->op, PlanOp::kWireMismatch);
  // LEN data aimed at a singular scalar is the dedicated error op.
  EXPECT_EQ(small->slot((1u << 3) | 2u)->op, PlanOp::kScalarLen);
  // score=3 float: fixed32.
  EXPECT_EQ(small->slot((3u << 3) | 5u)->op, PlanOp::kFixed32);

  const ParsePlan* ints = plans->parse().for_class(cls("bench.IntArray"));
  ASSERT_NE(ints, nullptr);
  // repeated uint32: packed LEN payload plus unpacked varint occurrences.
  EXPECT_EQ(ints->slot((1u << 3) | 2u)->op, PlanOp::kPackedVarint32);
  EXPECT_EQ(ints->slot((1u << 3) | 0u)->op, PlanOp::kRepVarint32);
}

TEST_F(ParsePlanFixture, PredictionFollowsEmittedOrder) {
  auto plans = adt_.plans();
  const ParsePlan* small = plans->parse().for_class(cls("bench.Small"));
  // id(1,varint) -> flag(2,varint) -> score(3,fixed32) -> stamp(4,varint) -> id.
  EXPECT_EQ(small->slot((1u << 3) | 0u)->next_tag, (2u << 3) | 0u);
  EXPECT_EQ(small->slot((2u << 3) | 0u)->next_tag, (3u << 3) | 5u);
  EXPECT_EQ(small->slot((3u << 3) | 5u)->next_tag, (4u << 3) | 0u);
  EXPECT_EQ(small->slot((4u << 3) | 0u)->next_tag, (1u << 3) | 0u);

  const ParsePlan* nested = plans->parse().for_class(cls("bench.Nested"));
  // Repeated message/string fields predict their own tag (runs repeat);
  // packed repeated scalars emit one LEN record, so they predict onward.
  EXPECT_EQ(nested->slot((2u << 3) | 2u)->next_tag, (2u << 3) | 2u);
  EXPECT_EQ(nested->slot((4u << 3) | 2u)->next_tag, (4u << 3) | 2u);
  EXPECT_EQ(nested->slot((5u << 3) | 2u)->next_tag, (6u << 3) | 1u);
}

TEST_F(ParsePlanFixture, CacheSharedAndInvalidated) {
  auto a = adt_.plans();
  auto b = adt_.plans();
  EXPECT_EQ(a.get(), b.get());  // one compile, shared by all codecs
  ClassEntry extra;
  extra.name = "bench.Extra";
  extra.size = 16;
  extra.align = 8;
  extra.default_bytes.assign(16, 0);
  adt_.add_class(std::move(extra));
  auto c = adt_.plans();
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(c->parse().plan_count(), adt_.class_count());
}

TEST_F(ParsePlanFixture, HugeFieldNumbersFallBackToInterpreter) {
  proto::DescriptorPool pool;
  proto::SchemaParser parser(pool);
  ASSERT_TRUE(parser
                  .parse_and_link("syntax = \"proto3\";\n"
                                  "message Sparse { uint64 v = 2000; }\n")
                  .is_ok());
  DescriptorAdtBuilder builder(StdLibFlavor::kLibstdcpp);
  ASSERT_TRUE(builder.add_message(pool.find_message("Sparse")).is_ok());
  Adt adt = std::move(builder).take();
  adt.set_fingerprint(AbiFingerprint::current(StdLibFlavor::kLibstdcpp));

  auto plans = adt.plans();
  EXPECT_EQ(plans->parse().for_class(0), nullptr);  // no 16k-slot table
  EXPECT_EQ(plans->parse().plan_count(), 0u);

  // The deserializer still works — through the interpretive path.
  DynamicMessage m(pool.find_message("Sparse"));
  m.set_uint64(pool.find_message("Sparse")->field_by_name("v"), 0xabcdefull);
  Bytes wire = WireCodec::serialize(m);
  std::vector<std::byte> buf(1 << 12);
  arena::Arena arena(buf.data(), buf.size());
  ArenaDeserializer deser(&adt);
  auto obj = deser.deserialize(0, ByteSpan(wire), arena, {});
  ASSERT_TRUE(obj.is_ok()) << obj.status().to_string();
  LayoutView v(&adt, 0, *obj);
  EXPECT_EQ(v.get_uint64(2000), 0xabcdefull);
}

// ----------------------------------------- bit-for-bit path equivalence

TEST_F(ParsePlanFixture, IdenticalImagesSmall) {
  const auto* desc = pool_.find_message("bench.Small");
  DynamicMessage m(desc);
  m.set_int64(desc->field_by_name("id"), -42);
  m.set_uint64(desc->field_by_name("flag"), 1);
  m.set_float(desc->field_by_name("score"), 3.25f);
  m.set_uint64(desc->field_by_name("stamp"), 0xdeadbeefull);
  Bytes wire = WireCodec::serialize(m);
  expect_paths_identical(cls("bench.Small"), ByteSpan(wire), "Small");
}

TEST_F(ParsePlanFixture, IdenticalImagesPackedInts) {
  const auto* desc = pool_.find_message("bench.IntArray");
  std::mt19937_64 rng(kDefaultSeed);
  SkewedVarintDistribution dist;
  DynamicMessage m(desc);
  for (int i = 0; i < 512; ++i) m.add_uint64(desc->field_by_name("values"), dist(rng));
  Bytes wire = WireCodec::serialize(m);
  expect_paths_identical(cls("bench.IntArray"), ByteSpan(wire), "IntArray x512");
}

TEST_F(ParsePlanFixture, IdenticalImagesLongString) {
  const auto* desc = pool_.find_message("bench.CharArray");
  std::mt19937_64 rng(kDefaultSeed);
  DynamicMessage m(desc);
  m.set_string(desc->field_by_name("data"), random_ascii(rng, 8000));
  Bytes wire = WireCodec::serialize(m);
  expect_paths_identical(cls("bench.CharArray"), ByteSpan(wire), "CharArray x8000");
}

TEST_F(ParsePlanFixture, IdenticalImagesNestedTree) {
  Bytes wire = rich_nested_wire();
  expect_paths_identical(cls("bench.Nested"), ByteSpan(wire), "Nested");
}

TEST_F(ParsePlanFixture, IdenticalImagesRecursiveChain) {
  const auto* desc = pool_.find_message("bench.Recur");
  DynamicMessage m(desc);
  DynamicMessage* cur = &m;
  for (int d = 0; d < 40; ++d) {
    cur->set_int64(desc->field_by_name("depth"), d);
    cur = cur->mutable_message(desc->field_by_name("next"));
  }
  Bytes wire = WireCodec::serialize(m);
  expect_paths_identical(cls("bench.Recur"), ByteSpan(wire), "Recur x40");
}

TEST_F(ParsePlanFixture, IdenticalStatusOnTruncations) {
  Bytes wire = rich_nested_wire();
  // Every prefix must yield the same ok/error outcome from both paths
  // (and identical messages when they fail).
  for (size_t cut = 0; cut <= wire.size(); ++cut) {
    ByteSpan prefix(wire.data(), cut);
    PathResult plan = run_path(cls("bench.Nested"), prefix, true);
    PathResult interp = run_path(cls("bench.Nested"), prefix, false);
    ASSERT_EQ(plan.status.to_string(), interp.status.to_string())
        << "prefix len " << cut;
  }
}

TEST_F(ParsePlanFixture, IdenticalStatusOnMalformedInput) {
  struct Case {
    const char* what;
    std::vector<uint8_t> wire;
  };
  const std::vector<Case> cases = {
      // fixed32 data on the varint-typed id field.
      {"wire type mismatch", {(1 << 3) | 5, 1, 2, 3, 4}},
      // LEN payload aimed at singular scalar id.
      {"LEN for scalar", {(1 << 3) | 2, 2, 0xFF, 0x01}},
      // overlong varint (11 continuation bytes).
      {"overlong varint",
       {(1 << 3) | 0, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
        0x80, 0x01}},
      // group wire types are unsupported.
      {"group wire type", {(1 << 3) | 3}},
  };
  for (const auto& c : cases) {
    ByteSpan wire(reinterpret_cast<const std::byte*>(c.wire.data()),
                  c.wire.size());
    PathResult plan = run_path(cls("bench.Small"), wire, true);
    PathResult interp = run_path(cls("bench.Small"), wire, false);
    EXPECT_FALSE(plan.status.is_ok()) << c.what;
    EXPECT_EQ(plan.status.to_string(), interp.status.to_string()) << c.what;
  }

  // Packed varint payload ending mid-element, against IntArray.
  const uint8_t packed_bad[] = {(1 << 3) | 2, 2, 0x80, 0x80};
  ByteSpan pb(reinterpret_cast<const std::byte*>(packed_bad), sizeof(packed_bad));
  PathResult plan = run_path(cls("bench.IntArray"), pb, true);
  PathResult interp = run_path(cls("bench.IntArray"), pb, false);
  EXPECT_FALSE(plan.status.is_ok());
  EXPECT_EQ(plan.status.to_string(), interp.status.to_string());

  // Invalid UTF-8 rejected identically by both paths.
  const uint8_t bad_utf8[] = {(1 << 3) | 2, 2, 0xC0, 0xAF};
  ByteSpan bu(reinterpret_cast<const std::byte*>(bad_utf8), sizeof(bad_utf8));
  plan = run_path(cls("bench.CharArray"), bu, true);
  interp = run_path(cls("bench.CharArray"), bu, false);
  EXPECT_FALSE(plan.status.is_ok());
  EXPECT_EQ(plan.status.to_string(), interp.status.to_string());
}

TEST_F(ParsePlanFixture, IdenticalImagesRandomizedDifferential) {
  // Random field soup: unknown fields, repeats, merges — both paths must
  // agree on every byte, every time.
  const auto* desc = pool_.find_message("bench.Nested");
  const auto* small = pool_.find_message("bench.Small");
  std::mt19937_64 rng(kDefaultSeed ^ 0x9e37);
  for (int round = 0; round < 50; ++round) {
    DynamicMessage m(desc);
    if (rng() & 1) {
      m.mutable_message(desc->field_by_name("head"))
          ->set_int64(small->field_by_name("id"), static_cast<int64_t>(rng()));
    }
    const size_t items = rng() % 6;
    for (size_t i = 0; i < items; ++i) {
      m.add_message(desc->field_by_name("items"))
          ->set_uint64(small->field_by_name("stamp"), rng());
    }
    const size_t tags = rng() % 4;
    for (size_t i = 0; i < tags; ++i) {
      m.add_string(desc->field_by_name("tags"),
                   random_ascii(rng, rng() % 120));
    }
    const size_t deltas = rng() % 40;
    for (size_t i = 0; i < deltas; ++i) {
      m.add_int64(desc->field_by_name("deltas"), static_cast<int64_t>(rng()));
    }
    Bytes wire = WireCodec::serialize(m);
    expect_paths_identical(cls("bench.Nested"), ByteSpan(wire),
                           ("round " + std::to_string(round)).c_str());
  }
}

// -------------------------------------------------- prediction metrics

TEST_F(ParsePlanFixture, PredictionHitsOnInOrderWire) {
  auto& fields = metrics::default_counter("dpurpc_deser_plan_fields_total", "");
  auto& hits = metrics::default_counter("dpurpc_deser_prediction_hits_total", "");
  auto& plan_parses = metrics::default_counter("dpurpc_deser_plan_parses_total", "");
  const uint64_t f0 = fields.value(), h0 = hits.value(), p0 = plan_parses.value();

  const auto* desc = pool_.find_message("bench.Small");
  DynamicMessage m(desc);
  m.set_int64(desc->field_by_name("id"), 1);
  m.set_uint64(desc->field_by_name("flag"), 1);
  m.set_float(desc->field_by_name("score"), 1.0f);
  m.set_uint64(desc->field_by_name("stamp"), 1);
  Bytes wire = WireCodec::serialize(m);
  PathResult r = run_path(cls("bench.Small"), ByteSpan(wire), true);
  ASSERT_TRUE(r.status.is_ok());

  // Encoders emit ascending field order, so all 4 fields are predicted.
  EXPECT_EQ(plan_parses.value(), p0 + 1);
  EXPECT_EQ(fields.value(), f0 + 4);
  EXPECT_EQ(hits.value(), h0 + 4);
}

TEST_F(ParsePlanFixture, InterpretivePathCountedSeparately) {
  auto& interp = metrics::default_counter("dpurpc_deser_interp_parses_total", "");
  const uint64_t i0 = interp.value();
  Bytes wire;  // empty message is fine
  PathResult r = run_path(cls("bench.Small"), ByteSpan(wire), false);
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(interp.value(), i0 + 1);
}

}  // namespace
}  // namespace dpurpc::adt
