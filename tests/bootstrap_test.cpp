// Tests for the bootstrap exchange: the one-time manifest/ADT transfer
// (§V.B) and the ABI-fingerprint admission gate (§V.A) over a real TCP
// channel, plus end-to-end use of the fetched configuration.
#include <gtest/gtest.h>

#include <thread>

#include "grpccompat/bootstrap.hpp"
#include "grpccompat/dpu_proxy.hpp"
#include "grpccompat/host_service.hpp"
#include "proto/schema_parser.hpp"
#include "xrpc/channel.hpp"

namespace dpurpc::grpccompat {
namespace {

constexpr std::string_view kSchema = R"(
syntax = "proto3";
package bs;
message Ping { uint64 nonce = 1; string tag = 2; }
message Pong { uint64 nonce = 1; }
service Pinger { rpc Ping_ (Ping) returns (Pong); }
)";

OffloadManifest make_manifest(proto::DescriptorPool& pool) {
  proto::SchemaParser parser(pool);
  EXPECT_TRUE(parser.parse_and_link(kSchema).is_ok());
  auto m = OffloadManifest::build(pool, arena::StdLibFlavor::kLibstdcpp);
  EXPECT_TRUE(m.is_ok());
  return std::move(*m);
}

TEST(Bootstrap, ParamsRoundTrip) {
  BootstrapParams p;
  p.credits = 128;
  p.block_size = 16384;
  p.host_rbuf_size = 8 << 20;
  p.dpu_rbuf_size = 2 << 20;
  auto back = BootstrapParams::deserialize(ByteSpan(p.serialize()));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back->credits, 128u);
  EXPECT_EQ(back->block_size, 16384u);
  EXPECT_EQ(back->host_rbuf_size, 8u << 20);
  EXPECT_EQ(back->dpu_rbuf_size, 2u << 20);
}

TEST(Bootstrap, ParamsRejectImplausible) {
  BootstrapParams p;
  p.credits = 0;
  EXPECT_FALSE(BootstrapParams::deserialize(ByteSpan(p.serialize())).is_ok());
  BootstrapParams q;
  q.block_size = 1000;  // not a power of two
  EXPECT_FALSE(BootstrapParams::deserialize(ByteSpan(q.serialize())).is_ok());
}

TEST(Bootstrap, FetchDeliversManifestAndParams) {
  proto::DescriptorPool pool;
  OffloadManifest manifest = make_manifest(pool);
  BootstrapParams params;
  params.credits = 64;
  params.block_size = 4096;
  auto server = BootstrapServer::serve(manifest, params);
  ASSERT_TRUE(server.is_ok()) << server.status().to_string();

  auto fetched = fetch_bootstrap((*server)->port());
  ASSERT_TRUE(fetched.is_ok()) << fetched.status().to_string();
  EXPECT_EQ(fetched->params.credits, 64u);
  EXPECT_EQ(fetched->manifest.methods().size(), 1u);
  EXPECT_NE(fetched->manifest.find_by_name("bs.Pinger/Ping_"), nullptr);
  EXPECT_NE(fetched->manifest.adt().find_class("bs.Ping"), UINT32_MAX);

  auto cfg = fetched->client_config();
  EXPECT_EQ(cfg.credits, 64u);
  EXPECT_EQ(cfg.block_size, 4096u);
  EXPECT_EQ(cfg.sbuf_size, params.host_rbuf_size);

  // Multiple fetches work (several DPUs / restarts).
  auto again = fetch_bootstrap((*server)->port());
  EXPECT_TRUE(again.is_ok());
}

TEST(Bootstrap, FetchFromDeadPortFails) {
  uint16_t dead;
  {
    auto l = xrpc::Listener::create();
    ASSERT_TRUE(l.is_ok());
    dead = l->port();
  }
  EXPECT_FALSE(fetch_bootstrap(dead).is_ok());
}

TEST(Bootstrap, IncompatibleFingerprintRejected) {
  // A host advertising a different std::string ABI must be refused (§V.A):
  // crafting objects for it would corrupt memory.
  proto::DescriptorPool pool;
  OffloadManifest manifest = make_manifest(pool);
  Bytes wire = manifest.serialize();
  // The manifest embeds the ADT which embeds the fingerprint; flip the
  // string_size byte by round-tripping through the Adt API.
  auto broken = OffloadManifest::deserialize(ByteSpan(wire));
  ASSERT_TRUE(broken.is_ok());
  // Rebuild a manifest whose fingerprint says libc++ (24-byte strings):
  // this process runs libstdc++, so verify_string_layout must fail.
  // (We cannot mutate OffloadManifest internals; emulate by serving an
  // ADT-only tamper at the byte level.)
  // Find the fingerprint inside the serialized manifest: it follows the
  // inner ADT magic (offset 4 of the ADT, which starts at offset 4).
  // Layout: [u32 adt_len][ADT: magic u32, ptr u8, endian u8, flavor u8,
  // string_size u8, ieee u8, ...]
  Bytes tampered = wire;
  auto* bytes = reinterpret_cast<uint8_t*>(tampered.data());
  ASSERT_GE(tampered.size(), 13u);
  EXPECT_EQ(bytes[4 + 0], 0x41);  // 'A' of ADT1 magic: sanity
  bytes[4 + 4 + 2] = 1;   // flavor -> kLibcpp
  bytes[4 + 4 + 3] = 24;  // string_size -> 24
  auto still_parses = OffloadManifest::deserialize(ByteSpan(tampered));
  ASSERT_TRUE(still_parses.is_ok());

  auto server = BootstrapServer::serve(*still_parses, {});
  ASSERT_TRUE(server.is_ok());
  auto fetched = fetch_bootstrap((*server)->port());
  ASSERT_FALSE(fetched.is_ok());
  EXPECT_EQ(fetched.status().code(), Code::kFailedPrecondition);
}

TEST(Bootstrap, EndToEndDeploymentFromFetchedConfig) {
  // The full startup story: host serves bootstrap; "DPU process" fetches
  // manifest + params, builds its connection from them, and serves xRPC.
  proto::DescriptorPool pool;
  OffloadManifest host_manifest = make_manifest(pool);
  BootstrapParams params;
  params.credits = 32;
  params.block_size = 4096;
  params.host_rbuf_size = 1 << 20;
  params.dpu_rbuf_size = 1 << 20;
  auto bootstrap = BootstrapServer::serve(host_manifest, params);
  ASSERT_TRUE(bootstrap.is_ok());

  // --- DPU side startup ---
  auto fetched = fetch_bootstrap((*bootstrap)->port());
  ASSERT_TRUE(fetched.is_ok()) << fetched.status().to_string();

  simverbs::ProtectionDomain dpu_pd("dpu"), host_pd("host");
  rdmarpc::Connection dpu_conn(rdmarpc::Role::kClient, &dpu_pd,
                               fetched->client_config());
  rdmarpc::ConnectionConfig host_cfg;
  host_cfg.credits = params.credits;
  host_cfg.block_size = params.block_size;
  host_cfg.sbuf_size = params.dpu_rbuf_size;
  host_cfg.rbuf_size = params.host_rbuf_size;
  rdmarpc::Connection host_conn(rdmarpc::Role::kServer, &host_pd, host_cfg);
  ASSERT_TRUE(rdmarpc::Connection::connect(dpu_conn, host_conn).is_ok());

  HostEngine host(&host_conn, &host_manifest, &pool);
  ASSERT_TRUE(host.register_unary(
                      "bs.Pinger/Ping_",
                      [](const ServerContext&, const adt::LayoutView& req,
                         proto::DynamicMessage& resp) {
                        resp.set_uint64(resp.descriptor()->field_by_name("nonce"),
                                        req.get_uint64(1) + 1);
                        return Status::ok();
                      })
                  .is_ok());
  std::atomic<bool> stop{false};
  std::thread host_thread([&] {
    while (!stop.load()) {
      auto n = host.event_loop_once();
      if (!n.is_ok()) return;
      if (*n == 0) host.wait(1);
    }
  });

  DpuProxy proxy(&dpu_conn, &fetched->manifest);
  auto port = proxy.start();
  ASSERT_TRUE(port.is_ok());
  auto chan = xrpc::Channel::connect(*port);
  ASSERT_TRUE(chan.is_ok());

  const auto* ping_desc = pool.find_message("bs.Ping");
  proto::DynamicMessage ping(ping_desc);
  ping.set_uint64(ping_desc->field_by_name("nonce"), 41);
  ping.set_string(ping_desc->field_by_name("tag"), "bootstrap");
  Bytes wire = proto::WireCodec::serialize(ping);
  auto resp = (*chan)->call("bs.Pinger/Ping_", ByteSpan(wire));
  ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
  proto::DynamicMessage pong(pool.find_message("bs.Pong"));
  ASSERT_TRUE(proto::WireCodec::parse(ByteSpan(*resp), pong).is_ok());
  EXPECT_EQ(pong.get_uint64(pong.descriptor()->field_by_name("nonce")), 42u);

  proxy.stop();
  stop.store(true);
  host_conn.interrupt();
  host_thread.join();
}

}  // namespace
}  // namespace dpurpc::grpccompat
