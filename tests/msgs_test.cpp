// Tests for adtc-generated code (bench_messages.proto → .pb.{h,cc} +
// .adt.pb.{h,cc}): accessors, serializer byte-compatibility with the
// reference codec, ADT registration from real compiled layouts, and the
// full deserialize-into-generated-class path with virtual dispatch.
#include <gtest/gtest.h>

#include <random>

#include "adt/arena_deserializer.hpp"
#include "bench_messages.adt.pb.h"
#include "bench_messages.pb.h"
#include "common/rng.hpp"
#include "proto/dynamic_message.hpp"
#include "proto/schema_parser.hpp"

namespace dpurpc_gen {
namespace {

using dpurpc::Bytes;
using dpurpc::ByteSpan;
using dpurpc::kDefaultSeed;
using dpurpc::arena::OwningArena;
using dpurpc::arena::StdLibFlavor;

// The same schema, for the reference codec.
constexpr std::string_view kSchemaText = R"(
syntax = "proto3";
package bench;
message Small { int32 id = 1; bool flag = 2; float score = 3; uint64 stamp = 4; }
message IntArray { repeated uint32 values = 1; }
message CharArray { string data = 1; }
message Sample {
  Small head = 1;
  repeated Small items = 2;
  string label = 3;
  repeated string tags = 4;
  repeated sint64 deltas = 5;
  double weight = 6;
}
)";

class GenFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dpurpc::proto::SchemaParser parser(pool_);
    ASSERT_TRUE(parser.parse_and_link(kSchemaText).is_ok());
    indices_ = RegisterAdt_bench_messages(adt_);
    adt_.set_fingerprint(
        dpurpc::adt::AbiFingerprint::current(StdLibFlavor::kLibstdcpp));
    ASSERT_TRUE(adt_.validate().is_ok()) << adt_.validate().to_string();
  }
  dpurpc::proto::DescriptorPool pool_;
  dpurpc::adt::Adt adt_;
  AdtIndices_bench_messages indices_;
};

TEST_F(GenFixture, AccessorsAndHasBits) {
  bench_Small s;
  EXPECT_FALSE(s.has_id());
  EXPECT_EQ(s.id(), 0);
  s.set_id(-5);
  s.set_flag(true);
  s.set_score(1.5f);
  EXPECT_TRUE(s.has_id());
  EXPECT_EQ(s.id(), -5);
  EXPECT_TRUE(s.flag());
  EXPECT_FLOAT_EQ(s.score(), 1.5f);
  EXPECT_FALSE(s.has_stamp());
}

TEST_F(GenFixture, VirtualTypeName) {
  bench_Small s;
  const ::dpurpc::adt::MessageBase* base = &s;
  EXPECT_EQ(base->type_name(), "bench.Small");
}

TEST_F(GenFixture, GeneratedSerializerMatchesReferenceCodec) {
  bench_Small s;
  s.set_id(12345);
  s.set_flag(true);
  s.set_score(2.5f);
  s.set_stamp(999999);
  Bytes gen_wire;
  s.SerializeToBytes(gen_wire);
  EXPECT_EQ(gen_wire.size(), s.ByteSizeLong());

  const auto* desc = pool_.find_message("bench.Small");
  dpurpc::proto::DynamicMessage m(desc);
  m.set_int64(desc->field_by_name("id"), 12345);
  m.set_uint64(desc->field_by_name("flag"), 1);
  m.set_float(desc->field_by_name("score"), 2.5f);
  m.set_uint64(desc->field_by_name("stamp"), 999999);
  EXPECT_EQ(gen_wire, dpurpc::proto::WireCodec::serialize(m));
}

TEST_F(GenFixture, SerializerSkipsDefaults) {
  bench_Small s;
  s.set_id(0);  // set, but zero: proto3 omits it
  Bytes wire;
  s.SerializeToBytes(wire);
  EXPECT_TRUE(wire.empty());
  EXPECT_EQ(s.ByteSizeLong(), 0u);
}

TEST_F(GenFixture, RepeatedPackedSerializationMatchesReference) {
  OwningArena arena(1 << 16);
  bench_IntArray arr;
  std::mt19937_64 rng(kDefaultSeed);
  dpurpc::SkewedVarintDistribution dist;
  const auto* desc = pool_.find_message("bench.IntArray");
  dpurpc::proto::DynamicMessage m(desc);
  for (int i = 0; i < 512; ++i) {
    uint32_t v = dist(rng);
    ASSERT_TRUE(arr.add_values(v, arena));
    m.add_uint64(desc->field_by_name("values"), v);
  }
  Bytes gen_wire;
  arr.SerializeToBytes(gen_wire);
  EXPECT_EQ(gen_wire, dpurpc::proto::WireCodec::serialize(m));
  EXPECT_EQ(gen_wire.size(), arr.ByteSizeLong());
}

TEST_F(GenFixture, NestedSampleSerializationMatchesReference) {
  OwningArena arena(1 << 16);
  bench_Sample sample;
  auto* head = arena.allocate_array<bench_Small>(1);
  new (head) bench_Small();
  head->set_id(7);
  sample.set_allocated_head(head);
  for (int i = 0; i < 3; ++i) {
    auto* item = sample.add_items(arena);
    ASSERT_NE(item, nullptr);
    item->set_id(100 + i);
    item->set_stamp(1000u + i);
  }
  sample.set_label("generated label beyond sso......");
  ASSERT_NE(sample.add_tags("short", arena), nullptr);
  ASSERT_NE(sample.add_tags(std::string(64, 'T'), arena), nullptr);
  ASSERT_TRUE(sample.add_deltas(-12345, arena));
  ASSERT_TRUE(sample.add_deltas(999, arena));
  sample.set_weight(3.25);

  Bytes gen_wire;
  sample.SerializeToBytes(gen_wire);
  ASSERT_EQ(gen_wire.size(), sample.ByteSizeLong());

  // Reference parse must reconstruct the same logical content.
  const auto* desc = pool_.find_message("bench.Sample");
  dpurpc::proto::DynamicMessage out(desc);
  auto st = dpurpc::proto::WireCodec::parse(ByteSpan(gen_wire), out);
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  const auto* small = pool_.find_message("bench.Small");
  EXPECT_EQ(out.get_message(desc->field_by_name("head"))
                ->get_int64(small->field_by_name("id")),
            7);
  EXPECT_EQ(out.repeated_size(desc->field_by_name("items")), 3u);
  EXPECT_EQ(out.get_string(desc->field_by_name("label")),
            "generated label beyond sso......");
  EXPECT_EQ(out.get_repeated_string(desc->field_by_name("tags"), 1),
            std::string(64, 'T'));
  EXPECT_EQ(out.get_repeated_int64(desc->field_by_name("deltas"), 0), -12345);
  EXPECT_DOUBLE_EQ(out.get_double(desc->field_by_name("weight")), 3.25);
}

TEST_F(GenFixture, AdtRegistrationDescribesCompiledLayout) {
  EXPECT_EQ(adt_.find_class("bench.Small"), indices_.bench_Small);
  const auto& cls = adt_.class_at(indices_.bench_Small);
  EXPECT_EQ(cls.size, sizeof(bench_Small));
  EXPECT_EQ(cls.align, alignof(bench_Small));
  ASSERT_EQ(cls.fields.size(), 4u);
  // Default bytes carry the live vptr (nonzero first word).
  uint64_t first_word;
  std::memcpy(&first_word, cls.default_bytes.data(), 8);
  EXPECT_NE(first_word, 0u);
}

TEST_F(GenFixture, DeserializeIntoGeneratedClassAndUseIt) {
  // Wire bytes from the reference codec → custom arena deserializer →
  // *real generated class* with working accessors and virtual dispatch.
  const auto* desc = pool_.find_message("bench.Sample");
  const auto* small = pool_.find_message("bench.Small");
  dpurpc::proto::DynamicMessage m(desc);
  m.mutable_message(desc->field_by_name("head"))
      ->set_int64(small->field_by_name("id"), 77);
  for (int i = 0; i < 4; ++i) {
    auto* it = m.add_message(desc->field_by_name("items"));
    it->set_int64(small->field_by_name("id"), i);
    it->set_float(small->field_by_name("score"), 0.5f * static_cast<float>(i));
  }
  m.set_string(desc->field_by_name("label"), std::string(100, 'L'));
  m.add_string(desc->field_by_name("tags"), "sso");
  m.add_int64(desc->field_by_name("deltas"), -42);
  Bytes wire = dpurpc::proto::WireCodec::serialize(m);

  OwningArena arena(1 << 16);
  dpurpc::adt::ArenaDeserializer deser(&adt_);
  auto obj = deser.deserialize(indices_.bench_Sample, ByteSpan(wire), arena, {});
  ASSERT_TRUE(obj.is_ok()) << obj.status().to_string();

  const auto* sample = static_cast<const bench_Sample*>(*obj);
  EXPECT_EQ(sample->type_name(), "bench.Sample");  // vptr works
  ASSERT_TRUE(sample->has_head());
  EXPECT_EQ(sample->head().id(), 77);
  ASSERT_EQ(sample->items_size(), 4u);
  EXPECT_EQ(sample->items(3).id(), 3);
  EXPECT_FLOAT_EQ(sample->items(3).score(), 1.5f);
  EXPECT_EQ(sample->label(), std::string(100, 'L'));
  ASSERT_EQ(sample->tags_size(), 1u);
  EXPECT_EQ(sample->tags(0), "sso");
  ASSERT_EQ(sample->deltas_size(), 1u);
  EXPECT_EQ(sample->deltas(0), -42);
  EXPECT_FALSE(sample->has_weight());
  EXPECT_DOUBLE_EQ(sample->weight(), 0.0);
}

TEST_F(GenFixture, GeneratedRoundTripThroughOwnSerializer) {
  // generated-serialize → custom-deserialize → generated accessors.
  OwningArena build_arena(1 << 14);
  bench_CharArray src;
  std::mt19937_64 rng(kDefaultSeed);
  std::string payload = dpurpc::random_ascii(rng, 8000);
  src.set_data(payload);
  Bytes wire;
  src.SerializeToBytes(wire);
  EXPECT_EQ(wire.size(), 8003u);  // the paper's x8000 Chars size

  OwningArena arena(1 << 15);
  dpurpc::adt::ArenaDeserializer deser(&adt_);
  auto obj = deser.deserialize(indices_.bench_CharArray, ByteSpan(wire), arena, {});
  ASSERT_TRUE(obj.is_ok());
  const auto* out = static_cast<const bench_CharArray*>(*obj);
  EXPECT_EQ(out->data(), payload);
}

TEST_F(GenFixture, ServiceIntrospectionTables) {
  // §V.D: generated introspection for mapping procedure ids to callbacks.
  EXPECT_EQ(bench_BenchService_Introspection::kServiceName, "bench.BenchService");
  EXPECT_EQ(bench_BenchService_Introspection::kMethodCount, 4);
  EXPECT_EQ(bench_BenchService_Introspection::kMethodNames[0],
            "bench.BenchService/Echo");
  EXPECT_EQ(bench_BenchService_Introspection::kInputTypes[1], "bench.IntArray");
  EXPECT_EQ(bench_BenchService_Introspection::kOutputTypes[3], "bench.Small");
}

TEST_F(GenFixture, ShippedAdtStillDeserializesIntoGeneratedClasses) {
  // serialize → deserialize the ADT (the host→DPU transfer), then use the
  // received table: default bytes (with vptr) survive the trip.
  Bytes shipped = adt_.serialize();
  auto received = dpurpc::adt::Adt::deserialize(ByteSpan(shipped));
  ASSERT_TRUE(received.is_ok());

  bench_Small src;
  src.set_id(31337);
  src.set_flag(true);
  Bytes wire;
  src.SerializeToBytes(wire);

  OwningArena arena(1 << 12);
  dpurpc::adt::ArenaDeserializer deser(&*received);
  auto obj = deser.deserialize(received->find_class("bench.Small"), ByteSpan(wire),
                               arena, {});
  ASSERT_TRUE(obj.is_ok());
  const auto* out = static_cast<const bench_Small*>(*obj);
  EXPECT_EQ(out->id(), 31337);
  EXPECT_TRUE(out->flag());
  EXPECT_EQ(out->type_name(), "bench.Small");
}

}  // namespace
}  // namespace dpurpc_gen
