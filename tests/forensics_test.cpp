// End-to-end tail forensics over the full offload datapath: the default
// registry's stage-quantile lines and resource-occupancy gauges must be
// visible through the in-band dpurpc.Metrics/Scrape endpoint, a captured
// tail exemplar must surface in the exposition, and the sampler's
// timelines must tile with the span tracks in one Chrome/Perfetto export.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>
#include <thread>

#include "grpccompat/dpu_proxy.hpp"
#include "grpccompat/host_service.hpp"
#include "grpccompat/manifest.hpp"
#include "metrics/metrics.hpp"
#include "proto/schema_parser.hpp"
#include "trace/collector.hpp"
#include "trace/flight_recorder.hpp"
#include "trace/resource_sampler.hpp"
#include "trace/trace.hpp"
#include "xrpc/channel.hpp"

namespace dpurpc::grpccompat {
namespace {

constexpr std::string_view kSchema = R"(
syntax = "proto3";
package kv;

message PutRequest { string key = 1; string value = 2; }
message PutResponse { bool created = 1; }

service KvStore {
  rpc Put (PutRequest) returns (PutResponse);
}
)";

class ForensicsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    proto::SchemaParser parser(pool_);
    ASSERT_TRUE(parser.parse_and_link(kSchema).is_ok());
    auto built = OffloadManifest::build(pool_, arena::StdLibFlavor::kLibstdcpp);
    ASSERT_TRUE(built.is_ok()) << built.status().to_string();
    manifest_ = std::make_unique<OffloadManifest>(std::move(*built));

    dpu_pd_ = std::make_unique<simverbs::ProtectionDomain>("dpu");
    host_pd_ = std::make_unique<simverbs::ProtectionDomain>("host");
    dpu_conn_ = std::make_unique<rdmarpc::Connection>(
        rdmarpc::Role::kClient, dpu_pd_.get(), rdmarpc::ConnectionConfig{});
    host_conn_ = std::make_unique<rdmarpc::Connection>(
        rdmarpc::Role::kServer, host_pd_.get(), rdmarpc::ConnectionConfig{});
    ASSERT_TRUE(rdmarpc::Connection::connect(*dpu_conn_, *host_conn_).is_ok());
    host_ = std::make_unique<HostEngine>(host_conn_.get(), manifest_.get(),
                                         &pool_);
  }

  void start_host_loop() {
    host_thread_ = std::thread([this] {
      while (!stop_.load(std::memory_order_relaxed)) {
        auto n = host_->event_loop_once();
        if (!n.is_ok()) return;
        if (*n == 0) host_->wait(1);
      }
    });
  }

  void TearDown() override {
    if (proxy_) proxy_->stop();
    stop_.store(true);
    host_conn_->interrupt();
    if (host_thread_.joinable()) host_thread_.join();
    trace::Tracer::instance().configure(trace::TraceConfig{});
  }

  proto::DescriptorPool pool_;
  std::unique_ptr<OffloadManifest> manifest_;
  std::unique_ptr<simverbs::ProtectionDomain> dpu_pd_, host_pd_;
  std::unique_ptr<rdmarpc::Connection> dpu_conn_, host_conn_;
  std::unique_ptr<HostEngine> host_;
  std::unique_ptr<DpuProxy> proxy_;
  std::thread host_thread_;
  std::atomic<bool> stop_{false};
};

TEST_F(ForensicsFixture, ScrapeCarriesQuantilesGaugesAndExemplars) {
#if !DPURPC_TRACE_ENABLED
  GTEST_SKIP() << "tracing compiled out (DPURPC_TRACE=OFF)";
#endif
  {
    std::vector<trace::SpanRecord> junk;
    trace::Tracer::instance().drain_into(junk);
  }
  trace::TraceConfig config;
  config.mode = trace::Mode::kFull;
  trace::Tracer::instance().configure(config);

  // Collector + recorder + sampler on the DEFAULT registry: that is the
  // registry the proxy's xRPC server scrapes from, so everything they
  // register becomes visible in-band.
  trace::TraceCollector::Options copts;
  copts.tail_keep_every = 1;
  copts.orphan_max_age = 10000;
  trace::TraceCollector collector(copts);

  trace::FlightRecorder::Options ropts;
  ropts.anomaly_window = 64;
  trace::FlightRecorder recorder(ropts);
  collector.set_flight_recorder(&recorder);
  // One armed window: the next completed trees are captured regardless of
  // latency, and each capture stamps an exemplar on the e2e histogram.
  recorder.arm(trace::TriggerKind::kManual);

  std::map<std::string, std::string> store;
  ASSERT_TRUE(host_
                  ->register_unary(
                      "kv.KvStore/Put",
                      [&store](const ServerContext&, const adt::LayoutView& req,
                               proto::DynamicMessage& resp) {
                        store[std::string(req.get_string(1))] =
                            std::string(req.get_string(2));
                        resp.set_uint64(resp.descriptor()->field_by_name("created"),
                                        1);
                        return Status::ok();
                      })
                  .is_ok());
  start_host_loop();

  proxy_ = std::make_unique<DpuProxy>(dpu_conn_.get(), manifest_.get());
  auto port = proxy_->start();
  ASSERT_TRUE(port.is_ok()) << port.status().to_string();
  auto chan = xrpc::Channel::connect(*port);
  ASSERT_TRUE(chan.is_ok());

  // The resource timelines the proxy publishes, paced by hand so the test
  // does not depend on thread scheduling.
  trace::ResourceSampler sampler;
  proxy_->register_resource_probes(sampler);
  ASSERT_GE(sampler.probe_count(), 4u);

  constexpr int kCalls = 8;
  const auto* put_desc = pool_.find_message("kv.PutRequest");
  for (int i = 0; i < kCalls; ++i) {
    proto::DynamicMessage m(put_desc);
    m.set_string(put_desc->field_by_name("key"), "k" + std::to_string(i));
    m.set_string(put_desc->field_by_name("value"), "v" + std::to_string(i));
    Bytes wire = proto::WireCodec::serialize(m);
    auto resp = (*chan)->call("kv.KvStore/Put", ByteSpan(wire));
    ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
    sampler.sample_once();
  }

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (collector.traces_completed() < kCalls &&
         std::chrono::steady_clock::now() < deadline) {
    collector.collect();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(collector.traces_completed(), static_cast<uint64_t>(kCalls));
  EXPECT_GE(recorder.captured_total(), 1u);

  // The in-band scrape: one raw xRPC to the built-in endpoint, answered
  // from the default registry without touching the handler.
  auto scrape = (*chan)->call("dpurpc.Metrics/Scrape", ByteSpan());
  ASSERT_TRUE(scrape.is_ok()) << scrape.status().to_string();
  std::string text(reinterpret_cast<const char*>(scrape->data()),
                   scrape->size());

  // Satellite (a): derived per-stage quantiles are first-class series.
  for (const char* line : {
           "dpurpc_trace_stage_seconds_p50{stage=\"worker_decode\"}",
           "dpurpc_trace_stage_seconds_p95{stage=\"worker_decode\"}",
           "dpurpc_trace_stage_seconds_p99{stage=\"worker_decode\"}",
           "dpurpc_trace_stage_seconds_p99{stage=\"request\"}",
           "dpurpc_trace_stage_seconds_p99{stage=\"rdma_inbound\"}",
       }) {
    EXPECT_NE(text.find(line), std::string::npos) << line;
  }
  // The sampler's gauges, labeled by probe, at their latest sample.
  EXPECT_NE(text.find("dpurpc_resource_occupancy{probe=\"lane0_"),
            std::string::npos);
  EXPECT_NE(text.find("_busy_fraction\"}"), std::string::npos);
  // The captured outlier rides the e2e histogram as an OpenMetrics-style
  // exemplar: bucket line annotated with the trace id.
  EXPECT_NE(text.find(" # {trace_id=\""), std::string::npos);
  // Collector health is scrapeable (and what fig8/fig12 gate on).
  EXPECT_NE(text.find("dpurpc_trace_orphans_dropped_total"),
            std::string::npos);

  // The recorder's dump references real datapath stages and ids.
  std::string dump = recorder.to_json();
  EXPECT_NE(dump.find("\"trigger\":\"manual\""), std::string::npos);
  EXPECT_NE(dump.find("worker_decode"), std::string::npos);

  // One timeline, two kinds of tracks: spans (ph:"X") from the retained
  // trees and resource counters (ph:"C") from the sampler.
  std::string timeline = trace::TraceCollector::to_chrome_json(
      collector.retained(), collector.global_events(), sampler.series());
  EXPECT_NE(timeline.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(timeline.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(timeline.find("lane0_outstanding_jobs"), std::string::npos);
  EXPECT_NE(timeline.find("\"name\":\"worker_decode\""), std::string::npos);
}

}  // namespace
}  // namespace dpurpc::grpccompat
