// Tests for the multi-connection deployment (§III.C at the paper's scale
// shape): a DpuProxy with one dedicated poller lane per connection and a
// HostEnginePool serving all connections from one shared-channel poller.
#include <gtest/gtest.h>

#include <thread>

#include "common/rng.hpp"
#include "grpccompat/dpu_proxy.hpp"
#include "grpccompat/engine_pool.hpp"
#include "proto/schema_parser.hpp"
#include "xrpc/channel.hpp"

namespace dpurpc::grpccompat {
namespace {

constexpr std::string_view kSchema = R"(
syntax = "proto3";
package ml;
message Req { string key = 1; uint32 n = 2; }
message Resp { string echoed = 1; uint64 doubled = 2; }
service Worker { rpc Work (Req) returns (Resp); }
)";

TEST(MultiLane, ProxyLanesAndHostPoolServeConcurrently) {
  constexpr size_t kLanes = 3;
  constexpr int kClients = 4;
  constexpr int kCallsEach = 40;

  proto::DescriptorPool pool;
  proto::SchemaParser parser(pool);
  ASSERT_TRUE(parser.parse_and_link(kSchema).is_ok());
  auto manifest = OffloadManifest::build(pool, arena::StdLibFlavor::kLibstdcpp);
  ASSERT_TRUE(manifest.is_ok());

  // The shared channel must be declared BEFORE the connections that use
  // it (they touch it from their destructors).
  auto shared_channel = std::make_unique<simverbs::CompletionChannel>();

  // kLanes independent RDMA connections, paper-style.
  simverbs::ProtectionDomain host_pd("host");
  std::vector<std::unique_ptr<simverbs::ProtectionDomain>> dpu_pds;
  std::vector<std::unique_ptr<rdmarpc::Connection>> dpu_conns, host_conns;
  std::vector<rdmarpc::Connection*> dpu_ptrs, host_ptrs;

  rdmarpc::ConnectionConfig host_cfg;
  host_cfg.shared_channel = shared_channel.get();

  for (size_t i = 0; i < kLanes; ++i) {
    dpu_pds.push_back(std::make_unique<simverbs::ProtectionDomain>(
        "dpu" + std::to_string(i)));
    dpu_conns.push_back(std::make_unique<rdmarpc::Connection>(
        rdmarpc::Role::kClient, dpu_pds.back().get(), rdmarpc::ConnectionConfig{}));
    host_conns.push_back(std::make_unique<rdmarpc::Connection>(
        rdmarpc::Role::kServer, &host_pd, host_cfg));
    ASSERT_TRUE(rdmarpc::Connection::connect(*dpu_conns.back(), *host_conns.back())
                    .is_ok());
    dpu_ptrs.push_back(dpu_conns.back().get());
    host_ptrs.push_back(host_conns.back().get());
  }

  HostEnginePool host(host_ptrs, &*manifest, &pool);
  ASSERT_TRUE(host.register_unary_inplace(
                      "ml.Worker/Work",
                      [](const ServerContext&, const adt::LayoutView& req,
                         adt::LayoutBuilder& resp) {
                        DPURPC_RETURN_IF_ERROR(
                            resp.set_string(1, std::string(req.get_string(1))));
                        return resp.set_uint64(2, req.get_uint64(2) * 2);
                      })
                  .is_ok());
  EXPECT_EQ(host.size(), kLanes);

  // One host poller thread sleeping on the external shared channel.
  std::atomic<bool> stop{false};
  std::thread host_thread([&] {
    while (!stop.load()) {
      auto n = host.event_loop_once();
      if (!n.is_ok()) return;
      if (*n == 0) shared_channel->wait(1);
    }
  });

  DpuProxy proxy(dpu_ptrs, &*manifest);
  EXPECT_EQ(proxy.lane_count(), kLanes);
  auto port = proxy.start();
  ASSERT_TRUE(port.is_ok());

  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto chan = xrpc::Channel::connect(*port);
      ASSERT_TRUE(chan.is_ok());
      const auto* req_desc = pool.find_message("ml.Req");
      const auto* resp_desc = pool.find_message("ml.Resp");
      for (int i = 0; i < kCallsEach; ++i) {
        proto::DynamicMessage q(req_desc);
        std::string key = "c" + std::to_string(c) + "-" + std::to_string(i);
        q.set_string(req_desc->field_by_name("key"), key);
        q.set_uint64(req_desc->field_by_name("n"), static_cast<uint64_t>(i));
        Bytes wire = proto::WireCodec::serialize(q);
        auto resp = (*chan)->call("ml.Worker/Work", ByteSpan(wire));
        ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
        proto::DynamicMessage r(resp_desc);
        ASSERT_TRUE(proto::WireCodec::parse(ByteSpan(*resp), r).is_ok());
        EXPECT_EQ(r.get_string(resp_desc->field_by_name("echoed")), key);
        EXPECT_EQ(r.get_uint64(resp_desc->field_by_name("doubled")),
                  static_cast<uint64_t>(i) * 2);
        ++ok;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients * kCallsEach);

  // Round-robin actually spread the load: every lane carried traffic.
  uint64_t total = 0;
  for (size_t i = 0; i < kLanes; ++i) {
    EXPECT_GT(proxy.lane_requests(i), 0u) << "lane " << i;
    total += proxy.lane_requests(i);
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kClients) * kCallsEach);
  EXPECT_EQ(host.requests_served(), total);

  proxy.stop();
  stop.store(true);
  shared_channel->interrupt();
  host_thread.join();
}

// Lane sharding (DESIGN.md §3.14): one proxy with MORE connections than
// decode workers, hammered by concurrent clients, so the per-lane rings
// multiplex onto a smaller worker pool and stealing kicks in. Verifies
// the decode ledger balances: every request was decoded exactly once,
// either by a pool worker or by the lane's inline spill path.
TEST(MultiLane, CodecPoolShardsAcrossFewerWorkersThanLanes) {
  constexpr size_t kLanes = 4;
  constexpr int kWorkers = 2;  // fewer workers than lanes, deliberately
  constexpr int kClients = 6;
  constexpr int kCallsEach = 50;

  proto::DescriptorPool pool;
  proto::SchemaParser parser(pool);
  ASSERT_TRUE(parser.parse_and_link(kSchema).is_ok());
  auto manifest = OffloadManifest::build(pool, arena::StdLibFlavor::kLibstdcpp);
  ASSERT_TRUE(manifest.is_ok());

  auto shared_channel = std::make_unique<simverbs::CompletionChannel>();
  simverbs::ProtectionDomain host_pd("host");
  std::vector<std::unique_ptr<simverbs::ProtectionDomain>> dpu_pds;
  std::vector<std::unique_ptr<rdmarpc::Connection>> dpu_conns, host_conns;
  std::vector<rdmarpc::Connection*> dpu_ptrs, host_ptrs;
  rdmarpc::ConnectionConfig host_cfg;
  host_cfg.shared_channel = shared_channel.get();
  for (size_t i = 0; i < kLanes; ++i) {
    dpu_pds.push_back(std::make_unique<simverbs::ProtectionDomain>(
        "dpu" + std::to_string(i)));
    dpu_conns.push_back(std::make_unique<rdmarpc::Connection>(
        rdmarpc::Role::kClient, dpu_pds.back().get(), rdmarpc::ConnectionConfig{}));
    host_conns.push_back(std::make_unique<rdmarpc::Connection>(
        rdmarpc::Role::kServer, &host_pd, host_cfg));
    ASSERT_TRUE(rdmarpc::Connection::connect(*dpu_conns.back(), *host_conns.back())
                    .is_ok());
    dpu_ptrs.push_back(dpu_conns.back().get());
    host_ptrs.push_back(host_conns.back().get());
  }

  HostEnginePool host(host_ptrs, &*manifest, &pool);
  ASSERT_TRUE(host.register_unary_inplace(
                      "ml.Worker/Work",
                      [](const ServerContext&, const adt::LayoutView& req,
                         adt::LayoutBuilder& resp) {
                        DPURPC_RETURN_IF_ERROR(
                            resp.set_string(1, std::string(req.get_string(1))));
                        return resp.set_uint64(2, req.get_uint64(2) * 2);
                      })
                  .is_ok());

  std::atomic<bool> stop{false};
  std::thread host_thread([&] {
    while (!stop.load()) {
      auto n = host.event_loop_once();
      if (!n.is_ok()) return;
      if (*n == 0) shared_channel->wait(1);
    }
  });

  DpuProxy proxy(dpu_ptrs, &*manifest, {}, kWorkers);
  EXPECT_EQ(proxy.codec_pool().worker_count(), static_cast<size_t>(kWorkers));
  EXPECT_EQ(proxy.codec_pool().lane_count(), kLanes);
  auto port = proxy.start();
  ASSERT_TRUE(port.is_ok());

  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto chan = xrpc::Channel::connect(*port);
      ASSERT_TRUE(chan.is_ok());
      const auto* req_desc = pool.find_message("ml.Req");
      const auto* resp_desc = pool.find_message("ml.Resp");
      for (int i = 0; i < kCallsEach; ++i) {
        proto::DynamicMessage q(req_desc);
        std::string key = "w" + std::to_string(c) + "-" + std::to_string(i) +
                          std::string(static_cast<size_t>(i % 7) * 16, 'p');
        q.set_string(req_desc->field_by_name("key"), key);
        q.set_uint64(req_desc->field_by_name("n"), static_cast<uint64_t>(i));
        Bytes wire = proto::WireCodec::serialize(q);
        auto resp = (*chan)->call("ml.Worker/Work", ByteSpan(wire));
        ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
        proto::DynamicMessage r(resp_desc);
        ASSERT_TRUE(proto::WireCodec::parse(ByteSpan(*resp), r).is_ok());
        EXPECT_EQ(r.get_string(resp_desc->field_by_name("echoed")), key);
        ++ok;
      }
    });
  }
  for (auto& t : clients) t.join();
  const auto total = static_cast<uint64_t>(kClients) * kCallsEach;
  EXPECT_EQ(ok.load(), static_cast<int>(total));

  // The codec ledger balances, both directions: per-worker job counters
  // plus the inline spill paths account for every request decode and
  // every in-place reply serialize exactly once.
  uint64_t pool_jobs = 0, pool_encodes = 0;
  for (size_t w = 0; w < proxy.codec_pool().worker_count(); ++w) {
    const auto stats = proxy.codec_pool().worker_stats(w);
    pool_jobs += stats.jobs;
    pool_encodes += stats.encodes;
    EXPECT_EQ(stats.failures, 0u) << "worker " << w;
  }
  EXPECT_EQ(pool_jobs, proxy.codec_pool().total_jobs());
  const uint64_t pool_decodes = pool_jobs - pool_encodes;
  EXPECT_EQ(pool_decodes + proxy.stats().inline_decodes.load(), total);
  EXPECT_EQ(pool_encodes + proxy.stats().inline_serializes.load(), total);
  EXPECT_EQ(pool_encodes, proxy.stats().offloaded_responses.load());
  EXPECT_EQ(proxy.stats().offloaded_requests.load(), total);

  // Bounds-safe introspection: an out-of-range lane reads as zero (the
  // monitor scrapes this concurrently with shutdown; it must never throw).
  EXPECT_EQ(proxy.lane_requests(999), 0u);
  uint64_t lane_total = 0;
  for (size_t i = 0; i < kLanes; ++i) lane_total += proxy.lane_requests(i);
  EXPECT_EQ(lane_total, total);

  proxy.stop();
  stop.store(true);
  shared_channel->interrupt();
  host_thread.join();
}

}  // namespace
}  // namespace dpurpc::grpccompat
