// Tests for the ADT-driven object codec (serializer + LayoutBuilder): the
// response-serialization-offload extension (§III.A "this can be
// implemented similarly in our design"). The key property is the
// round-trip triangle:
//
//   DynamicMessage --WireCodec--> wire --ArenaDeserializer--> object
//        ^                                                       |
//        '------------------- ObjectSerializer ------------------'
//
// with byte-identical wire output (canonical field order in, canonical
// field order out).
#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "adt/arena_deserializer.hpp"
#include "adt/object_codec.hpp"
#include "common/rng.hpp"
#include "proto/dynamic_message.hpp"
#include "proto/schema_parser.hpp"

namespace dpurpc::adt {
namespace {

using arena::AddressTranslator;
using arena::OwningArena;
using arena::StdLibFlavor;
using proto::DynamicMessage;
using proto::WireCodec;

constexpr std::string_view kSchema = R"(
syntax = "proto3";
package oc;
message Leaf {
  int32 a = 1;
  sint64 b = 2;
  bool c = 3;
  float d = 4;
  double e = 5;
  fixed32 f = 6;
  sfixed64 g = 7;
  string s = 8;
  bytes raw = 9;
}
message Node {
  Leaf leaf = 1;
  repeated Leaf items = 2;
  repeated uint32 packed = 3;
  repeated string names = 4;
  repeated sint32 zz = 5;
  uint64 id = 6;
}
)";

class ObjectCodecFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    proto::SchemaParser parser(pool_);
    ASSERT_TRUE(parser.parse_and_link(kSchema).is_ok());
    DescriptorAdtBuilder builder(StdLibFlavor::kLibstdcpp);
    leaf_ = *builder.add_message(pool_.find_message("oc.Leaf"));
    node_ = *builder.add_message(pool_.find_message("oc.Node"));
    adt_ = std::move(builder).take();
    adt_.set_fingerprint(AbiFingerprint::current(StdLibFlavor::kLibstdcpp));
  }

  proto::DescriptorPool pool_;
  Adt adt_;
  uint32_t leaf_ = 0, node_ = 0;
};

DynamicMessage random_node(const proto::DescriptorPool& pool, std::mt19937_64& rng) {
  const auto* node = pool.find_message("oc.Node");
  const auto* leaf = pool.find_message("oc.Leaf");
  DynamicMessage m(node);
  auto fill_leaf = [&](DynamicMessage* l) {
    l->set_int64(leaf->field_by_name("a"), static_cast<int32_t>(rng()));
    l->set_int64(leaf->field_by_name("b"), static_cast<int64_t>(rng()));
    l->set_uint64(leaf->field_by_name("c"), rng() % 2);
    l->set_float(leaf->field_by_name("d"), static_cast<float>(rng() % 1000) / 8.0f);
    l->set_double(leaf->field_by_name("e"), static_cast<double>(rng() % 100000) / 3.0);
    l->set_uint64(leaf->field_by_name("f"), static_cast<uint32_t>(rng()));
    l->set_int64(leaf->field_by_name("g"), static_cast<int64_t>(rng()));
    l->set_string(leaf->field_by_name("s"), random_ascii(rng, rng() % 40));
    l->set_string(leaf->field_by_name("raw"), random_bytes(rng, rng() % 24));
  };
  if (rng() % 2) fill_leaf(m.mutable_message(node->field_by_name("leaf")));
  size_t items = rng() % 5;
  for (size_t i = 0; i < items; ++i) fill_leaf(m.add_message(node->field_by_name("items")));
  size_t packed = rng() % 40;
  SkewedVarintDistribution dist;
  for (size_t i = 0; i < packed; ++i) m.add_uint64(node->field_by_name("packed"), dist(rng));
  size_t names = rng() % 4;
  for (size_t i = 0; i < names; ++i) {
    m.add_string(node->field_by_name("names"), random_ascii(rng, rng() % 30));
  }
  size_t zz = rng() % 10;
  for (size_t i = 0; i < zz; ++i) {
    m.add_int64(node->field_by_name("zz"), static_cast<int32_t>(rng()));
  }
  if (rng() % 2) m.set_uint64(node->field_by_name("id"), rng());
  return m;
}

// ---------------------------------------------------------- serializer

TEST_F(ObjectCodecFixture, RoundTripIsByteIdentical) {
  std::mt19937_64 rng(kDefaultSeed);
  ArenaDeserializer deser(&adt_);
  ObjectSerializer ser(&adt_);
  OwningArena arena(1 << 18);
  for (int iter = 0; iter < 200; ++iter) {
    arena.reset();
    DynamicMessage m = random_node(pool_, rng);
    Bytes wire = WireCodec::serialize(m);

    auto obj = deser.deserialize(node_, ByteSpan(wire), arena, {});
    ASSERT_TRUE(obj.is_ok()) << obj.status().to_string();

    Bytes back;
    auto st = ser.serialize(ObjectRef(node_, *obj), back);
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    ASSERT_EQ(back, wire) << "iteration " << iter;

    auto size = ser.byte_size(ObjectRef(node_, *obj));
    ASSERT_TRUE(size.is_ok());
    EXPECT_EQ(*size, wire.size());
  }
}

TEST_F(ObjectCodecFixture, EmptyObjectSerializesToNothing) {
  OwningArena arena(1 << 12);
  ArenaDeserializer deser(&adt_);
  auto obj = deser.deserialize(node_, {}, arena, {});
  ASSERT_TRUE(obj.is_ok());
  ObjectSerializer ser(&adt_);
  Bytes out;
  ASSERT_TRUE(ser.serialize(ObjectRef(node_, *obj), out).is_ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(*ser.byte_size(ObjectRef(node_, *obj)), 0u);
}

TEST_F(ObjectCodecFixture, UnknownClassRejected) {
  ObjectSerializer ser(&adt_);
  Bytes out;
  char dummy[64] = {};
  EXPECT_EQ(ser.serialize(ObjectRef(999, dummy), out).code(), Code::kNotFound);
  EXPECT_FALSE(ser.byte_size(ObjectRef(999, dummy)).is_ok());
}

// ------------------------------------------------------- LayoutBuilder

TEST_F(ObjectCodecFixture, BuilderSetsScalarsAndStrings) {
  OwningArena arena(1 << 14);
  auto b = LayoutBuilder::create(&adt_, leaf_, &arena);
  ASSERT_TRUE(b.is_ok());
  ASSERT_TRUE(b->set_int64(1, -77).is_ok());
  ASSERT_TRUE(b->set_int64(2, -123456789).is_ok());  // sint64
  ASSERT_TRUE(b->set_bool(3, true).is_ok());
  ASSERT_TRUE(b->set_float(4, 2.5f).is_ok());
  ASSERT_TRUE(b->set_double(5, -0.125).is_ok());
  ASSERT_TRUE(b->set_string(8, "a string that is longer than SSO").is_ok());

  LayoutView v = b->view();
  EXPECT_EQ(v.get_int64(1), -77);
  EXPECT_EQ(v.get_int64(2), -123456789);
  EXPECT_TRUE(v.get_bool(3));
  EXPECT_FLOAT_EQ(v.get_float(4), 2.5f);
  EXPECT_DOUBLE_EQ(v.get_double(5), -0.125);
  EXPECT_EQ(v.get_string(8), "a string that is longer than SSO");
  EXPECT_TRUE(v.has(1));
  EXPECT_FALSE(v.has(6));
}

TEST_F(ObjectCodecFixture, BuilderTypeChecks) {
  OwningArena arena(1 << 12);
  auto b = LayoutBuilder::create(&adt_, leaf_, &arena);
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(b->set_string(1, "x").code(), Code::kInvalidArgument);  // int field
  EXPECT_EQ(b->set_float(5, 1.0f).code(), Code::kInvalidArgument);  // double field
  EXPECT_EQ(b->set_int64(99, 1).code(), Code::kNotFound);
  EXPECT_EQ(b->add_string(8, "x").code(), Code::kInvalidArgument);  // not repeated
}

TEST_F(ObjectCodecFixture, BuilderRepeatedAndNested) {
  OwningArena arena(1 << 16);
  auto b = LayoutBuilder::create(&adt_, node_, &arena);
  ASSERT_TRUE(b.is_ok());
  for (uint64_t i = 0; i < 100; ++i) ASSERT_TRUE(b->add_scalar(3, i * 3).is_ok());
  ASSERT_TRUE(b->add_string(4, "first").is_ok());
  ASSERT_TRUE(b->add_string(4, std::string(50, 'n')).is_ok());
  auto leaf1 = b->add_message(2);
  ASSERT_TRUE(leaf1.is_ok());
  ASSERT_TRUE(leaf1->set_int64(1, 11).is_ok());
  auto leaf2 = b->add_message(2);
  ASSERT_TRUE(leaf2.is_ok());
  ASSERT_TRUE(leaf2->set_int64(1, 22).is_ok());
  auto head = b->mutable_message(1);
  ASSERT_TRUE(head.is_ok());
  ASSERT_TRUE(head->set_string(8, "head leaf").is_ok());
  // mutable_message twice returns the same instance.
  auto head2 = b->mutable_message(1);
  ASSERT_TRUE(head2.is_ok());
  EXPECT_EQ(head->object(), head2->object());

  LayoutView v = b->view();
  ASSERT_EQ(v.repeated_size(3), 100u);
  EXPECT_EQ(v.repeated_uint64(3, 99), 297u);
  ASSERT_EQ(v.repeated_size(4), 2u);
  EXPECT_EQ(v.repeated_string(4, 1), std::string(50, 'n'));
  ASSERT_EQ(v.repeated_size(2), 2u);
  EXPECT_EQ(v.repeated_message(2, 0).get_int64(1), 11);
  EXPECT_EQ(v.repeated_message(2, 1).get_int64(1), 22);
  EXPECT_EQ(v.get_message(1).get_string(8), "head leaf");
}

TEST_F(ObjectCodecFixture, BuiltObjectSerializesLikeDynamicMessage) {
  OwningArena arena(1 << 16);
  auto b = LayoutBuilder::create(&adt_, node_, &arena);
  ASSERT_TRUE(b.is_ok());
  ASSERT_TRUE(b->set_uint64(6, 424242).is_ok());
  for (uint64_t i = 1; i <= 5; ++i) ASSERT_TRUE(b->add_scalar(3, i * 1000).is_ok());
  ASSERT_TRUE(b->add_string(4, "alpha").is_ok());
  auto leaf = b->add_message(2);
  ASSERT_TRUE(leaf.is_ok());
  ASSERT_TRUE(leaf->set_int64(1, 9).is_ok());
  ASSERT_TRUE(leaf->set_string(8, "leafy").is_ok());

  ObjectSerializer ser(&adt_);
  Bytes from_object;
  // ObjectRef converts straight from the builder: no index to mismatch.
  ASSERT_TRUE(ser.serialize(ObjectRef(*b), from_object).is_ok());

  const auto* node_desc = pool_.find_message("oc.Node");
  const auto* leaf_desc = pool_.find_message("oc.Leaf");
  DynamicMessage m(node_desc);
  m.set_uint64(node_desc->field_by_name("id"), 424242);
  for (uint64_t i = 1; i <= 5; ++i) m.add_uint64(node_desc->field_by_name("packed"), i * 1000);
  m.add_string(node_desc->field_by_name("names"), "alpha");
  auto* l = m.add_message(node_desc->field_by_name("items"));
  l->set_int64(leaf_desc->field_by_name("a"), 9);
  l->set_string(leaf_desc->field_by_name("s"), "leafy");

  EXPECT_EQ(from_object, WireCodec::serialize(m));
}

TEST_F(ObjectCodecFixture, BuilderWithTranslationSurvivesBufferCopy) {
  // Build a response object in a "send buffer" with host-space pointers,
  // copy it (the RDMA write), serialize it on the receiver: the offloaded
  // response-serialization path.
  constexpr size_t kBuf = 1 << 15;
  std::vector<std::byte> sbuf(kBuf), rbuf(kBuf);
  AddressTranslator xlate{reinterpret_cast<intptr_t>(rbuf.data()) -
                          reinterpret_cast<intptr_t>(sbuf.data())};
  arena::Arena send_arena(sbuf.data(), kBuf);

  auto b = LayoutBuilder::create(&adt_, node_, &send_arena, xlate);
  ASSERT_TRUE(b.is_ok());
  ASSERT_TRUE(b->set_uint64(6, 777).is_ok());
  for (uint64_t i = 0; i < 20; ++i) ASSERT_TRUE(b->add_scalar(3, i).is_ok());
  ASSERT_TRUE(b->add_string(4, std::string(40, 'z')).is_ok());
  auto leaf = b->add_message(2);
  ASSERT_TRUE(leaf.is_ok());
  ASSERT_TRUE(leaf->set_int64(1, 5).is_ok());

  std::memcpy(rbuf.data(), sbuf.data(), kBuf);  // the RDMA write

  auto* remote_obj =
      reinterpret_cast<std::byte*>(xlate.translate_addr(b->object()));
  ObjectSerializer ser(&adt_);
  Bytes wire;
  ASSERT_TRUE(ser.serialize(ObjectRef(node_, remote_obj), wire).is_ok());

  // Parse back with the reference codec and verify content.
  const auto* node_desc = pool_.find_message("oc.Node");
  DynamicMessage out(node_desc);
  ASSERT_TRUE(WireCodec::parse(ByteSpan(wire), out).is_ok());
  EXPECT_EQ(out.get_uint64(node_desc->field_by_name("id")), 777u);
  EXPECT_EQ(out.repeated_size(node_desc->field_by_name("packed")), 20u);
  EXPECT_EQ(out.get_repeated_string(node_desc->field_by_name("names"), 0),
            std::string(40, 'z'));
}

TEST_F(ObjectCodecFixture, BuilderArenaExhaustion) {
  OwningArena arena(192);  // barely fits the instance
  auto b = LayoutBuilder::create(&adt_, node_, &arena);
  ASSERT_TRUE(b.is_ok());
  Status st = Status::ok();
  for (int i = 0; i < 1000 && st.is_ok(); ++i) st = b->add_scalar(3, i);
  EXPECT_EQ(st.code(), Code::kResourceExhausted);
}

}  // namespace
}  // namespace dpurpc::adt
