// Tests for the codec pool (DESIGN.md §3.14/§3.16): both codec
// directions sharded across the simulated DPU core pool.
//
// Decode direction, the load-bearing property is relocation parity: a
// worker decodes into a private scratch slice with a zero-delta
// translator, the consumer memcpys the slice elsewhere and calls
// ArenaDeserializer::relocate() — and the result must be
// indistinguishable from having deserialized straight into the
// destination. Encode direction, it is serialize parity: a worker running
// the compiled serialize plan over a fully-local object must produce the
// exact bytes the direct-path ObjectSerializer (itself bit-identical to
// the reference WireCodec, tests/serialize_plan_test.cpp) produces.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "adt/arena_deserializer.hpp"
#include "adt/object_codec.hpp"
#include "common/rng.hpp"
#include "dpu/codec_pool.hpp"
#include "proto/dynamic_message.hpp"
#include "proto/schema_parser.hpp"

namespace dpurpc::dpu {
namespace {

using arena::AddressTranslator;
using arena::OwningArena;
using arena::StdLibFlavor;
using proto::DynamicMessage;
using proto::WireCodec;

constexpr std::string_view kSchema = R"(
syntax = "proto3";
package dp;
message Leaf { int32 a = 1; string s = 2; repeated uint32 packed = 3; }
message Node {
  Leaf head = 1;
  repeated Leaf items = 2;
  repeated string names = 3;
  string label = 4;
  uint64 id = 5;
}
)";

class CodecPoolFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    proto::SchemaParser parser(pool_);
    ASSERT_TRUE(parser.parse_and_link(kSchema).is_ok());
    adt::DescriptorAdtBuilder builder(StdLibFlavor::kLibstdcpp);
    leaf_ = *builder.add_message(pool_.find_message("dp.Leaf"));
    node_ = *builder.add_message(pool_.find_message("dp.Node"));
    adt_ = std::move(builder).take();
    adt_.set_fingerprint(adt::AbiFingerprint::current(StdLibFlavor::kLibstdcpp));
    deser_ = std::make_unique<adt::ArenaDeserializer>(&adt_);
    ser_ = std::make_unique<adt::ObjectSerializer>(&adt_);
  }

  Bytes node_wire(uint64_t seed) const {
    std::mt19937_64 rng(seed);
    const auto* node = pool_.find_message("dp.Node");
    const auto* leaf = pool_.find_message("dp.Leaf");
    DynamicMessage m(node);
    auto fill = [&](DynamicMessage* l, size_t strlen_hint) {
      l->set_int64(leaf->field_by_name("a"), static_cast<int32_t>(rng()));
      // Mix SSO-short and heap-long strings: both relocation forms.
      l->set_string(leaf->field_by_name("s"), random_ascii(rng, strlen_hint));
      for (int i = 0; i < 5; ++i)
        l->add_uint64(leaf->field_by_name("packed"), rng() % 1000);
    };
    fill(m.mutable_message(node->field_by_name("head")), 40);
    for (int i = 0; i < 3; ++i)
      fill(m.add_message(node->field_by_name("items")), i % 2 == 0 ? 6 : 64);
    m.add_string(node->field_by_name("names"), "tiny");
    m.add_string(node->field_by_name("names"),
                 std::string(100, 'x') + std::to_string(rng()));
    m.set_string(node->field_by_name("label"), "label");
    m.set_uint64(node->field_by_name("id"), rng());
    return WireCodec::serialize(m);
  }

  /// Canonical wire via the direct (non-pool) path: deserialize into a
  /// local arena, re-serialize.
  Bytes oracle_roundtrip(uint32_t class_index, const Bytes& wire) {
    OwningArena arena(1 << 20);
    auto obj = deser_->deserialize(class_index, ByteSpan(wire), arena, {});
    EXPECT_TRUE(obj.is_ok()) << obj.status().to_string();
    Bytes out;
    EXPECT_TRUE(ser_->serialize(adt::ObjectRef(class_index, *obj), out).is_ok());
    return out;
  }

  proto::DescriptorPool pool_;
  adt::Adt adt_;
  std::unique_ptr<adt::ArenaDeserializer> deser_;
  std::unique_ptr<adt::ObjectSerializer> ser_;
  uint32_t leaf_ = 0, node_ = 0;
};

/// Drain helper: pop from every lane until `n` results arrived.
std::vector<CodecResult> drain(CodecPool& pool, size_t n) {
  std::vector<CodecResult> out;
  while (out.size() < n) {
    for (size_t lane = 0; lane < pool.lane_count(); ++lane) {
      CodecResult r;
      while (pool.try_pop_result(lane, r)) out.push_back(std::move(r));
    }
  }
  return out;
}

TEST_F(CodecPoolFixture, RelocatedDecodeMatchesSerializeOracle) {
  CodecPool::Options opts;
  opts.workers = 2;
  CodecPool pool(deser_.get(), ser_.get(), /*lanes=*/2, opts);
  pool.start();

  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const Bytes wire = node_wire(seed);
    const Bytes expected = oracle_roundtrip(node_, wire);

    CodecJob job;
    job.kind = JobKind::kDecode;
    job.class_index = node_;
    job.cookie = seed;
    job.wire = wire;
    const size_t lane = seed % 2;
    ASSERT_TRUE(pool.submit(lane, job));
    CodecResult r = std::move(drain(pool, 1)[0]);
    ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
    EXPECT_EQ(r.kind, JobKind::kDecode);
    EXPECT_EQ(r.cookie, seed);
    ASSERT_GT(r.used, 0u);

    // Ship the slice the way the proxy does: memcpy to an 8-aligned
    // destination at a different address, then relocate. The +8 skew
    // keeps the copy off 64-byte alignment, so any pointer the decoder
    // failed to register would land visibly wrong.
    std::byte* raw = static_cast<std::byte*>(
        std::aligned_alloc(64, (r.used + 72 + 63) / 64 * 64));
    ASSERT_NE(raw, nullptr);
    std::byte* dst = raw + 8;
    std::memcpy(dst, r.slice.data(), r.used);
    const ptrdiff_t delta = dst - r.slice.data();
    adt::ArenaDeserializer::SliceRelocation rel;
    rel.old_begin = r.slice.data();
    rel.old_end = r.slice.data() + r.used;
    rel.move_delta = delta;
    rel.publish_delta = delta;  // local consumer: published == local
    deser_->relocate(node_, dst + r.obj_offset, rel);

    // Poison the original slice: the relocated tree must not reference it.
    std::memset(r.slice.data(), 0xAB, r.used);

    Bytes relocated_wire;
    ASSERT_TRUE(
        ser_->serialize(adt::ObjectRef(node_, dst + r.obj_offset), relocated_wire)
            .is_ok());
    EXPECT_EQ(relocated_wire, expected) << "seed " << seed;
    std::free(raw);
  }
  pool.stop();
}

// The response direction's load-bearing property: a pool worker running
// the compiled serialize plan over a fully-local tree produces bytes
// bit-identical to the direct-path serializer (and hence to WireCodec).
// The object is produced by the pool's own decode direction — exactly the
// proxy's round trip.
TEST_F(CodecPoolFixture, EncodedObjectMatchesSerializeOracle) {
  CodecPool::Options opts;
  opts.workers = 2;
  CodecPool pool(deser_.get(), ser_.get(), /*lanes=*/2, opts);
  pool.start();

  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const Bytes wire = node_wire(seed);

    CodecJob decode_job;
    decode_job.kind = JobKind::kDecode;
    decode_job.class_index = node_;
    decode_job.cookie = seed;
    decode_job.wire = wire;
    ASSERT_TRUE(pool.submit(seed % 2, decode_job));
    CodecResult decoded = std::move(drain(pool, 1)[0]);
    ASSERT_TRUE(decoded.status.is_ok()) << decoded.status.to_string();

    // Direct-path oracle over the very same object, before the slice's
    // ownership moves into the encode job.
    Bytes expected;
    ASSERT_TRUE(ser_->serialize(adt::ObjectRef(node_, decoded.slice.data() +
                                                          decoded.obj_offset),
                                expected)
                    .is_ok());

    CodecJob encode_job;
    encode_job.kind = JobKind::kEncode;
    encode_job.class_index = node_;
    encode_job.cookie = 1000 + seed;
    encode_job.object = std::move(decoded.slice);
    encode_job.object_used = decoded.used;
    encode_job.obj_offset = decoded.obj_offset;
    ASSERT_TRUE(pool.submit(seed % 2, encode_job));
    CodecResult encoded = std::move(drain(pool, 1)[0]);
    ASSERT_TRUE(encoded.status.is_ok()) << encoded.status.to_string();
    EXPECT_EQ(encoded.kind, JobKind::kEncode);
    EXPECT_EQ(encoded.cookie, 1000 + seed);
    EXPECT_EQ(encoded.wire, expected) << "seed " << seed;
  }
  pool.stop();

  uint64_t encodes = 0, bytes_encoded = 0;
  for (size_t w = 0; w < pool.worker_count(); ++w) {
    const auto stats = pool.worker_stats(w);
    encodes += stats.encodes;
    bytes_encoded += stats.bytes_encoded;
    EXPECT_EQ(stats.failures, 0u) << "worker " << w;
  }
  EXPECT_EQ(encodes, 8u);
  EXPECT_GT(bytes_encoded, 0u);
}

// Parity under randomized *schemas*, not just randomized payloads: build
// fresh message shapes (field kinds, counts and numbers drawn from a
// seeded rng), round-trip wire → pool decode → pool encode, and demand
// the canonical bytes the direct path produces.
TEST_F(CodecPoolFixture, RandomizedSchemasRoundTripBitForBit) {
  std::mt19937_64 rng(0xC0DEC);
  for (int round = 0; round < 6; ++round) {
    const int nfields = 1 + static_cast<int>(rng() % 8);
    std::string schema = "syntax = \"proto3\";\npackage rs" +
                         std::to_string(round) + ";\nmessage M {\n";
    std::vector<int> kinds;
    for (int i = 1; i <= nfields; ++i) {
      const int kind = static_cast<int>(rng() % 5);
      kinds.push_back(kind);
      const char* type = kind == 0   ? "int64 "
                         : kind == 1 ? "uint64 "
                         : kind == 2 ? "string "
                         : kind == 3 ? "repeated uint32 "
                                     : "repeated string ";
      schema += std::string("  ") + type + "f" + std::to_string(i) + " = " +
                std::to_string(i) + ";\n";
    }
    schema += "}\n";

    proto::DescriptorPool pool;
    proto::SchemaParser parser(pool);
    ASSERT_TRUE(parser.parse_and_link(schema).is_ok()) << schema;
    adt::DescriptorAdtBuilder builder(StdLibFlavor::kLibstdcpp);
    const std::string msg_name = "rs" + std::to_string(round) + ".M";
    const auto* desc = pool.find_message(msg_name);
    ASSERT_NE(desc, nullptr);
    uint32_t cls = *builder.add_message(desc);
    adt::Adt adt = std::move(builder).take();
    adt.set_fingerprint(adt::AbiFingerprint::current(StdLibFlavor::kLibstdcpp));
    adt::ArenaDeserializer deser(&adt);
    adt::ObjectSerializer ser(&adt);

    DynamicMessage m(desc);
    for (int i = 1; i <= nfields; ++i) {
      const auto* f = desc->field_by_number(static_cast<uint32_t>(i));
      ASSERT_NE(f, nullptr);
      switch (kinds[static_cast<size_t>(i - 1)]) {
        case 0: m.set_int64(f, static_cast<int64_t>(rng())); break;
        case 1: m.set_uint64(f, rng()); break;
        case 2: m.set_string(f, random_ascii(rng, 1 + rng() % 90)); break;
        case 3:
          for (uint64_t k = rng() % 7; k > 0; --k) m.add_uint64(f, rng() % 100000);
          break;
        default:
          for (uint64_t k = rng() % 4; k > 0; --k)
            m.add_string(f, random_ascii(rng, 1 + rng() % 50));
          break;
      }
    }
    const Bytes wire = WireCodec::serialize(m);

    CodecPool::Options opts;
    opts.workers = 1;
    CodecPool pool2(&deser, &ser, /*lanes=*/1, opts);
    pool2.start();

    CodecJob decode_job;
    decode_job.kind = JobKind::kDecode;
    decode_job.class_index = cls;
    decode_job.wire = wire;
    ASSERT_TRUE(pool2.submit(0, decode_job));
    CodecResult decoded = std::move(drain(pool2, 1)[0]);
    ASSERT_TRUE(decoded.status.is_ok())
        << decoded.status.to_string() << "\n" << schema;

    Bytes expected;
    ASSERT_TRUE(
        ser.serialize(
               adt::ObjectRef(cls, decoded.slice.data() + decoded.obj_offset),
               expected)
            .is_ok());

    CodecJob encode_job;
    encode_job.kind = JobKind::kEncode;
    encode_job.class_index = cls;
    encode_job.object = std::move(decoded.slice);
    encode_job.object_used = decoded.used;
    encode_job.obj_offset = decoded.obj_offset;
    ASSERT_TRUE(pool2.submit(0, encode_job));
    CodecResult encoded = std::move(drain(pool2, 1)[0]);
    ASSERT_TRUE(encoded.status.is_ok()) << encoded.status.to_string();
    EXPECT_EQ(encoded.wire, expected) << "round " << round << "\n" << schema;
    pool2.stop();
  }
}

// Both kinds share the per-lane rings and the counters keep them apart.
TEST_F(CodecPoolFixture, MixedKindsShareRingsAndCountersBalance) {
  constexpr size_t kLanes = 2;
  constexpr uint64_t kRounds = 60;
  CodecPool::Options opts;
  opts.workers = 2;
  CodecPool pool(deser_.get(), ser_.get(), kLanes, opts);
  pool.start();

  const Bytes wire = node_wire(17);
  uint64_t decodes_seen = 0, encodes_seen = 0;
  for (uint64_t i = 0; i < kRounds; ++i) {
    CodecJob job;
    job.kind = JobKind::kDecode;
    job.class_index = node_;
    job.cookie = i;
    job.wire = wire;
    ASSERT_TRUE(pool.submit(i % kLanes, job));
    CodecResult decoded = std::move(drain(pool, 1)[0]);
    ASSERT_TRUE(decoded.status.is_ok());
    ++decodes_seen;

    // Every third object goes straight back through the encode direction
    // of the same lane's rings.
    if (i % 3 == 0) {
      CodecJob enc;
      enc.kind = JobKind::kEncode;
      enc.class_index = node_;
      enc.cookie = 10000 + i;
      enc.object = std::move(decoded.slice);
      enc.object_used = decoded.used;
      enc.obj_offset = decoded.obj_offset;
      ASSERT_TRUE(pool.submit(i % kLanes, enc));
      CodecResult encoded = std::move(drain(pool, 1)[0]);
      ASSERT_TRUE(encoded.status.is_ok());
      EXPECT_EQ(encoded.kind, JobKind::kEncode);
      EXPECT_FALSE(encoded.wire.empty());
      ++encodes_seen;
    }
  }
  pool.stop();

  uint64_t jobs = 0, encodes = 0;
  for (size_t w = 0; w < pool.worker_count(); ++w) {
    const auto stats = pool.worker_stats(w);
    jobs += stats.jobs;
    encodes += stats.encodes;
    EXPECT_EQ(stats.failures, 0u);
  }
  EXPECT_EQ(jobs, decodes_seen + encodes_seen);
  EXPECT_EQ(encodes, encodes_seen);
  EXPECT_EQ(pool.total_jobs(), jobs);
}

// The proxy's overload contract: when the encode submit ring is full,
// submit() returns false with the job intact, and the caller serializes
// the very same object inline — bit-identical bytes either way. The pool
// is deliberately not started until after the spill, so "ring full" is
// deterministic rather than a race.
TEST_F(CodecPoolFixture, EncodeRingFullSpillsToInlineSerialize) {
  struct LocalObject {
    ScratchSlice slice;
    uint32_t used = 0;
    uint32_t obj_offset = 0;
  };
  // Build fully-local object slices the way the lane poller does: decode
  // into a private arena (zero-delta translator), copy into an owned
  // slice, relocate with publish delta == move delta.
  auto make_local = [&](const Bytes& wire) {
    OwningArena arena(1 << 20);
    auto obj = deser_->deserialize(node_, ByteSpan(wire), arena, {});
    EXPECT_TRUE(obj.is_ok());
    LocalObject out;
    out.used = static_cast<uint32_t>(arena.used());
    out.slice = ScratchSlice::allocate(out.used);
    out.obj_offset = static_cast<uint32_t>(static_cast<std::byte*>(*obj) -
                                           arena.base());
    std::memcpy(out.slice.data(), arena.base(), out.used);
    adt::ArenaDeserializer::SliceRelocation rel;
    rel.old_begin = arena.base();
    rel.old_end = arena.base() + out.used;
    rel.move_delta = out.slice.data() - arena.base();
    rel.publish_delta = rel.move_delta;
    deser_->relocate(node_, out.slice.data() + out.obj_offset, rel);
    return out;
  };

  constexpr size_t kRing = 4;
  CodecPool::Options opts;
  opts.workers = 1;
  opts.ring_capacity = kRing;
  CodecPool pool(deser_.get(), ser_.get(), /*lanes=*/1, opts);
  // NOT started yet: submitted jobs sit in the ring until we say go.

  std::vector<Bytes> expected;
  for (uint64_t seed = 0; seed < kRing; ++seed) {
    const Bytes wire = node_wire(100 + seed);
    LocalObject local = make_local(wire);
    Bytes direct;
    ASSERT_TRUE(ser_->serialize(adt::ObjectRef(node_, local.slice.data() +
                                                          local.obj_offset),
                                direct)
                    .is_ok());
    expected.push_back(std::move(direct));
    CodecJob job;
    job.kind = JobKind::kEncode;
    job.class_index = node_;
    job.cookie = seed;
    job.object = std::move(local.slice);
    job.object_used = local.used;
    job.obj_offset = local.obj_offset;
    ASSERT_TRUE(pool.submit(0, job)) << "ring should hold " << kRing;
  }

  // Ring full: the next submit is refused, the job survives, and the
  // caller's inline serialize of the same object is the spill path.
  LocalObject spill = make_local(node_wire(999));
  CodecJob job;
  job.kind = JobKind::kEncode;
  job.class_index = node_;
  job.cookie = kRing;
  job.object = std::move(spill.slice);
  job.object_used = spill.used;
  job.obj_offset = spill.obj_offset;
  EXPECT_FALSE(pool.submit(0, job));
  ASSERT_TRUE(job.object);  // intact: inline serialize still possible
  Bytes inline_wire;
  ASSERT_TRUE(ser_->serialize(
                      adt::ObjectRef(node_, job.object.data() + job.obj_offset),
                      inline_wire)
                  .is_ok());
  EXPECT_EQ(inline_wire, oracle_roundtrip(node_, node_wire(999)));

  // Now let the worker drain the backlog: every queued encode completes
  // with the same bytes the direct path produces.
  pool.start();
  std::vector<CodecResult> results = drain(pool, kRing);
  pool.stop();
  ASSERT_EQ(results.size(), kRing);
  for (const CodecResult& r : results) {
    ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
    ASSERT_LT(r.cookie, expected.size());
    EXPECT_EQ(r.wire, expected[r.cookie]) << "cookie " << r.cookie;
  }
}

// A decode-only pool (null serializer) refuses encode jobs up front and
// leaves the job — including the object slice — with the caller.
TEST_F(CodecPoolFixture, EncodeRefusedWithoutSerializer) {
  CodecPool::Options opts;
  opts.workers = 1;
  CodecPool pool(deser_.get(), /*serializer=*/nullptr, /*lanes=*/1, opts);
  pool.start();

  CodecJob job;
  job.kind = JobKind::kEncode;
  job.class_index = node_;
  job.object = ScratchSlice::allocate(256);
  job.object_used = 64;
  ASSERT_TRUE(job.object);
  EXPECT_FALSE(pool.submit(0, job));
  EXPECT_TRUE(job.object);  // job intact: caller can serialize inline
  pool.stop();
}

TEST_F(CodecPoolFixture, PerWorkerCountersSumToTotalAcrossLanes) {
  constexpr size_t kLanes = 4;
  constexpr uint64_t kJobs = 400;
  CodecPool::Options opts;
  opts.workers = 3;  // uneven on purpose: lanes 3 (and stolen work) shift around
  CodecPool pool(deser_.get(), ser_.get(), kLanes, opts);
  EXPECT_EQ(pool.worker_count(), 3u);
  EXPECT_EQ(pool.lane_count(), kLanes);
  pool.start();

  const Bytes wire = node_wire(42);
  uint64_t submitted = 0, completed = 0;
  while (completed < kJobs) {
    for (size_t lane = 0; lane < kLanes && submitted < kJobs; ++lane) {
      CodecJob job;
      job.kind = JobKind::kDecode;
      job.class_index = node_;
      job.cookie = submitted;
      job.wire = wire;
      if (pool.submit(lane, job)) ++submitted;
    }
    for (size_t lane = 0; lane < kLanes; ++lane) {
      CodecResult r;
      while (pool.try_pop_result(lane, r)) {
        EXPECT_TRUE(r.status.is_ok());
        EXPECT_LT(r.worker, pool.worker_count());
        ++completed;
      }
    }
  }
  pool.stop();

  uint64_t sum = 0, bytes = 0;
  for (size_t w = 0; w < pool.worker_count(); ++w) {
    const auto stats = pool.worker_stats(w);
    sum += stats.jobs;
    bytes += stats.bytes_decoded;
    EXPECT_EQ(stats.failures, 0u) << "worker " << w;
  }
  EXPECT_EQ(sum, kJobs);
  EXPECT_EQ(pool.total_jobs(), kJobs);
  EXPECT_EQ(bytes, kJobs * wire.size());
}

TEST_F(CodecPoolFixture, MalformedPayloadYieldsFailureResultNotCrash) {
  CodecPool::Options opts;
  opts.workers = 1;
  CodecPool pool(deser_.get(), ser_.get(), /*lanes=*/1, opts);
  pool.start();

  // Truncated length-delimited field: field 1 (head), declared length 200,
  // one byte of body.
  CodecJob job;
  job.kind = JobKind::kDecode;
  job.class_index = node_;
  job.cookie = 7;
  job.wire = Bytes{std::byte{0x0a}, std::byte{200}, std::byte{1}, std::byte{0x00}};
  ASSERT_TRUE(pool.submit(0, job));
  CodecResult r = std::move(drain(pool, 1)[0]);
  EXPECT_FALSE(r.status.is_ok());
  EXPECT_EQ(r.cookie, 7u);
  pool.stop();
  EXPECT_EQ(pool.worker_stats(0).failures, 1u);
  EXPECT_EQ(pool.worker_stats(0).jobs, 1u);
}

TEST_F(CodecPoolFixture, StopWithQueuedJobsShutsDownCleanly) {
  CodecPool::Options opts;
  opts.workers = 1;
  opts.ring_capacity = 64;
  CodecPool pool(deser_.get(), ser_.get(), /*lanes=*/2, opts);
  pool.start();

  const Bytes wire = node_wire(9);
  for (uint64_t i = 0; i < 32; ++i) {
    CodecJob job;
    job.kind = JobKind::kDecode;
    job.class_index = node_;
    job.cookie = i;
    job.wire = wire;
    (void)pool.submit(i % 2, job);  // full ring is fine here
  }
  // Immediate stop: queued jobs are dropped, nothing hangs or leaks (ASan
  // owns the leak half of this assertion).
  pool.stop();
  // After stop, submits are refused and the job survives for the caller.
  CodecJob job;
  job.kind = JobKind::kDecode;
  job.class_index = node_;
  job.cookie = 99;
  job.wire = wire;
  EXPECT_FALSE(pool.submit(0, job));
  EXPECT_EQ(job.wire, wire);
}

TEST_F(CodecPoolFixture, WorkerCountClampsAndEnvOverride) {
  {
    CodecPool::Options opts;
    opts.workers = 16;
    CodecPool pool(deser_.get(), ser_.get(), /*lanes=*/2, opts);
    EXPECT_EQ(pool.worker_count(), 2u);  // never more workers than lanes
  }
  ::setenv("DPURPC_DPU_CORES", "3", 1);
  EXPECT_EQ(DeviceInfo::current().cores, 3);
  {
    CodecPool pool(deser_.get(), ser_.get(), /*lanes=*/8);  // workers=0 → DeviceInfo
    EXPECT_EQ(pool.worker_count(), 3u);
  }
  ::unsetenv("DPURPC_DPU_CORES");
  EXPECT_EQ(DeviceInfo::current().cores, DeviceSpec::bluefield3().cores);
}

}  // namespace
}  // namespace dpurpc::dpu
