// Tests for the RPC over RDMA core: offset allocator (with a shadow-model
// stress test), block format, deterministic ID pool, and full client/server
// protocol integration including batching, credits, acknowledgment
// reclamation, in-place payloads, large messages, and error paths.
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <set>
#include <thread>

#include "common/rng.hpp"
#include "metrics/metrics.hpp"
#include "rdmarpc/block.hpp"
#include "rdmarpc/client.hpp"
#include "rdmarpc/connection.hpp"
#include "rdmarpc/id_pool.hpp"
#include "rdmarpc/offset_allocator.hpp"
#include "rdmarpc/server.hpp"

namespace dpurpc::rdmarpc {
namespace {

// --------------------------------------------------------- OffsetAllocator

TEST(OffsetAllocator, AllocationsAreAlignedAndDisjoint) {
  OffsetAllocator a(1 << 20);
  auto x = a.allocate(100);
  auto y = a.allocate(5000);
  ASSERT_TRUE(x && y);
  EXPECT_TRUE(is_aligned(*x, kBlockAlign));
  EXPECT_TRUE(is_aligned(*y, kBlockAlign));
  EXPECT_NE(*x, *y);
  EXPECT_EQ(a.used(), 1024u + align_up(5000, 1024));
}

TEST(OffsetAllocator, ExhaustionReturnsNullopt) {
  OffsetAllocator a(4096);
  EXPECT_TRUE(a.allocate(4096).has_value());
  EXPECT_FALSE(a.allocate(1).has_value());
}

TEST(OffsetAllocator, FreeCoalescesNeighbors) {
  OffsetAllocator a(8192);
  auto x = a.allocate(1024);
  auto y = a.allocate(1024);
  auto z = a.allocate(1024);
  ASSERT_TRUE(x && y && z);
  a.free(*x);
  a.free(*z);
  EXPECT_EQ(a.free_range_count(), 2u);  // [x], [z..tail coalesced]
  a.free(*y);                           // bridges x with z and the tail
  EXPECT_EQ(a.free_range_count(), 1u);
  EXPECT_EQ(a.largest_free_range(), 8192u);
}

TEST(OffsetAllocator, OutOfOrderFreeSupportsOutOfOrderCompletion) {
  // The reason a ring buffer is insufficient (§IV): later blocks freed
  // before earlier ones.
  OffsetAllocator a(1 << 16);
  std::vector<uint64_t> offs;
  for (int i = 0; i < 8; ++i) offs.push_back(*a.allocate(2048));
  for (int i : {5, 1, 7, 3}) a.free(offs[i]);
  // The freed holes are reusable.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(a.allocate(2048).has_value());
  EXPECT_EQ(a.used(), 8u * 2048);
}

TEST(OffsetAllocator, ShadowModelStress) {
  // Property test: allocator agrees with a simple shadow model under a
  // long random alloc/free schedule.
  std::mt19937_64 rng(kDefaultSeed);
  OffsetAllocator a(1 << 20);
  std::map<uint64_t, uint64_t> shadow;  // offset -> aligned size
  uint64_t shadow_used = 0;
  for (int step = 0; step < 5000; ++step) {
    if (shadow.empty() || rng() % 2 == 0) {
      uint64_t size = 1 + rng() % 8000;
      auto off = a.allocate(size);
      if (off.has_value()) {
        uint64_t aligned = align_up(size, kBlockAlign);
        // No overlap with any shadow allocation.
        for (const auto& [o, s] : shadow) {
          EXPECT_TRUE(*off + aligned <= o || o + s <= *off)
              << "overlap at step " << step;
        }
        shadow[*off] = aligned;
        shadow_used += aligned;
      } else {
        // Only legal if no free range fits.
        EXPECT_LT(a.largest_free_range(), align_up(size, kBlockAlign));
      }
    } else {
      auto it = shadow.begin();
      std::advance(it, rng() % shadow.size());
      shadow_used -= it->second;
      a.free(it->first);
      shadow.erase(it);
    }
    ASSERT_EQ(a.used(), shadow_used);
    ASSERT_EQ(a.allocation_count(), shadow.size());
  }
  // Free everything: one maximal range remains.
  while (!shadow.empty()) {
    a.free(shadow.begin()->first);
    shadow.erase(shadow.begin());
  }
  EXPECT_EQ(a.free_range_count(), 1u);
  EXPECT_EQ(a.largest_free_range(), a.capacity());
}

TEST(OffsetAllocator, MonitorReadsAreRaceFreeDuringChurn) {
  // Regression for a TSan finding (DESIGN.md §3.12): the end-to-end
  // quiescence wait polls used() from the main thread while the engine
  // thread churns allocate()/free(). Those getters are documented as
  // monitor-safe relaxed hints — this pins the contract under TSan.
  OffsetAllocator a(1 << 20);
  std::atomic<bool> stop{false};
  std::thread monitor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      // Each getter samples used_ independently, and the churn thread
      // moves it between calls — so only per-sample bounds are stable.
      EXPECT_LE(a.used(), a.capacity());
      EXPECT_LE(a.free_bytes(), a.capacity());
      (void)a.allocation_count();
    }
  });
  std::mt19937_64 rng(kDefaultSeed);
  std::vector<uint64_t> live;
  for (int step = 0; step < 20000; ++step) {
    if (live.empty() || rng() % 2 == 0) {
      auto off = a.allocate(1 + rng() % 4000);
      if (off.has_value()) live.push_back(*off);
    } else {
      size_t i = rng() % live.size();
      a.free(live[i]);
      live[i] = live.back();
      live.pop_back();
    }
  }
  stop.store(true, std::memory_order_release);
  monitor.join();
  for (uint64_t off : live) a.free(off);
  EXPECT_EQ(a.used(), 0u);
}

// ------------------------------------------------------------------ block

TEST(Block, WriterReaderRoundTrip) {
  alignas(1024) std::byte buf[4096];
  BlockWriter w(buf, sizeof(buf));
  ASSERT_TRUE(w.append(as_bytes_view("first"), 10).is_ok());
  ASSERT_TRUE(w.append(as_bytes_view("second payload"), 20, kFlagInPlaceObject, 7).is_ok());
  ASSERT_TRUE(w.append({}, 30).is_ok());  // empty payload is legal
  uint64_t len = w.finalize(3);
  EXPECT_TRUE(is_aligned(len, kPayloadAlign));

  auto r = BlockReader::parse(ByteSpan(buf, sizeof(buf)));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->preamble().ack_blocks, 3);
  EXPECT_EQ(r->message_count(), 3);
  auto m1 = r->next();
  ASSERT_TRUE(m1.is_ok());
  EXPECT_EQ(as_string_view(m1->payload), "first");
  EXPECT_EQ(m1->header.id_or_method, 10);
  auto m2 = r->next();
  EXPECT_EQ(as_string_view(m2->payload), "second payload");
  EXPECT_EQ(m2->header.flags, kFlagInPlaceObject);
  EXPECT_EQ(m2->header.aux, 7);
  auto m3 = r->next();
  EXPECT_EQ(m3->payload.size(), 0u);
  EXPECT_TRUE(r->done());
  EXPECT_FALSE(r->next().is_ok());
}

TEST(Block, PayloadsAreEightByteAligned) {
  alignas(1024) std::byte buf[4096];
  BlockWriter w(buf, sizeof(buf));
  ASSERT_TRUE(w.append(as_bytes_view("abc"), 1).is_ok());   // 3 bytes: padded
  ASSERT_TRUE(w.append(as_bytes_view("defgh"), 2).is_ok());
  w.finalize(0);
  auto r = BlockReader::parse(ByteSpan(buf, sizeof(buf)));
  auto m1 = r->next();
  auto m2 = r->next();
  EXPECT_TRUE(is_aligned(m1->payload_addr, kPayloadAlign));
  EXPECT_TRUE(is_aligned(m2->payload_addr, kPayloadAlign));
}

TEST(Block, InPlaceBuildViaArena) {
  alignas(1024) std::byte buf[2048];
  BlockWriter w(buf, sizeof(buf));
  auto dst = w.begin_message();
  ASSERT_TRUE(dst.is_ok());
  arena::Arena arena = w.payload_arena();
  auto* obj = static_cast<uint64_t*>(arena.allocate(16));
  ASSERT_NE(obj, nullptr);
  obj[0] = 0x1111;
  obj[1] = 0x2222;
  ASSERT_TRUE(w.commit_message(static_cast<uint32_t>(arena.used()), 5).is_ok());
  w.finalize(0);

  auto r = BlockReader::parse(ByteSpan(buf, sizeof(buf)));
  auto m = r->next();
  ASSERT_TRUE(m.is_ok());
  EXPECT_EQ(m->payload.size(), 16u);
  EXPECT_EQ(load_le<uint64_t>(m->payload_addr), 0x1111u);
}

TEST(Block, RejectsCorruptPreambleAndOverruns) {
  alignas(1024) std::byte buf[1024];
  BlockWriter w(buf, sizeof(buf));
  ASSERT_TRUE(w.append(as_bytes_view("x"), 1).is_ok());
  w.finalize(0);
  {
    // block_bytes larger than the region
    std::byte copy[1024];
    std::memcpy(copy, buf, sizeof(buf));
    Preamble p;
    std::memcpy(&p, copy, sizeof(p));
    p.block_bytes = 4096;
    std::memcpy(copy, &p, sizeof(p));
    EXPECT_FALSE(BlockReader::parse(ByteSpan(copy, sizeof(copy))).is_ok());
  }
  {
    // payload_size punching past block_bytes
    std::byte copy[1024];
    std::memcpy(copy, buf, sizeof(buf));
    MsgHeader h;
    std::memcpy(&h, copy + kPreambleSize, sizeof(h));
    h.payload_size = 900;
    std::memcpy(copy + kPreambleSize, &h, sizeof(h));
    auto r = BlockReader::parse(ByteSpan(copy, sizeof(copy)));
    ASSERT_TRUE(r.is_ok());
    EXPECT_FALSE(r->next().is_ok());
  }
}

TEST(Block, CapacityEnforced) {
  alignas(1024) std::byte buf[128];
  BlockWriter w(buf, sizeof(buf));
  EXPECT_FALSE(w.can_fit(1000));
  EXPECT_TRUE(w.can_fit(32));
  std::string big(200, 'x');
  EXPECT_FALSE(w.append(as_bytes_view(big), 1).is_ok());
  EXPECT_TRUE(w.append(as_bytes_view("ok"), 1).is_ok());
}

// ---------------------------------------------------------------- ID pool

TEST(IdPool, DeterministicFifoAcrossMirrors) {
  // Two pools fed the same alloc/free schedule assign identical IDs.
  RequestIdPool a(16), b(16);
  std::mt19937_64 rng(kDefaultSeed);
  std::vector<uint16_t> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || (rng() % 2 == 0 && a.available() > 0)) {
      auto ia = a.allocate();
      auto ib = b.allocate();
      ASSERT_EQ(ia.has_value(), ib.has_value());
      if (!ia) continue;
      ASSERT_EQ(*ia, *ib);
      live.push_back(*ia);
    } else {
      size_t k = rng() % live.size();
      a.release(live[k]);
      b.release(live[k]);
      live.erase(live.begin() + k);
    }
  }
}

TEST(IdPool, ExhaustionAndRecycle) {
  RequestIdPool p(4);
  std::set<uint16_t> seen;
  for (int i = 0; i < 4; ++i) {
    auto id = p.allocate();
    ASSERT_TRUE(id.has_value());
    EXPECT_TRUE(seen.insert(*id).second);  // unique
  }
  EXPECT_FALSE(p.allocate().has_value());
  EXPECT_EQ(p.in_flight(), 4u);
  p.release(2);
  auto id = p.allocate();
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, 2);  // FIFO: the one just released
}

// ------------------------------------------------------------ integration

struct Fabric {
  explicit Fabric(ConnectionConfig client_cfg = {}, ConnectionConfig server_cfg = {})
      : client_pd("dpu"),
        server_pd("host"),
        client_conn(Role::kClient, &client_pd, client_cfg),
        server_conn(Role::kServer, &server_pd, server_cfg),
        client(&client_conn),
        server(&server_conn) {
    auto st = Connection::connect(client_conn, server_conn);
    EXPECT_TRUE(st.is_ok()) << st.to_string();
  }

  // Pump both event loops until the client saw `target` responses.
  Status pump_until(uint64_t target, int max_iters = 10000) {
    for (int i = 0; i < max_iters; ++i) {
      auto c = client.event_loop_once();
      if (!c.is_ok()) return c.status();
      auto s = server.event_loop_once();
      if (!s.is_ok()) return s.status();
      if (client.responses_received() >= target) return Status::ok();
    }
    return Status(Code::kInternal, "pump did not converge");
  }

  simverbs::ProtectionDomain client_pd, server_pd;
  Connection client_conn, server_conn;
  RpcClient client;
  RpcServer server;
};

constexpr uint16_t kEcho = 1;
constexpr uint16_t kFail = 2;

void register_echo(RpcServer& server) {
  server.register_handler(kEcho, [](const RequestView& req, Bytes& out) {
    out = Bytes(req.payload.begin(), req.payload.end());
    return Status::ok();
  });
}

TEST(Integration, SingleEchoRoundTrip) {
  Fabric f;
  register_echo(f.server);
  std::string got;
  ASSERT_TRUE(f.client
                  .call(kEcho, as_bytes_view("hello rdma"),
                        [&](const Status& st, const InMessage& resp) {
                          EXPECT_TRUE(st.is_ok());
                          got = std::string(as_string_view(resp.payload));
                        })
                  .is_ok());
  ASSERT_TRUE(f.pump_until(1).is_ok());
  EXPECT_EQ(got, "hello rdma");
  EXPECT_EQ(f.server.requests_served(), 1u);
}

TEST(Integration, BatchingPacksManyMessagesPerBlock) {
  Fabric f;
  register_echo(f.server);
  constexpr int kN = 200;  // 15-byte messages: many per 8 KiB block
  int done = 0;
  for (int i = 0; i < kN; ++i) {
    std::string payload = "msg-" + std::to_string(i);
    ASSERT_TRUE(f.client
                    .call(kEcho, as_bytes_view(payload),
                          [&done, i](const Status& st, const InMessage& resp) {
                            EXPECT_TRUE(st.is_ok());
                            EXPECT_EQ(as_string_view(resp.payload),
                                      "msg-" + std::to_string(i));
                            ++done;
                          })
                    .is_ok());
  }
  ASSERT_TRUE(f.pump_until(kN).is_ok());
  EXPECT_EQ(done, kN);
  // Far fewer RDMA ops than messages: batching works.
  EXPECT_LT(f.client_conn.tx_counters().ops.load(), kN / 4);
}

TEST(Integration, ResponsesMatchRequestsAcrossManyBatches) {
  Fabric f;
  register_echo(f.server);
  std::mt19937_64 rng(kDefaultSeed);
  constexpr int kRounds = 50;
  uint64_t sent = 0;
  for (int round = 0; round < kRounds; ++round) {
    int burst = 1 + static_cast<int>(rng() % 60);
    for (int i = 0; i < burst; ++i) {
      std::string payload = random_ascii(rng, rng() % 200);
      ++sent;
      ASSERT_TRUE(f.client
                      .call(kEcho, as_bytes_view(payload),
                            [payload](const Status& st, const InMessage& resp) {
                              ASSERT_TRUE(st.is_ok());
                              EXPECT_EQ(as_string_view(resp.payload), payload);
                            })
                      .is_ok());
    }
    ASSERT_TRUE(f.pump_until(sent).is_ok());
  }
  EXPECT_EQ(f.client.responses_received(), sent);
  EXPECT_EQ(f.client.in_flight(), 0u);
}

TEST(Integration, LargeMessageGetsItsOwnBlock) {
  Fabric f;
  register_echo(f.server);
  std::mt19937_64 rng(kDefaultSeed);
  // Bigger than the 8 KiB block size: §IV "the block is composed of a
  // single message".
  std::string big = random_ascii(rng, 40000);
  std::string got;
  ASSERT_TRUE(f.client
                  .call(kEcho, as_bytes_view(big),
                        [&](const Status& st, const InMessage& resp) {
                          ASSERT_TRUE(st.is_ok());
                          got = std::string(as_string_view(resp.payload));
                        })
                  .is_ok());
  ASSERT_TRUE(f.pump_until(1).is_ok());
  EXPECT_EQ(got, big);
}

TEST(Integration, OversizedPayloadRejectedUpFront) {
  Fabric f;
  std::string too_big(kMaxPayloadSize + 1, 'x');
  EXPECT_EQ(f.client.call(kEcho, as_bytes_view(too_big), nullptr).code(),
            Code::kOutOfRange);
}

TEST(Integration, ErrorStatusPropagatesToContinuation) {
  Fabric f;
  f.server.register_handler(kFail, [](const RequestView&, Bytes&) {
    return Status(Code::kInvalidArgument, "bad request");
  });
  Status seen;
  ASSERT_TRUE(f.client
                  .call(kFail, as_bytes_view("x"),
                        [&](const Status& st, const InMessage&) { seen = st; })
                  .is_ok());
  ASSERT_TRUE(f.pump_until(1).is_ok());
  EXPECT_EQ(seen.code(), Code::kInvalidArgument);
}

TEST(Integration, UnknownMethodYieldsNotFound) {
  Fabric f;
  Status seen;
  ASSERT_TRUE(f.client
                  .call(99, as_bytes_view("x"),
                        [&](const Status& st, const InMessage&) { seen = st; })
                  .is_ok());
  ASSERT_TRUE(f.pump_until(1).is_ok());
  EXPECT_EQ(seen.code(), Code::kNotFound);
}

TEST(Integration, InPlacePayloadArrivesAtTranslatedAddress) {
  Fabric f;
  // Handler reads the in-place object through the receive-buffer address.
  f.server.register_handler(kEcho, [](const RequestView& req, Bytes& out) {
    EXPECT_NE(req.object, nullptr);
    EXPECT_EQ(req.class_index, 42);
    uint64_t v = load_le<uint64_t>(req.object);
    out.resize(8);
    store_le(out.data(), v * 2);
    return Status::ok();
  });
  uint64_t answer = 0;
  ASSERT_TRUE(f.client
                  .call_inplace(
                      kEcho, /*class_index=*/42, /*payload_hint=*/64,
                      [&](arena::Arena& arena, const arena::AddressTranslator& xlate)
                          -> StatusOr<uint32_t> {
                        auto* p = static_cast<std::byte*>(arena.allocate(8));
                        if (p == nullptr) {
                          return Status(Code::kResourceExhausted, "full");
                        }
                        store_le<uint64_t>(p, 21);
                        (void)xlate;  // numeric payload: nothing to rebase
                        return static_cast<uint32_t>(arena.used());
                      },
                      [&](const Status& st, const InMessage& resp) {
                        ASSERT_TRUE(st.is_ok());
                        answer = load_le<uint64_t>(resp.payload_addr);
                      })
                  .is_ok());
  ASSERT_TRUE(f.pump_until(1).is_ok());
  EXPECT_EQ(answer, 42u);
}

TEST(Integration, OversizedInPlaceResponseGetsItsOwnBlock) {
  // The in-place response path starts with a small block hint; a handler
  // whose object exceeds the 8 KiB block must be retried in progressively
  // larger blocks (not silently re-handed the same undersized arena —
  // regression test for the empty-writer begin_message path).
  Fabric f;
  constexpr uint32_t kObjectBytes = 20000;
  f.server.register_inplace_handler(
      kEcho, [](const RequestView&, arena::Arena& arena,
                const arena::AddressTranslator&, uint32_t* payload_size,
                uint16_t* class_index) -> Status {
        auto* p = static_cast<std::byte*>(arena.allocate(kObjectBytes));
        if (p == nullptr) return Status(Code::kResourceExhausted, "full");
        for (uint32_t i = 0; i < kObjectBytes; ++i) {
          p[i] = static_cast<std::byte>(i * 7);
        }
        *payload_size = static_cast<uint32_t>(arena.used());
        *class_index = 9;
        return Status::ok();
      });
  bool checked = false;
  ASSERT_TRUE(f.client
                  .call(kEcho, as_bytes_view("x"),
                        [&](const Status& st, const InMessage& resp) {
                          ASSERT_TRUE(st.is_ok());
                          ASSERT_EQ(resp.header.flags, kFlagInPlaceObject);
                          EXPECT_EQ(resp.header.aux, 9);
                          ASSERT_GE(resp.header.payload_size, kObjectBytes);
                          for (uint32_t i = 0; i < kObjectBytes; ++i) {
                            ASSERT_EQ(resp.payload_addr[i],
                                      static_cast<std::byte>(i * 7));
                          }
                          checked = true;
                        })
                  .is_ok());
  ASSERT_TRUE(f.pump_until(1).is_ok());
  EXPECT_TRUE(checked);
  // Regression: every doubling of the block hint must be counted — both
  // here and in dpurpc_block_hint_retries_total (same counter feeds both).
  EXPECT_GT(f.server.block_hint_retries(), 0u);
}

TEST(Integration, CreditsAndBuffersFullyReclaimedAtQuiescence) {
  ConnectionConfig small_client;
  small_client.credits = 8;
  small_client.sbuf_size = 256 * 1024;
  ConnectionConfig small_server;
  small_server.credits = 8;
  small_server.sbuf_size = 256 * 1024;
  Fabric f(small_client, small_server);
  register_echo(f.server);

  std::mt19937_64 rng(kDefaultSeed);
  uint64_t sent = 0;
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 40; ++i) {
      std::string payload = random_ascii(rng, 100);
      ++sent;
      ASSERT_TRUE(f.client.call(kEcho, as_bytes_view(payload), nullptr).is_ok());
    }
    ASSERT_TRUE(f.pump_until(sent).is_ok());
  }
  // Drain the final acks (a few idle pump turns).
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(f.client.event_loop_once().is_ok());
    ASSERT_TRUE(f.server.event_loop_once().is_ok());
  }
  // Everything must be back: credits, send buffers, IDs.
  EXPECT_EQ(f.client_conn.credits_available(), small_client.credits);
  EXPECT_EQ(f.server_conn.credits_available(), small_server.credits);
  EXPECT_EQ(f.client_conn.allocator().used(), 0u);
  EXPECT_EQ(f.server_conn.allocator().used(), 0u);
  EXPECT_EQ(f.client_conn.sent_blocks_outstanding(), 0u);
  EXPECT_EQ(f.server_conn.sent_blocks_outstanding(), 0u);
  EXPECT_EQ(f.client.in_flight(), 0u);
}

TEST(Integration, SustainedLoadUnderTinyCreditWindow) {
  // Credits = 2: constant backpressure; the protocol must still complete
  // everything without RNR events (the credit system's whole point).
  ConnectionConfig cfg;
  cfg.credits = 2;
  cfg.sbuf_size = 64 * 1024;
  cfg.rbuf_size = 256 * 1024;
  Fabric f(cfg, cfg);
  register_echo(f.server);

  uint64_t sent = 0;
  std::mt19937_64 rng(kDefaultSeed);
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 10; ++i) {
      std::string p = random_ascii(rng, 500);
      // Backpressure can reject the enqueue; pump and retry.
      for (int attempt = 0;; ++attempt) {
        Status st = f.client.call(kEcho, as_bytes_view(p), nullptr);
        if (st.is_ok()) break;
        ASSERT_TRUE(st.code() == Code::kUnavailable ||
                    st.code() == Code::kResourceExhausted)
            << st.to_string();
        ASSERT_LT(attempt, 1000);
        ASSERT_TRUE(f.client.event_loop_once().is_ok());
        ASSERT_TRUE(f.server.event_loop_once().is_ok());
      }
      ++sent;
    }
    ASSERT_TRUE(f.pump_until(sent).is_ok());
  }
  EXPECT_EQ(f.client.responses_received(), sent);
  EXPECT_EQ(f.client_conn.tx_counters().rnr_events.load(), 0u);
  EXPECT_EQ(f.server_conn.tx_counters().rnr_events.load(), 0u);
}

TEST(Integration, ManyConnectionsIndependently) {
  // §III.B: multiple RDMA connections run concurrently, each independent.
  constexpr int kConns = 4;
  std::vector<std::unique_ptr<Fabric>> fabrics;
  for (int i = 0; i < kConns; ++i) {
    fabrics.push_back(std::make_unique<Fabric>());
    register_echo(fabrics.back()->server);
  }
  for (int i = 0; i < kConns; ++i) {
    for (int j = 0; j < 20; ++j) {
      std::string p = "conn" + std::to_string(i) + "-" + std::to_string(j);
      ASSERT_TRUE(fabrics[i]
                      ->client
                      .call(kEcho, as_bytes_view(p),
                            [p](const Status& st, const InMessage& resp) {
                              ASSERT_TRUE(st.is_ok());
                              EXPECT_EQ(as_string_view(resp.payload), p);
                            })
                      .is_ok());
    }
  }
  for (auto& f : fabrics) ASSERT_TRUE(f->pump_until(20).is_ok());
}

TEST(Integration, BandwidthAccountingSeesBlockOverhead) {
  // Fig. 8b footnote: headers and alignment are non-negligible for small
  // messages — bytes on the wire exceed payload bytes.
  Fabric f;
  register_echo(f.server);
  constexpr int kN = 100;
  constexpr size_t kPayload = 15;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(
        f.client.call(kEcho, as_bytes_view(std::string(kPayload, 'x')), nullptr)
            .is_ok());
  }
  ASSERT_TRUE(f.pump_until(kN).is_ok());
  uint64_t wire_bytes = f.client_conn.tx_counters().bytes.load();
  EXPECT_GT(wire_bytes, kN * kPayload);          // overhead exists
  EXPECT_LT(wire_bytes, kN * kPayload * 4);      // but is bounded
}

TEST(Integration, IdSyncSurvivesAutoFlushedBlocks) {
  // Regression test for the subtle §IV.D hazard: when a block fills and
  // the transport flushes it *inside* begin_message (not at the engine's
  // explicit flush), the ID discipline must still run at that true block
  // boundary — otherwise the server allocates IDs for the first block's
  // requests while the client hasn't yet, and every later response
  // dispatches to the wrong continuation.
  ConnectionConfig cfg;
  cfg.block_size = 2048;  // small blocks: many auto-flushes
  Fabric f(cfg, cfg);
  register_echo(f.server);
  std::mt19937_64 rng(kDefaultSeed);
  uint64_t sent = 0;
  for (int round = 0; round < 20; ++round) {
    // Bursts large enough that a single burst spans several blocks.
    for (int i = 0; i < 50; ++i) {
      std::string payload = "p" + std::to_string(sent) + "-" +
                            random_ascii(rng, 100 + rng() % 300);
      ++sent;
      for (int attempt = 0;; ++attempt) {
        Status st = f.client.call(
            kEcho, as_bytes_view(payload),
            [payload](const Status& rs, const InMessage& resp) {
              ASSERT_TRUE(rs.is_ok());
              // The response MUST be the echo of this exact request.
              EXPECT_EQ(as_string_view(resp.payload), payload);
            });
        if (st.is_ok()) break;
        ASSERT_LT(attempt, 1000);
        ASSERT_TRUE(f.client.event_loop_once().is_ok());
        ASSERT_TRUE(f.server.event_loop_once().is_ok());
      }
    }
    // Interleave partial pumping so responses and new requests mix.
    if (round % 3 == 0) {
      ASSERT_TRUE(f.client.event_loop_once().is_ok());
      ASSERT_TRUE(f.server.event_loop_once().is_ok());
    }
  }
  ASSERT_TRUE(f.pump_until(sent).is_ok());
  EXPECT_EQ(f.client.responses_received(), sent);
  // Many more blocks than engine-initiated flushes -> auto-flush exercised.
  EXPECT_GT(f.client_conn.tx_counters().ops.load(), 100u);
}

TEST(Integration, LatencyHistogramPopulatedWhenInstrumented) {
  metrics::Registry registry;
  ConnectionConfig cfg;
  cfg.registry = &registry;
  Fabric f(cfg, cfg);
  register_echo(f.server);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(f.client.call(kEcho, as_bytes_view("x"), nullptr).is_ok());
  }
  ASSERT_TRUE(f.pump_until(20).is_ok());
  auto snap = registry.scrape();
  const auto* count =
      snap.find("rdmarpc_request_latency_seconds_count", {{"role", "client"}});
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->value, 20);
  const auto* sum =
      snap.find("rdmarpc_request_latency_seconds_sum", {{"role", "client"}});
  ASSERT_NE(sum, nullptr);
  EXPECT_GT(sum->value, 0.0);
}

// ---------------------------------------------------------- fragmentation

uint64_t fnv1a(ByteSpan data) {
  uint64_t h = 1469598103934665603ull;
  for (std::byte b : data) {
    h ^= static_cast<uint64_t>(b);
    h *= 1099511628211ull;
  }
  return h;
}

// Responses cannot be fragmented (the request path owns kFlagFragment), so
// the handler answers with an 8-byte digest instead of echoing.
void register_digest(RpcServer& server) {
  server.register_handler(kEcho, [](const RequestView& req, Bytes& out) {
    out.resize(8);
    store_le(out.data(), fnv1a(req.payload));
    return Status::ok();
  });
}

TEST(Fragmentation, OneByteOverSingleBlockSplitsAndReassembles) {
  Fabric f;
  register_digest(f.server);
  std::mt19937_64 rng(kDefaultSeed);
  // Around the delegation boundary: the largest payload that still fits a
  // single block (a plain call), then one byte more (two fragments, the
  // second carrying a single chunk byte), then one over the block payload
  // field itself.
  const size_t kSizes[] = {kMaxPayloadSize - kWireTraceSize,
                           kMaxPayloadSize - kWireTraceSize + 1,
                           kMaxPayloadSize + 1};
  uint64_t done = 0;
  for (size_t size : kSizes) {
    std::string payload = random_ascii(rng, size);
    const uint64_t want = fnv1a(ByteSpan(as_bytes_view(payload)));
    bool checked = false;
    ASSERT_TRUE(f.client
                    .call_fragmented(kEcho, as_bytes_view(payload),
                                     [&](const Status& st, const InMessage& resp) {
                                       ASSERT_TRUE(st.is_ok()) << st.to_string();
                                       ASSERT_EQ(resp.payload.size(), 8u);
                                       EXPECT_EQ(load_le<uint64_t>(resp.payload_addr),
                                                 want);
                                       checked = true;
                                     })
                    .is_ok());
    ASSERT_TRUE(f.pump_until(++done).is_ok());
    EXPECT_TRUE(checked) << "size " << size;
  }
  EXPECT_EQ(f.server.reassembly_streams(), 0u);
  EXPECT_EQ(f.client.in_flight(), 0u);
}

TEST(Fragmentation, OutOfOrderFragmentsReassemble) {
  // The simverbs reorder knob swaps the *processing* order of consecutive
  // blocks at the receiver. Only blocks carrying non-final fragments may
  // swap: the final fragment is the request for the ID discipline (§IV.D),
  // so moving it would legitimately desynchronize the ID pools.
  Fabric f;
  register_digest(f.server);
  std::mt19937_64 rng(kDefaultSeed);

  // 200000 bytes -> 4 fragments; holding the first delivers it after the
  // second (swap of two non-final fragments).
  {
    std::string payload = random_ascii(rng, 200000);
    const uint64_t want = fnv1a(ByteSpan(as_bytes_view(payload)));
    f.client_conn.queue_pair().faults().reorder_next_recvs.store(1);
    bool checked = false;
    ASSERT_TRUE(f.client
                    .call_fragmented(kEcho, as_bytes_view(payload),
                                     [&](const Status& st, const InMessage& resp) {
                                       ASSERT_TRUE(st.is_ok()) << st.to_string();
                                       EXPECT_EQ(load_le<uint64_t>(resp.payload_addr),
                                                 want);
                                       checked = true;
                                     })
                    .is_ok());
    ASSERT_TRUE(f.pump_until(1).is_ok());
    EXPECT_TRUE(checked);
  }

  // 280000 bytes -> 5 fragments; holding the first two delivers them after
  // the third (a deeper swap, still only non-final fragments moved).
  {
    std::string payload = random_ascii(rng, 280000);
    const uint64_t want = fnv1a(ByteSpan(as_bytes_view(payload)));
    f.client_conn.queue_pair().faults().reorder_next_recvs.store(2);
    bool checked = false;
    ASSERT_TRUE(f.client
                    .call_fragmented(kEcho, as_bytes_view(payload),
                                     [&](const Status& st, const InMessage& resp) {
                                       ASSERT_TRUE(st.is_ok()) << st.to_string();
                                       EXPECT_EQ(load_le<uint64_t>(resp.payload_addr),
                                                 want);
                                       checked = true;
                                     })
                    .is_ok());
    ASSERT_TRUE(f.pump_until(2).is_ok());
    EXPECT_TRUE(checked);
  }
  EXPECT_EQ(f.server.reassembly_streams(), 0u);
  EXPECT_EQ(f.client.in_flight(), 0u);
}

TEST(Fragmentation, TotalOverReassemblyCapIsProtocolFatal) {
  // A declared total above the server's reassembly cap is indistinguishable
  // from a resource-exhaustion attack; the server treats it as a protocol
  // violation (kDataLoss surfaces from its event loop) rather than buffer it.
  Fabric f;
  register_digest(f.server);
  f.server.set_max_fragmented_payload(100 * 1024);
  std::mt19937_64 rng(kDefaultSeed);
  std::string payload = random_ascii(rng, 200000);
  ASSERT_TRUE(f.client.call_fragmented(kEcho, as_bytes_view(payload), nullptr)
                  .is_ok());
  Status st;
  for (int i = 0; i < 200; ++i) {
    (void)f.client.event_loop_once();
    auto s = f.server.event_loop_once();
    if (!s.is_ok()) {
      st = s.status();
      break;
    }
  }
  EXPECT_EQ(st.code(), Code::kDataLoss);
}

TEST(Integration, LostBlockStallsButDoesNotCorrupt) {
  // Fault injection: a silently dropped write models a broken link. The
  // protocol (built on a reliable connection) cannot recover it, but must
  // not mis-deliver anything else... the request simply never completes.
  Fabric f;
  register_echo(f.server);
  f.client_conn.queue_pair().faults().drop_next_sends.store(1);
  bool completed = false;
  ASSERT_TRUE(f.client
                  .call(kEcho, as_bytes_view("doomed"),
                        [&](const Status&, const InMessage&) { completed = true; })
                  .is_ok());
  EXPECT_FALSE(f.pump_until(1, /*max_iters=*/50).is_ok());
  EXPECT_FALSE(completed);
}

}  // namespace
}  // namespace dpurpc::rdmarpc
