// Tests for the proto3 runtime: schema parsing, descriptor linking,
// DynamicMessage, and the reference wire codec (round-trips + malformed
// input rejection + randomized fuzz round-trips).
#include <gtest/gtest.h>

#include <random>

#include "common/rng.hpp"
#include "proto/dynamic_message.hpp"
#include "proto/schema_parser.hpp"
#include "wire/coded_stream.hpp"

namespace dpurpc::proto {
namespace {

constexpr std::string_view kBenchProto = R"(
// The three benchmark messages from the paper's evaluation (§VI.C.1).
syntax = "proto3";
package bench;

/* Small: ~15 bytes serialized, various field types. */
message Small {
  int32 id = 1;
  bool flag = 2;
  float score = 3;
  uint64 stamp = 4;
}

message IntArray {
  repeated uint32 values = 1;
}

message CharArray {
  string data = 1;
}

message Nested {
  Small head = 1;
  repeated Small items = 2;
  string label = 3;
}

enum Color {
  COLOR_UNSPECIFIED = 0;
  COLOR_RED = 1;
  COLOR_BLUE = 2;
}

message Painted {
  Color color = 1;
  sint64 delta = 2;
  bytes raw = 3;
  double weight = 4;
}

service EchoService {
  rpc Echo (Small) returns (Small);
  rpc Paint (Painted) returns (Nested);
}
)";

class ProtoFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    SchemaParser parser(pool_);
    auto st = parser.parse_and_link(kBenchProto, "bench.proto");
    ASSERT_TRUE(st.is_ok()) << st.to_string();
  }
  DescriptorPool pool_;
};

// ---------------------------------------------------------------- parser

TEST_F(ProtoFixture, MessagesRegisteredWithPackageNames) {
  EXPECT_NE(pool_.find_message("bench.Small"), nullptr);
  EXPECT_NE(pool_.find_message("bench.IntArray"), nullptr);
  EXPECT_NE(pool_.find_message("bench.Nested"), nullptr);
  EXPECT_EQ(pool_.find_message("Small"), nullptr);  // unqualified must miss
}

TEST_F(ProtoFixture, FieldMetadata) {
  const auto* small = pool_.find_message("bench.Small");
  ASSERT_EQ(small->fields().size(), 4u);
  const auto* id = small->field_by_name("id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->number(), 1u);
  EXPECT_EQ(id->type(), FieldType::kInt32);
  EXPECT_FALSE(id->is_repeated());
  EXPECT_EQ(small->field_by_number(3)->name(), "score");
  EXPECT_EQ(small->field_by_number(99), nullptr);
}

TEST_F(ProtoFixture, RepeatedAndMessageFieldsLinked) {
  const auto* nested = pool_.find_message("bench.Nested");
  const auto* head = nested->field_by_name("head");
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->type(), FieldType::kMessage);
  EXPECT_EQ(head->message_type(), pool_.find_message("bench.Small"));
  const auto* items = nested->field_by_name("items");
  EXPECT_TRUE(items->is_repeated());
  EXPECT_EQ(items->message_type(), pool_.find_message("bench.Small"));
}

TEST_F(ProtoFixture, EnumLinked) {
  const auto* painted = pool_.find_message("bench.Painted");
  const auto* color = painted->field_by_name("color");
  ASSERT_EQ(color->type(), FieldType::kEnum);
  ASSERT_NE(color->enum_type(), nullptr);
  EXPECT_EQ(color->enum_type()->full_name(), "bench.Color");
  EXPECT_EQ(*color->enum_type()->name_of(2), "COLOR_BLUE");
  EXPECT_EQ(color->enum_type()->name_of(99), nullptr);
}

TEST_F(ProtoFixture, ServiceParsed) {
  const auto* svc = pool_.find_service("bench.EchoService");
  ASSERT_NE(svc, nullptr);
  ASSERT_EQ(svc->methods().size(), 2u);
  const auto* echo = svc->method_by_name("Echo");
  ASSERT_NE(echo, nullptr);
  EXPECT_EQ(echo->input_type, pool_.find_message("bench.Small"));
  EXPECT_EQ(echo->output_type, pool_.find_message("bench.Small"));
  EXPECT_EQ(svc->method_by_name("Paint")->output_type, pool_.find_message("bench.Nested"));
}

TEST(SchemaParser, NestedMessageScoping) {
  DescriptorPool pool;
  SchemaParser p(pool);
  auto st = p.parse_and_link(R"(
syntax = "proto3";
package a;
message Outer {
  message Inner { int32 x = 1; }
  Inner inner = 1;
}
message Other { Outer.Inner borrowed = 1; }
)");
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  const auto* inner = pool.find_message("a.Outer.Inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(pool.find_message("a.Outer")->field_by_name("inner")->message_type(), inner);
  EXPECT_EQ(pool.find_message("a.Other")->field_by_name("borrowed")->message_type(), inner);
}

TEST(SchemaParser, RejectsProto2) {
  DescriptorPool pool;
  SchemaParser p(pool);
  EXPECT_FALSE(p.parse_file("syntax = \"proto2\";").is_ok());
}

TEST(SchemaParser, RejectsMissingSyntax) {
  DescriptorPool pool;
  SchemaParser p(pool);
  EXPECT_FALSE(p.parse_file("message M { int32 x = 1; }").is_ok());
}

TEST(SchemaParser, RejectsUnsupportedConstructs) {
  for (const char* body :
       {"map<string, int32> m = 1;", "oneof o { int32 a = 1; }"}) {
    DescriptorPool pool;
    SchemaParser p(pool);
    std::string src = "syntax = \"proto3\";\nmessage M { " + std::string(body) + " }";
    EXPECT_FALSE(p.parse_file(src).is_ok()) << body;
  }
}

TEST(SchemaParser, RejectsDuplicateFieldNumbers) {
  DescriptorPool pool;
  SchemaParser p(pool);
  auto st = p.parse_and_link(R"(
syntax = "proto3";
message M { int32 a = 1; int32 b = 1; }
)");
  EXPECT_FALSE(st.is_ok());
}

TEST(SchemaParser, RejectsReservedFieldNumbers) {
  DescriptorPool pool;
  SchemaParser p(pool);
  EXPECT_FALSE(p.parse_file(R"(
syntax = "proto3";
message M { int32 a = 19500; }
)").is_ok());
}

TEST(SchemaParser, RejectsUnresolvedType) {
  DescriptorPool pool;
  SchemaParser p(pool);
  auto st = p.parse_and_link(R"(
syntax = "proto3";
message M { NoSuchType x = 1; }
)");
  EXPECT_EQ(st.code(), Code::kNotFound);
}

TEST(SchemaParser, Proto3EnumMustStartAtZero) {
  DescriptorPool pool;
  SchemaParser p(pool);
  EXPECT_FALSE(p.parse_file(R"(
syntax = "proto3";
enum E { FIRST = 1; }
)").is_ok());
}

TEST(SchemaParser, CommentsAndOptionsIgnored) {
  DescriptorPool pool;
  SchemaParser p(pool);
  auto st = p.parse_and_link(R"(
syntax = "proto3";
option java_package = "com.example";   // file option
/* block
   comment */
message M {
  option deprecated = true;
  int32 x = 1 [deprecated = true];     // field option
  reserved 5, 6;
  reserved "old_name";
}
)");
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_EQ(pool.find_message("M")->fields().size(), 1u);
}

// --------------------------------------------------------------- dynamic

TEST_F(ProtoFixture, Proto3ImplicitPresence) {
  const auto* small = pool_.find_message("bench.Small");
  DynamicMessage m(small);
  const auto* id = small->field_by_name("id");
  EXPECT_FALSE(m.has(id));
  m.set_int64(id, 0);        // explicitly set to default
  EXPECT_FALSE(m.has(id));   // proto3: zero is "absent"
  m.set_int64(id, 7);
  EXPECT_TRUE(m.has(id));
}

TEST_F(ProtoFixture, EqualsIsDeepAndOrderSensitive) {
  const auto* arr = pool_.find_message("bench.IntArray");
  const auto* values = arr->field_by_name("values");
  DynamicMessage a(arr), b(arr);
  a.add_uint64(values, 1);
  a.add_uint64(values, 2);
  b.add_uint64(values, 2);
  b.add_uint64(values, 1);
  EXPECT_FALSE(a.equals(b));
  DynamicMessage c(arr);
  c.add_uint64(values, 1);
  c.add_uint64(values, 2);
  EXPECT_TRUE(a.equals(c));
}

TEST_F(ProtoFixture, DebugStringShowsSetFields) {
  const auto* small = pool_.find_message("bench.Small");
  DynamicMessage m(small);
  m.set_int64(small->field_by_name("id"), 42);
  std::string dump = m.debug_string();
  EXPECT_NE(dump.find("id: 42"), std::string::npos);
  EXPECT_EQ(dump.find("flag"), std::string::npos);  // unset → omitted
}

// ----------------------------------------------------------------- codec

TEST_F(ProtoFixture, SmallMessageIsAbout15BytesOnTheWire) {
  // The paper's Small message serializes to ~15 bytes.
  const auto* small = pool_.find_message("bench.Small");
  DynamicMessage m(small);
  m.set_int64(small->field_by_name("id"), 12345);
  m.set_uint64(small->field_by_name("flag"), 1);
  m.set_float(small->field_by_name("score"), 1.5f);
  m.set_uint64(small->field_by_name("stamp"), 999999);
  Bytes wire = WireCodec::serialize(m);
  EXPECT_GE(wire.size(), 12u);
  EXPECT_LE(wire.size(), 18u);
}

TEST_F(ProtoFixture, ScalarRoundTrip) {
  const auto* painted = pool_.find_message("bench.Painted");
  DynamicMessage m(painted);
  m.set_uint64(painted->field_by_name("color"), 2);
  m.set_int64(painted->field_by_name("delta"), -123456);
  m.set_string(painted->field_by_name("raw"), std::string("\x00\xff\x80", 3));
  m.set_double(painted->field_by_name("weight"), 2.71828);

  Bytes wire = WireCodec::serialize(m);
  DynamicMessage out(painted);
  auto st = WireCodec::parse(ByteSpan(wire), out);
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_TRUE(m.equals(out));
  EXPECT_EQ(out.get_int64(painted->field_by_name("delta")), -123456);
}

TEST_F(ProtoFixture, NegativeInt32TakesTenBytes) {
  // Per spec, int32 -1 is sign-extended to 64 bits: 10-byte varint.
  const auto* small = pool_.find_message("bench.Small");
  DynamicMessage m(small);
  m.set_int64(small->field_by_name("id"), -1);
  Bytes wire = WireCodec::serialize(m);
  EXPECT_EQ(wire.size(), 1u + 10u);  // tag + varint
  DynamicMessage out(small);
  ASSERT_TRUE(WireCodec::parse(ByteSpan(wire), out).is_ok());
  EXPECT_EQ(out.get_int64(small->field_by_name("id")), -1);
}

TEST_F(ProtoFixture, PackedRepeatedRoundTrip) {
  const auto* arr = pool_.find_message("bench.IntArray");
  const auto* values = arr->field_by_name("values");
  std::mt19937_64 rng(kDefaultSeed);
  SkewedVarintDistribution dist;
  DynamicMessage m(arr);
  for (int i = 0; i < 512; ++i) m.add_uint64(values, dist(rng));

  Bytes wire = WireCodec::serialize(m);
  // Paper: the 512-int message serializes to ~276 bytes (2.06x compression).
  EXPECT_LT(wire.size(), 1024u);

  DynamicMessage out(arr);
  ASSERT_TRUE(WireCodec::parse(ByteSpan(wire), out).is_ok());
  EXPECT_TRUE(m.equals(out));
}

TEST_F(ProtoFixture, UnpackedEncodingAccepted) {
  // Encoders may emit packable fields unpacked; parsers must accept both.
  const auto* arr = pool_.find_message("bench.IntArray");
  const auto* values = arr->field_by_name("values");
  Bytes wire;
  wire::Writer w(wire);
  for (uint64_t v : {10u, 200u, 3000u}) {
    w.write_tag(1, wire::WireType::kVarint);
    w.write_varint(v);
  }
  DynamicMessage out(arr);
  ASSERT_TRUE(WireCodec::parse(ByteSpan(wire), out).is_ok());
  ASSERT_EQ(out.repeated_size(values), 3u);
  EXPECT_EQ(out.get_repeated_uint64(values, 2), 3000u);
}

TEST_F(ProtoFixture, NestedMessageRoundTrip) {
  const auto* nested = pool_.find_message("bench.Nested");
  const auto* small = pool_.find_message("bench.Small");
  DynamicMessage m(nested);
  auto* head = m.mutable_message(nested->field_by_name("head"));
  head->set_int64(small->field_by_name("id"), 1);
  for (int i = 0; i < 3; ++i) {
    auto* item = m.add_message(nested->field_by_name("items"));
    item->set_int64(small->field_by_name("id"), 100 + i);
    item->set_float(small->field_by_name("score"), 0.5f * static_cast<float>(i));
  }
  m.set_string(nested->field_by_name("label"), "hello nested");

  Bytes wire = WireCodec::serialize(m);
  DynamicMessage out(nested);
  ASSERT_TRUE(WireCodec::parse(ByteSpan(wire), out).is_ok());
  EXPECT_TRUE(m.equals(out));
  EXPECT_EQ(out.get_repeated_message(nested->field_by_name("items"), 2)
                ->get_int64(small->field_by_name("id")),
            102);
}

TEST_F(ProtoFixture, UnknownFieldsAreSkipped) {
  const auto* small = pool_.find_message("bench.Small");
  Bytes wire;
  wire::Writer w(wire);
  w.write_tag(77, wire::WireType::kVarint);  // unknown field
  w.write_varint(5);
  w.write_tag(1, wire::WireType::kVarint);   // id
  w.write_varint(9);
  w.write_tag(78, wire::WireType::kLengthDelimited);  // unknown field
  w.write_length_delimited("junk");
  DynamicMessage out(small);
  ASSERT_TRUE(WireCodec::parse(ByteSpan(wire), out).is_ok());
  EXPECT_EQ(out.get_int64(small->field_by_name("id")), 9);
}

TEST_F(ProtoFixture, RejectsInvalidUtf8InStringField) {
  const auto* chars = pool_.find_message("bench.CharArray");
  Bytes wire;
  wire::Writer w(wire);
  w.write_tag(1, wire::WireType::kLengthDelimited);
  w.write_length_delimited("\xff\xfe bad");
  DynamicMessage out(chars);
  EXPECT_EQ(WireCodec::parse(ByteSpan(wire), out).code(), Code::kDataLoss);
}

TEST_F(ProtoFixture, BytesFieldAcceptsInvalidUtf8) {
  const auto* painted = pool_.find_message("bench.Painted");
  Bytes wire;
  wire::Writer w(wire);
  w.write_tag(3, wire::WireType::kLengthDelimited);  // raw (bytes)
  w.write_length_delimited("\xff\xfe");
  DynamicMessage out(painted);
  EXPECT_TRUE(WireCodec::parse(ByteSpan(wire), out).is_ok());
}

TEST_F(ProtoFixture, RejectsTruncatedPayload) {
  const auto* chars = pool_.find_message("bench.CharArray");
  DynamicMessage m(chars);
  m.set_string(chars->field_by_name("data"), "some payload here");
  Bytes wire = WireCodec::serialize(m);
  for (size_t cut = 1; cut < wire.size(); ++cut) {
    DynamicMessage out(chars);
    ByteSpan truncated(wire.data(), wire.size() - cut);
    EXPECT_FALSE(WireCodec::parse(truncated, out).is_ok()) << "cut=" << cut;
  }
}

TEST_F(ProtoFixture, RejectsWireTypeMismatch) {
  const auto* small = pool_.find_message("bench.Small");
  Bytes wire;
  wire::Writer w(wire);
  w.write_tag(1, wire::WireType::kFixed64);  // id is varint-typed
  w.write_fixed64(1);
  DynamicMessage out(small);
  EXPECT_EQ(WireCodec::parse(ByteSpan(wire), out).code(), Code::kDataLoss);
}

TEST_F(ProtoFixture, RecursionDepthLimited) {
  DescriptorPool pool;
  SchemaParser p(pool);
  ASSERT_TRUE(p.parse_and_link(R"(
syntax = "proto3";
message R { R next = 1; }
)").is_ok());
  const auto* rdesc = pool.find_message("R");
  // Build a wire form nested deeper than the limit: each level is the
  // previous payload wrapped in (tag, len).
  Bytes payload;
  for (int depth = 0; depth < 150; ++depth) {
    Bytes next;
    wire::Writer w(next);
    w.write_tag(1, wire::WireType::kLengthDelimited);
    w.write_length_delimited(as_string_view(payload));
    payload = std::move(next);
  }
  DynamicMessage out(rdesc);
  EXPECT_EQ(WireCodec::parse(ByteSpan(payload), out).code(), Code::kDataLoss);
}

// Randomized fuzz: build a random Painted/Nested message, round-trip it.
class CodecFuzz : public ProtoFixture, public ::testing::WithParamInterface<int> {};

TEST_P(CodecFuzz, RandomMessagesRoundTrip) {
  std::mt19937_64 rng(kDefaultSeed + GetParam());
  const auto* nested = pool_.find_message("bench.Nested");
  const auto* small = pool_.find_message("bench.Small");
  for (int iter = 0; iter < 50; ++iter) {
    DynamicMessage m(nested);
    if (rng() % 2) {
      auto* head = m.mutable_message(nested->field_by_name("head"));
      head->set_int64(small->field_by_name("id"), static_cast<int32_t>(rng()));
      head->set_uint64(small->field_by_name("stamp"), rng());
    }
    size_t items = rng() % 8;
    for (size_t i = 0; i < items; ++i) {
      auto* item = m.add_message(nested->field_by_name("items"));
      item->set_int64(small->field_by_name("id"), static_cast<int32_t>(rng()));
      item->set_uint64(small->field_by_name("flag"), rng() % 2);
      item->set_float(small->field_by_name("score"),
                      static_cast<float>(rng() % 1000) / 7.0f);
    }
    m.set_string(nested->field_by_name("label"), random_ascii(rng, rng() % 64));

    Bytes wire = WireCodec::serialize(m);
    DynamicMessage out(nested);
    auto st = WireCodec::parse(ByteSpan(wire), out);
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    ASSERT_TRUE(m.equals(out));

    // Re-encoding the parsed message must be byte-identical (canonical
    // field order in, canonical field order out).
    EXPECT_EQ(WireCodec::serialize(out), wire);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Range(0, 8));

}  // namespace
}  // namespace dpurpc::proto
