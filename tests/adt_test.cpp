// Tests for the Accelerator Description Table and the custom arena
// deserializer — the paper's core contribution. Includes differential
// tests against the reference codec, the vptr/default-instance trick on a
// real generated-style class, address-translation across buffer copies,
// and malformed-input rejection.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <random>
#include <thread>

#include "adt/adt.hpp"
#include "adt/adt_registry.hpp"
#include "adt/arena_deserializer.hpp"
#include "adt/message_base.hpp"
#include "adt/repeated_field.hpp"
#include "adt/serialize_plan.hpp"
#include "common/rng.hpp"
#include "proto/dynamic_message.hpp"
#include "proto/schema_parser.hpp"
#include "wire/coded_stream.hpp"

namespace dpurpc::adt {
namespace {

using arena::AddressTranslator;
using arena::OwningArena;
using arena::StdLibFlavor;
using proto::DynamicMessage;
using proto::FieldType;
using proto::WireCodec;

constexpr std::string_view kSchema = R"(
syntax = "proto3";
package bench;

message Small {
  int32 id = 1;
  bool flag = 2;
  float score = 3;
  uint64 stamp = 4;
}
message IntArray { repeated uint32 values = 1; }
message CharArray { string data = 1; }
message Nested {
  Small head = 1;
  repeated Small items = 2;
  string label = 3;
  repeated string tags = 4;
  repeated sint64 deltas = 5;
  double weight = 6;
}
message Recur { Recur next = 1; int32 depth = 2; }
)";

class AdtFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    proto::SchemaParser parser(pool_);
    auto st = parser.parse_and_link(kSchema);
    ASSERT_TRUE(st.is_ok()) << st.to_string();

    DescriptorAdtBuilder builder(StdLibFlavor::kLibstdcpp);
    for (const char* name :
         {"bench.Small", "bench.IntArray", "bench.CharArray", "bench.Nested",
          "bench.Recur"}) {
      auto idx = builder.add_message(pool_.find_message(name));
      ASSERT_TRUE(idx.is_ok()) << idx.status().to_string();
    }
    adt_ = std::move(builder).take();
    adt_.set_fingerprint(AbiFingerprint::current(StdLibFlavor::kLibstdcpp));
    ASSERT_TRUE(adt_.validate().is_ok());
  }

  uint32_t cls(std::string_view name) const {
    uint32_t i = adt_.find_class(name);
    EXPECT_NE(i, UINT32_MAX) << name;
    return i;
  }

  proto::DescriptorPool pool_;
  Adt adt_;
};

// ------------------------------------------------------------ table shape

TEST_F(AdtFixture, SynthesizedLayoutIsSane) {
  const auto& small = adt_.class_at(cls("bench.Small"));
  // header word (8) + has-bits (4) + id(4) + flag(1,pad) + score(4) + stamp(8)
  EXPECT_EQ(small.has_bits_offset, 8u);
  EXPECT_EQ(small.align, 8u);
  EXPECT_EQ(small.size % small.align, 0u);
  const auto* id = small.field_by_number(1);
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->offset, 12u);
  EXPECT_EQ(id->has_bit, 0);
  const auto* stamp = small.field_by_number(4);
  EXPECT_EQ(stamp->offset % 8, 0u);  // natural alignment
  EXPECT_EQ(small.field_by_number(9), nullptr);
}

TEST_F(AdtFixture, StringFieldsSizedPerFlavor) {
  const auto& chars = adt_.class_at(cls("bench.CharArray"));
  const auto* data = chars.field_by_number(1);
  EXPECT_EQ(field_storage_size(FieldType::kString, false, StdLibFlavor::kLibstdcpp), 32u);
  EXPECT_EQ(field_storage_size(FieldType::kString, false, StdLibFlavor::kLibcpp), 24u);
  EXPECT_GE(chars.size, data->offset + 32);
}

TEST_F(AdtFixture, SelfReferentialTypeLinksToItself) {
  uint32_t r = cls("bench.Recur");
  const auto* next = adt_.class_at(r).field_by_number(1);
  EXPECT_EQ(next->child_class, r);
}

TEST_F(AdtFixture, ChildLinksResolve) {
  const auto& nested = adt_.class_at(cls("bench.Nested"));
  EXPECT_EQ(nested.field_by_number(1)->child_class, cls("bench.Small"));
  EXPECT_EQ(nested.field_by_number(2)->child_class, cls("bench.Small"));
  EXPECT_TRUE(nested.field_by_number(2)->repeated);
}

TEST_F(AdtFixture, TooManySingularFieldsRejected) {
  proto::DescriptorPool pool;
  std::string src = "syntax = \"proto3\";\nmessage Wide {\n";
  for (int i = 1; i <= 33; ++i) {
    src += "  int32 f" + std::to_string(i) + " = " + std::to_string(i) + ";\n";
  }
  src += "}\n";
  proto::SchemaParser p(pool);
  ASSERT_TRUE(p.parse_and_link(src).is_ok());
  DescriptorAdtBuilder builder(StdLibFlavor::kLibstdcpp);
  EXPECT_FALSE(builder.add_message(pool.find_message("Wide")).is_ok());
}

// --------------------------------------------------------- serialization

TEST_F(AdtFixture, SerializeDeserializeRoundTrip) {
  Bytes wire = adt_.serialize();
  auto back = Adt::deserialize(ByteSpan(wire));
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back->class_count(), adt_.class_count());
  uint32_t i = back->find_class("bench.Nested");
  ASSERT_NE(i, UINT32_MAX);
  const auto& orig = adt_.class_at(adt_.find_class("bench.Nested"));
  const auto& copy = back->class_at(i);
  EXPECT_EQ(copy.size, orig.size);
  EXPECT_EQ(copy.default_bytes, orig.default_bytes);
  ASSERT_EQ(copy.fields.size(), orig.fields.size());
  for (size_t j = 0; j < copy.fields.size(); ++j) {
    EXPECT_EQ(copy.fields[j].offset, orig.fields[j].offset);
    EXPECT_EQ(copy.fields[j].type, orig.fields[j].type);
    EXPECT_EQ(copy.fields[j].has_bit, orig.fields[j].has_bit);
  }
  EXPECT_TRUE(back->fingerprint().compatible_with(adt_.fingerprint()).is_ok());
}

TEST_F(AdtFixture, DeserializeRejectsCorruption) {
  Bytes wire = adt_.serialize();
  // Bad magic.
  Bytes bad = wire;
  bad[0] = static_cast<std::byte>(0xEE);
  EXPECT_FALSE(Adt::deserialize(ByteSpan(bad)).is_ok());
  // Truncations at every prefix must fail, not crash.
  for (size_t cut = 1; cut < wire.size(); cut += 7) {
    EXPECT_FALSE(Adt::deserialize(ByteSpan(wire.data(), wire.size() - cut)).is_ok());
  }
  // Trailing garbage.
  Bytes extra = wire;
  extra.push_back(std::byte{0});
  EXPECT_FALSE(Adt::deserialize(ByteSpan(extra)).is_ok());
}

TEST(AbiFingerprint, MismatchesDetected) {
  auto a = AbiFingerprint::current(StdLibFlavor::kLibstdcpp);
  EXPECT_TRUE(a.compatible_with(a).is_ok());
  auto b = a;
  b.string_flavor = static_cast<uint8_t>(StdLibFlavor::kLibcpp);
  b.string_size = 24;
  EXPECT_FALSE(a.compatible_with(b).is_ok());
  auto c = a;
  c.little_endian = 0;
  EXPECT_FALSE(a.compatible_with(c).is_ok());
  auto d = a;
  d.pointer_size = 4;
  EXPECT_FALSE(a.compatible_with(d).is_ok());
}

// ----------------------------------------- deserializer (mirrored space)

TEST_F(AdtFixture, SmallMessageFields) {
  const auto* desc = pool_.find_message("bench.Small");
  DynamicMessage m(desc);
  m.set_int64(desc->field_by_name("id"), -42);
  m.set_uint64(desc->field_by_name("flag"), 1);
  m.set_float(desc->field_by_name("score"), 3.25f);
  m.set_uint64(desc->field_by_name("stamp"), 0xdeadbeefull);
  Bytes wire = WireCodec::serialize(m);

  OwningArena arena(1 << 16);
  ArenaDeserializer deser(&adt_);
  auto obj = deser.deserialize(cls("bench.Small"), ByteSpan(wire), arena, {});
  ASSERT_TRUE(obj.is_ok()) << obj.status().to_string();

  LayoutView v(&adt_, cls("bench.Small"), *obj);
  EXPECT_TRUE(v.has(1));
  EXPECT_EQ(v.get_int64(1), -42);
  EXPECT_TRUE(v.get_bool(2));
  EXPECT_FLOAT_EQ(v.get_float(3), 3.25f);
  EXPECT_EQ(v.get_uint64(4), 0xdeadbeefull);
}

TEST_F(AdtFixture, UnsetFieldsKeepDefaultsAndHasBitsClear) {
  Bytes wire;  // empty message
  OwningArena arena(1 << 12);
  ArenaDeserializer deser(&adt_);
  auto obj = deser.deserialize(cls("bench.Small"), ByteSpan(wire), arena, {});
  ASSERT_TRUE(obj.is_ok());
  LayoutView v(&adt_, cls("bench.Small"), *obj);
  for (uint32_t n : {1u, 2u, 3u, 4u}) EXPECT_FALSE(v.has(n));
  EXPECT_EQ(v.get_int64(1), 0);
  EXPECT_EQ(v.get_uint64(4), 0u);
}

TEST_F(AdtFixture, PackedIntArrayExactAllocation) {
  const auto* desc = pool_.find_message("bench.IntArray");
  const auto* values = desc->field_by_name("values");
  std::mt19937_64 rng(kDefaultSeed);
  SkewedVarintDistribution dist;
  DynamicMessage m(desc);
  std::vector<uint32_t> expect;
  for (int i = 0; i < 512; ++i) {
    uint32_t v = dist(rng);
    expect.push_back(v);
    m.add_uint64(values, v);
  }
  Bytes wire = WireCodec::serialize(m);

  OwningArena arena(1 << 16);
  ArenaDeserializer deser(&adt_);
  auto obj = deser.deserialize(cls("bench.IntArray"), ByteSpan(wire), arena, {});
  ASSERT_TRUE(obj.is_ok()) << obj.status().to_string();
  LayoutView v(&adt_, cls("bench.IntArray"), *obj);
  ASSERT_EQ(v.repeated_size(1), 512u);
  for (uint32_t i = 0; i < 512; ++i) EXPECT_EQ(v.repeated_uint64(1, i), expect[i]);
}

TEST_F(AdtFixture, CharArrayLongString) {
  const auto* desc = pool_.find_message("bench.CharArray");
  std::mt19937_64 rng(kDefaultSeed);
  std::string payload = random_ascii(rng, 8000);
  DynamicMessage m(desc);
  m.set_string(desc->field_by_name("data"), payload);
  Bytes wire = WireCodec::serialize(m);
  EXPECT_EQ(wire.size(), 8003u);  // matches the paper's x8000 Chars size

  OwningArena arena(1 << 16);
  ArenaDeserializer deser(&adt_);
  auto obj = deser.deserialize(cls("bench.CharArray"), ByteSpan(wire), arena, {});
  ASSERT_TRUE(obj.is_ok());
  LayoutView v(&adt_, cls("bench.CharArray"), *obj);
  EXPECT_EQ(v.get_string(1), payload);
}

TEST_F(AdtFixture, NestedMessagesStringsAndRepeats) {
  const auto* nested = pool_.find_message("bench.Nested");
  const auto* small = pool_.find_message("bench.Small");
  DynamicMessage m(nested);
  auto* head = m.mutable_message(nested->field_by_name("head"));
  head->set_int64(small->field_by_name("id"), 11);
  for (int i = 0; i < 5; ++i) {
    auto* item = m.add_message(nested->field_by_name("items"));
    item->set_int64(small->field_by_name("id"), 100 + i);
    item->set_uint64(small->field_by_name("stamp"), 1000u + i);
  }
  m.set_string(nested->field_by_name("label"), "a label longer than SSO capacity");
  m.add_string(nested->field_by_name("tags"), "sso");
  m.add_string(nested->field_by_name("tags"), std::string(40, 't'));
  m.add_int64(nested->field_by_name("deltas"), -7);
  m.add_int64(nested->field_by_name("deltas"), 1234567);
  m.set_double(nested->field_by_name("weight"), 6.5);
  Bytes wire = WireCodec::serialize(m);

  OwningArena arena(1 << 16);
  ArenaDeserializer deser(&adt_);
  auto obj = deser.deserialize(cls("bench.Nested"), ByteSpan(wire), arena, {});
  ASSERT_TRUE(obj.is_ok()) << obj.status().to_string();
  LayoutView v(&adt_, cls("bench.Nested"), *obj);

  ASSERT_TRUE(v.has(1));
  EXPECT_EQ(v.get_message(1).get_int64(1), 11);
  ASSERT_EQ(v.repeated_size(2), 5u);
  EXPECT_EQ(v.repeated_message(2, 4).get_int64(1), 104);
  EXPECT_EQ(v.repeated_message(2, 4).get_uint64(4), 1004u);
  EXPECT_EQ(v.get_string(3), "a label longer than SSO capacity");
  ASSERT_EQ(v.repeated_size(4), 2u);
  EXPECT_EQ(v.repeated_string(4, 0), "sso");
  EXPECT_EQ(v.repeated_string(4, 1), std::string(40, 't'));
  ASSERT_EQ(v.repeated_size(5), 2u);
  EXPECT_EQ(v.repeated_int64(5, 0), -7);
  EXPECT_EQ(v.repeated_int64(5, 1), 1234567);
  EXPECT_DOUBLE_EQ(v.get_double(6), 6.5);
}

TEST_F(AdtFixture, EverythingLivesInsideTheArena) {
  // Contiguity (§V.C): all storage for the object must come from the arena.
  const auto* desc = pool_.find_message("bench.Nested");
  const auto* small = pool_.find_message("bench.Small");
  DynamicMessage m(desc);
  m.set_string(desc->field_by_name("label"), std::string(100, 'L'));
  auto* item = m.add_message(desc->field_by_name("items"));
  item->set_int64(small->field_by_name("id"), 1);
  Bytes wire = WireCodec::serialize(m);

  OwningArena arena(1 << 14);
  ArenaDeserializer deser(&adt_);
  auto obj = deser.deserialize(cls("bench.Nested"), ByteSpan(wire), arena, {});
  ASSERT_TRUE(obj.is_ok());
  LayoutView v(&adt_, cls("bench.Nested"), *obj);
  EXPECT_TRUE(arena.contains(*obj));
  EXPECT_TRUE(arena.contains(v.get_string(3).data()));
  // The repeated-message element pointer targets arena memory too.
  const void* elem = &v.repeated_message(2, 0).class_entry();
  (void)elem;  // class_entry is table memory; check the instance instead:
  // reconstruct raw element pointer through repeated_message's base
  // (already proven readable above).
  SUCCEED();
}

TEST_F(AdtFixture, MergeSemanticsForRepeatedSingularMessage) {
  // Two occurrences of Nested.head must merge, last scalar wins.
  const auto* nested = pool_.find_message("bench.Nested");
  const auto* small = pool_.find_message("bench.Small");
  Bytes wire;
  {
    wire::Writer w(wire);
    DynamicMessage h1(small);
    h1.set_int64(small->field_by_name("id"), 1);
    h1.set_uint64(small->field_by_name("stamp"), 77);
    Bytes b1 = WireCodec::serialize(h1);
    w.write_tag(1, wire::WireType::kLengthDelimited);
    w.write_length_delimited(as_string_view(b1));
    DynamicMessage h2(small);
    h2.set_int64(small->field_by_name("id"), 2);  // overrides id, keeps stamp
    Bytes b2 = WireCodec::serialize(h2);
    w.write_tag(1, wire::WireType::kLengthDelimited);
    w.write_length_delimited(as_string_view(b2));
  }
  OwningArena arena(1 << 14);
  ArenaDeserializer deser(&adt_);
  auto obj = deser.deserialize(cls("bench.Nested"), ByteSpan(wire), arena, {});
  ASSERT_TRUE(obj.is_ok());
  LayoutView v(&adt_, cls("bench.Nested"), *obj);
  EXPECT_EQ(v.get_message(1).get_int64(1), 2);
  EXPECT_EQ(v.get_message(1).get_uint64(4), 77u);
  (void)nested;
}

// --------------------------------------- deserializer (translated space)

TEST_F(AdtFixture, TranslatedObjectSurvivesBufferCopy) {
  // The offload scenario: deserialize into a send buffer with pointers
  // expressed for the receive buffer, memcpy (the simulated RDMA write),
  // then read on the receiver side with zero fixup.
  constexpr size_t kBuf = 1 << 15;
  std::vector<std::byte> sbuf(kBuf), rbuf(kBuf);
  AddressTranslator xlate{reinterpret_cast<intptr_t>(rbuf.data()) -
                          reinterpret_cast<intptr_t>(sbuf.data())};
  arena::Arena send_arena(sbuf.data(), kBuf);

  const auto* nested = pool_.find_message("bench.Nested");
  const auto* small = pool_.find_message("bench.Small");
  DynamicMessage m(nested);
  m.mutable_message(nested->field_by_name("head"))
      ->set_int64(small->field_by_name("id"), 5);
  for (int i = 0; i < 3; ++i) {
    m.add_message(nested->field_by_name("items"))
        ->set_int64(small->field_by_name("id"), i);
    m.add_string(nested->field_by_name("tags"), "tag-" + std::string(30, 'x') + std::to_string(i));
  }
  m.set_string(nested->field_by_name("label"), "sso-label");
  Bytes wire = WireCodec::serialize(m);

  ArenaDeserializer deser(&adt_);
  auto obj = deser.deserialize(cls("bench.Nested"), ByteSpan(wire), send_arena, xlate);
  ASSERT_TRUE(obj.is_ok()) << obj.status().to_string();

  std::memcpy(rbuf.data(), sbuf.data(), kBuf);  // the RDMA write

  auto* remote_obj = reinterpret_cast<std::byte*>(xlate.translate_addr(*obj));
  LayoutView v(&adt_, cls("bench.Nested"), remote_obj);
  EXPECT_EQ(v.get_message(1).get_int64(1), 5);
  ASSERT_EQ(v.repeated_size(2), 3u);
  for (uint32_t i = 0; i < 3; ++i) EXPECT_EQ(v.repeated_message(2, i).get_int64(1), i);
  ASSERT_EQ(v.repeated_size(4), 3u);
  for (uint32_t i = 0; i < 3; ++i) {
    std::string expect = "tag-" + std::string(30, 'x') + std::to_string(i);
    EXPECT_EQ(v.repeated_string(4, i), expect);
    // Pointers must land inside the receive buffer, not the send buffer.
    const char* data = v.repeated_string(4, i).data();
    EXPECT_GE(reinterpret_cast<const std::byte*>(data), rbuf.data());
    EXPECT_LT(reinterpret_cast<const std::byte*>(data), rbuf.data() + kBuf);
  }
  EXPECT_EQ(v.get_string(3), "sso-label");
}

// --------------------------------------------------- hostile wire bytes

TEST_F(AdtFixture, RejectsMalformedInput) {
  OwningArena arena(1 << 14);
  ArenaDeserializer deser(&adt_);
  uint32_t small = cls("bench.Small");

  {  // truncated varint
    Bytes wire;
    wire::Writer w(wire);
    w.write_tag(1, wire::WireType::kVarint);
    wire.push_back(std::byte{0x80});
    arena.reset();
    EXPECT_FALSE(deser.deserialize(small, ByteSpan(wire), arena, {}).is_ok());
  }
  {  // wire type mismatch
    Bytes wire;
    wire::Writer w(wire);
    w.write_tag(1, wire::WireType::kFixed64);
    w.write_fixed64(1);
    arena.reset();
    EXPECT_FALSE(deser.deserialize(small, ByteSpan(wire), arena, {}).is_ok());
  }
  {  // packed fixed payload with ragged size
    Bytes wire;
    wire::Writer w(wire);
    w.write_tag(1, wire::WireType::kLengthDelimited);
    w.write_length_delimited("\x01\x02\x03");  // not a multiple of... varints
    // values is varint-packed; make the last varint unterminated instead:
    Bytes wire2;
    wire::Writer w2(wire2);
    w2.write_tag(1, wire::WireType::kLengthDelimited);
    w2.write_length_delimited("\x81\x82");  // continuation never ends
    arena.reset();
    EXPECT_FALSE(
        deser.deserialize(cls("bench.IntArray"), ByteSpan(wire2), arena, {}).is_ok());
  }
  {  // invalid UTF-8 in a string field
    Bytes wire;
    wire::Writer w(wire);
    w.write_tag(1, wire::WireType::kLengthDelimited);
    w.write_length_delimited("\xff\xfe");
    arena.reset();
    EXPECT_EQ(
        deser.deserialize(cls("bench.CharArray"), ByteSpan(wire), arena, {}).status().code(),
        Code::kDataLoss);
  }
}

TEST_F(AdtFixture, Utf8ValidationCanBeDisabled) {
  CodecOptions opts;
  opts.validate_utf8 = false;
  ArenaDeserializer deser(&adt_, opts);
  Bytes wire;
  wire::Writer w(wire);
  w.write_tag(1, wire::WireType::kLengthDelimited);
  w.write_length_delimited("\xff\xfe");
  OwningArena arena(1 << 12);
  EXPECT_TRUE(deser.deserialize(cls("bench.CharArray"), ByteSpan(wire), arena, {}).is_ok());
}

TEST_F(AdtFixture, RecursionDepthEnforced) {
  Bytes payload;
  for (int depth = 0; depth < 150; ++depth) {
    Bytes next;
    wire::Writer w(next);
    w.write_tag(1, wire::WireType::kLengthDelimited);
    w.write_length_delimited(as_string_view(payload));
    payload = std::move(next);
  }
  OwningArena arena(1 << 20);
  ArenaDeserializer deser(&adt_);
  EXPECT_EQ(deser.deserialize(cls("bench.Recur"), ByteSpan(payload), arena, {})
                .status()
                .code(),
            Code::kDataLoss);
}

TEST_F(AdtFixture, ArenaExhaustionIsAnErrorNotACrash) {
  const auto* desc = pool_.find_message("bench.CharArray");
  DynamicMessage m(desc);
  m.set_string(desc->field_by_name("data"), std::string(4096, 'x'));
  Bytes wire = WireCodec::serialize(m);
  OwningArena arena(256);  // object header fits, chars do not
  ArenaDeserializer deser(&adt_);
  EXPECT_EQ(deser.deserialize(cls("bench.CharArray"), ByteSpan(wire), arena, {})
                .status()
                .code(),
            Code::kResourceExhausted);
}

TEST_F(AdtFixture, UnknownFieldsSkipped) {
  Bytes wire;
  wire::Writer w(wire);
  w.write_tag(55, wire::WireType::kLengthDelimited);
  w.write_length_delimited("whatever");
  w.write_tag(1, wire::WireType::kVarint);
  w.write_varint(3);
  OwningArena arena(1 << 12);
  ArenaDeserializer deser(&adt_);
  auto obj = deser.deserialize(cls("bench.Small"), ByteSpan(wire), arena, {});
  ASSERT_TRUE(obj.is_ok());
  EXPECT_EQ(LayoutView(&adt_, cls("bench.Small"), *obj).get_int64(1), 3);
}

// ------------------------------------------------- differential fuzzing

// Property: for random Nested messages, the custom arena deserializer and
// the reference codec agree on every field.
class AdtDifferentialFuzz : public AdtFixture,
                            public ::testing::WithParamInterface<int> {};

TEST_P(AdtDifferentialFuzz, AgreesWithReferenceCodec) {
  std::mt19937_64 rng(kDefaultSeed + GetParam());
  const auto* nested = pool_.find_message("bench.Nested");
  const auto* small = pool_.find_message("bench.Small");
  ArenaDeserializer deser(&adt_);
  OwningArena arena(1 << 18);

  for (int iter = 0; iter < 40; ++iter) {
    arena.reset();
    DynamicMessage m(nested);
    if (rng() % 2) {
      m.mutable_message(nested->field_by_name("head"))
          ->set_int64(small->field_by_name("id"), static_cast<int32_t>(rng()));
    }
    size_t items = rng() % 6;
    for (size_t i = 0; i < items; ++i) {
      auto* it = m.add_message(nested->field_by_name("items"));
      it->set_int64(small->field_by_name("id"), static_cast<int32_t>(rng()));
      it->set_uint64(small->field_by_name("flag"), rng() % 2);
      it->set_float(small->field_by_name("score"), static_cast<float>(rng() % 97));
      it->set_uint64(small->field_by_name("stamp"), rng());
    }
    m.set_string(nested->field_by_name("label"), random_ascii(rng, rng() % 50));
    size_t tags = rng() % 4;
    for (size_t i = 0; i < tags; ++i) {
      m.add_string(nested->field_by_name("tags"), random_ascii(rng, rng() % 30));
    }
    size_t deltas = rng() % 20;
    for (size_t i = 0; i < deltas; ++i) {
      m.add_int64(nested->field_by_name("deltas"), static_cast<int64_t>(rng()));
    }
    if (rng() % 2) m.set_double(nested->field_by_name("weight"), static_cast<double>(rng() % 1000) / 3.0);

    Bytes wire = WireCodec::serialize(m);
    DynamicMessage ref(nested);
    ASSERT_TRUE(WireCodec::parse(ByteSpan(wire), ref).is_ok());

    auto obj = deser.deserialize(cls("bench.Nested"), ByteSpan(wire), arena, {});
    ASSERT_TRUE(obj.is_ok()) << obj.status().to_string();
    LayoutView v(&adt_, cls("bench.Nested"), *obj);

    EXPECT_EQ(v.has(1), ref.has(nested->field_by_name("head")));
    if (v.has(1)) {
      EXPECT_EQ(v.get_message(1).get_int64(1),
                ref.get_message(nested->field_by_name("head"))
                    ->get_int64(small->field_by_name("id")));
    }
    ASSERT_EQ(v.repeated_size(2), ref.repeated_size(nested->field_by_name("items")));
    for (uint32_t i = 0; i < v.repeated_size(2); ++i) {
      const auto* r = ref.get_repeated_message(nested->field_by_name("items"), i);
      EXPECT_EQ(v.repeated_message(2, i).get_int64(1),
                r->get_int64(small->field_by_name("id")));
      EXPECT_EQ(v.repeated_message(2, i).get_uint64(2),
                r->get_uint64(small->field_by_name("flag")));
      EXPECT_EQ(v.repeated_message(2, i).get_float(3),
                r->get_float(small->field_by_name("score")));
      EXPECT_EQ(v.repeated_message(2, i).get_uint64(4),
                r->get_uint64(small->field_by_name("stamp")));
    }
    EXPECT_EQ(v.get_string(3), ref.get_string(nested->field_by_name("label")));
    ASSERT_EQ(v.repeated_size(4), ref.repeated_size(nested->field_by_name("tags")));
    for (uint32_t i = 0; i < v.repeated_size(4); ++i) {
      EXPECT_EQ(v.repeated_string(4, i),
                ref.get_repeated_string(nested->field_by_name("tags"), i));
    }
    ASSERT_EQ(v.repeated_size(5), ref.repeated_size(nested->field_by_name("deltas")));
    for (uint32_t i = 0; i < v.repeated_size(5); ++i) {
      EXPECT_EQ(v.repeated_int64(5, i),
                ref.get_repeated_int64(nested->field_by_name("deltas"), i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdtDifferentialFuzz, ::testing::Range(0, 6));

// --------------------------------- generated-class path (the vptr trick)

// A hand-rolled "generated" class, exactly what adtc emits.
class GenSmall final : public MessageBase {
 public:
  GenSmall() = default;
  std::string_view type_name() const noexcept override { return "bench.Small"; }

  int32_t id() const noexcept { return id_; }
  bool flag() const noexcept { return flag_ != 0; }
  float score() const noexcept { return score_; }
  uint64_t stamp() const noexcept { return stamp_; }
  bool has_id() const noexcept { return (has_bits_ & 1u) != 0; }

  static const GenSmall& default_instance() {
    static const GenSmall inst;
    return inst;
  }

  static uint32_t register_adt(Adt& adt) {
    const GenSmall& d = default_instance();
    return ClassBuilder<GenSmall>("bench.Small", d)
        .has_bits(d.has_bits_)
        .field(1, FieldType::kInt32, d.id_, 0)
        .field(2, FieldType::kBool, d.flag_, 1)
        .field(3, FieldType::kFloat, d.score_, 2)
        .field(4, FieldType::kUint64, d.stamp_, 3)
        .register_in(adt);
  }

 private:
  uint32_t has_bits_ = 0;
  int32_t id_ = 0;
  uint8_t flag_ = 0;
  float score_ = 0.0f;
  uint64_t stamp_ = 0;
};

TEST(GeneratedClassPath, VptrFromDefaultInstanceSurvivesDeserialization) {
  Adt adt;
  uint32_t idx = GenSmall::register_adt(adt);
  adt.set_fingerprint(AbiFingerprint::current(StdLibFlavor::kLibstdcpp));
  ASSERT_TRUE(adt.validate().is_ok());

  // Ship the ADT as the host would (serialize→deserialize) and use the
  // *received* table: the default bytes still carry this process's vptr.
  Bytes shipped = adt.serialize();
  auto received = Adt::deserialize(ByteSpan(shipped));
  ASSERT_TRUE(received.is_ok());

  proto::DescriptorPool pool;
  proto::SchemaParser parser(pool);
  ASSERT_TRUE(parser
                  .parse_and_link("syntax = \"proto3\"; package bench;"
                                  "message Small { int32 id = 1; bool flag = 2;"
                                  " float score = 3; uint64 stamp = 4; }")
                  .is_ok());
  const auto* desc = pool.find_message("bench.Small");
  DynamicMessage m(desc);
  m.set_int64(desc->field_by_name("id"), 314);
  m.set_uint64(desc->field_by_name("flag"), 1);
  m.set_float(desc->field_by_name("score"), -2.5f);
  m.set_uint64(desc->field_by_name("stamp"), 9999);
  Bytes wire = WireCodec::serialize(m);

  OwningArena arena(1 << 12);
  ArenaDeserializer deser(&*received);
  auto obj = deser.deserialize(idx, ByteSpan(wire), arena, {});
  ASSERT_TRUE(obj.is_ok()) << obj.status().to_string();

  // Interpret the arena bytes as the real C++ class: accessors AND virtual
  // dispatch must work because the default-instance copy included the vptr.
  const auto* typed = static_cast<const GenSmall*>(*obj);
  EXPECT_EQ(typed->id(), 314);
  EXPECT_TRUE(typed->flag());
  EXPECT_FLOAT_EQ(typed->score(), -2.5f);
  EXPECT_EQ(typed->stamp(), 9999u);
  EXPECT_TRUE(typed->has_id());
  const MessageBase* as_base = typed;
  EXPECT_EQ(as_base->type_name(), "bench.Small");  // virtual call through vptr
}

TEST(GeneratedClassPath, RepeatedFieldTemplatesMatchRepHeaderLayout) {
  OwningArena arena(1 << 12);
  RepeatedField<uint32_t> ints;
  for (uint32_t i = 0; i < 100; ++i) ASSERT_TRUE(ints.add(i * 3, arena));
  EXPECT_EQ(ints.size(), 100u);
  EXPECT_EQ(ints[99], 297u);

  // resize_uninitialized: the packed-decode fast path.
  RepeatedField<uint32_t> packed;
  uint32_t* buf = packed.resize_uninitialized(16, arena);
  ASSERT_NE(buf, nullptr);
  for (uint32_t i = 0; i < 16; ++i) buf[i] = i;
  EXPECT_EQ(packed.size(), 16u);
  EXPECT_EQ(packed[15], 15u);

  RepeatedPtrField<int> ptrs;
  int* a = arena.allocate_array<int>(1);
  *a = 42;
  ASSERT_TRUE(ptrs.add(a, arena));
  EXPECT_EQ(ptrs[0], 42);
}

TEST(GeneratedClassPath, ArenaExhaustionInRepeatedField) {
  OwningArena arena(32);
  RepeatedField<uint64_t> xs;
  bool ok = true;
  for (int i = 0; i < 100 && ok; ++i) ok = xs.add(i, arena);
  EXPECT_FALSE(ok);  // must fail cleanly, not overrun
}

// ------------------------------------------------ plan snapshot (RCU slot)

TEST_F(AdtFixture, PlanSnapshotColdThenHotPath) {
  const PlanCacheStats cold = adt_.plan_cache_stats();
  auto first = adt_.plans();
  ASSERT_NE(first, nullptr);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(adt_.plans().get(), first.get());
  const PlanCacheStats warm = adt_.plan_cache_stats();
  EXPECT_EQ(warm.rebuilds - cold.rebuilds, 1u);       // built exactly once
  EXPECT_EQ(warm.mutex_entries - cold.mutex_entries, 1u);
  EXPECT_GE(warm.snapshot_hits - cold.snapshot_hits, 100u);
}

TEST_F(AdtFixture, PlanSnapshotRefreshUnderLoad) {
  // Readers hammer plans() while the main thread repeatedly invalidates
  // the snapshot. The RCU slot must hand every reader a fully built,
  // internally consistent PlanSet (stale is fine; torn is not), keep
  // every retired snapshot alive for the table's lifetime so a reader's
  // stale pointer never dangles, and stay TSan-clean. This is the race
  // the decode pool runs all day.
  constexpr int kReaders = 4;
  constexpr int kInvalidations = 300;
  const uint32_t classes = adt_.class_count();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<bool> torn{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto snap = adt_.plans();
        if (snap == nullptr ||
            snap->parse().for_class(0) == nullptr ||
            snap->serialize().for_class(0) == nullptr) {
          torn.store(true);
          return;
        }
        // Touch every class's slot: a half-built set would fault or
        // return garbage here, and TSan would flag the publish.
        for (uint32_t c = 0; c < classes; ++c) (void)snap->parse().for_class(c);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  auto held = adt_.plans();  // pin one early snapshot across all rebuilds
  for (int i = 0; i < kInvalidations; ++i) {
    adt_.invalidate_plans();
    ASSERT_NE(adt_.plans(), nullptr);
  }
  // On a one-core box the readers may not have been scheduled yet; keep
  // churning until they have demonstrably raced some rebuilds.
  while (reads.load(std::memory_order_relaxed) < 50 && !torn.load()) {
    adt_.invalidate_plans();
    ASSERT_NE(adt_.plans(), nullptr);
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_FALSE(torn.load());
  EXPECT_GT(reads.load(), 0u);
  // The pinned snapshot is stale but still fully usable.
  EXPECT_NE(held->parse().for_class(0), nullptr);
  const PlanCacheStats stats = adt_.plan_cache_stats();
  EXPECT_GE(stats.rebuilds, static_cast<uint64_t>(kInvalidations));
  EXPECT_GT(stats.snapshot_hits, 0u);
}

TEST_F(AdtFixture, MutationInvalidatesPlanSnapshot) {
  auto before = adt_.plans();
  ASSERT_NE(before, nullptr);
  // Structural mutation must drop the snapshot so stale plans can't be
  // applied to a table they no longer describe.
  DescriptorAdtBuilder builder(StdLibFlavor::kLibstdcpp);
  ASSERT_TRUE(builder.add_message(pool_.find_message("bench.Small")).is_ok());
  Adt extra = std::move(builder).take();
  adt_.add_class(extra.class_at(0));
  auto after = adt_.plans();
  ASSERT_NE(after, nullptr);
  EXPECT_NE(after.get(), before.get());
  EXPECT_NE(after->parse().for_class(adt_.class_count() - 1), nullptr);
}

}  // namespace
}  // namespace dpurpc::adt
