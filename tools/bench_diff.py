#!/usr/bin/env python3
"""Diff two BENCH_6.json documents, figure by figure.

CI calls this with the previous run's combined bench document (restored
from the actions cache) and the fresh one, and prints a per-figure table
of every numeric metric: old value, new value, percent delta, and a
REGRESSED/IMPROVED mark when the move exceeds the threshold (default
10%) in a direction the metric's name tells us how to read (rps/gbps up
is good, ns/ms down is good). Warn-only by default — smoke-mode numbers
on shared runners are for trend-watching, not gating; --strict turns
regressions into a non-zero exit for quiet machines.

Usage: bench_diff.py OLD.json NEW.json [--threshold PCT] [--strict] [--all]

  --threshold PCT  mark threshold in percent (default 10)
  --strict         exit 1 if any metric REGRESSED past the threshold
  --all            print every metric, not just the marked ones
"""
import argparse
import json
import sys

# Direction heuristics by name fragment: which way is "better"?
# INFORMATIONAL is checked FIRST: per-stage share-of-e2e attribution and
# resource-occupancy levels (the fig12 forensics leaves) describe *where*
# time went, not how much — a share shifting between stages is the
# datapath's shape changing, not a regression, and it must never trip the
# strict perf-trajectory gate. The first-position check also means
# "..._share"/"..._occupancy" wins over any fragment inside the stage
# name ("flush_wait_share" is INFO, not a "stall"-style latency).
INFORMATIONAL = ("share", "occupancy")
# "knee" covers fig12's knee_fraction / knee_offered_rps (a knee that
# moves toward heavier load means the datapath saturates later); "mib_s"
# is checked on the higher side BEFORE the "_s" duration suffix below so
# throughput rates (stream_mib_s) never read as latencies.
HIGHER_IS_BETTER = ("rps", "gbps", "mib_s", "hits", "reduction", "requests",
                    "knee")
LOWER_IS_BETTER = ("ns", "ms", "cores", "steals", "dropped", "overflow",
                   "mutex", "rebuilds", "bytes", "p50", "p95", "p99",
                   "latency", "timeout", "stall", "errors")
# Unit suffixes: a leaf measured in (micro/nano/milli)seconds is a
# latency/duration — lower is better. Suffix-only so "status" or
# "bonus" can never match a bare "us"/"s" fragment.
LOWER_IS_BETTER_SUFFIXES = ("_us", "_ns", "_ms", "_s")


def direction(path):
    """+1 higher-better, -1 lower-better, 0 unknown (any move is notable),
    None informational (reported, never a regression)."""
    leaf = path.rsplit(".", 1)[-1].lower()
    for frag in INFORMATIONAL:
        if frag in leaf:
            return None
    for frag in HIGHER_IS_BETTER:
        if frag in leaf:
            return 1
    for frag in LOWER_IS_BETTER:
        if frag in leaf:
            return -1
    for suffix in LOWER_IS_BETTER_SUFFIXES:
        if leaf.endswith(suffix):
            return -1
    return 0


def row_key(item):
    """A stable label for one dict inside a list (e.g. {"message": "Small",
    ...} -> "Small"; {"workers": 4, ...} -> "workers=4")."""
    for k in ("message", "name", "label"):
        if isinstance(item.get(k), str):
            return item[k]
    for k, v in item.items():
        if isinstance(v, (int, str)) and not isinstance(v, bool):
            return "%s=%s" % (k, v)
    return "?"


def flatten(node, prefix, out):
    """Collect numeric leaves as dotted-path -> value."""
    if isinstance(node, dict):
        for k, v in node.items():
            flatten(v, "%s.%s" % (prefix, k) if prefix else k, out)
    elif isinstance(node, list):
        for item in node:
            if isinstance(item, dict):
                flatten(item, "%s[%s]" % (prefix, row_key(item)), out)
            # lists of scalars carry no stable identity; skip them
    elif isinstance(node, bool):
        pass  # shape booleans (e.g. monotonic_1_to_4) aren't metrics
    elif isinstance(node, (int, float)):
        out[prefix] = float(node)


def diff_figure(old, new, threshold, show_all):
    """Return (lines, n_regressed) for one figure's flattened metrics."""
    old_flat, new_flat = {}, {}
    flatten(old, "", old_flat)
    flatten(new, "", new_flat)
    lines, regressed = [], 0
    for path in sorted(set(old_flat) | set(new_flat)):
        a, b = old_flat.get(path), new_flat.get(path)
        if a is None or b is None:
            lines.append("  %-58s %12s %12s %9s  %s" % (
                path,
                "-" if a is None else ("%.3f" % a),
                "-" if b is None else ("%.3f" % b),
                "", "ADDED" if a is None else "REMOVED"))
            continue
        if a == 0.0:
            pct = 0.0 if b == 0.0 else float("inf")
        else:
            pct = 100.0 * (b - a) / abs(a)
        mark = ""
        if abs(pct) > threshold:
            d = direction(path)
            if d is None:
                mark = "INFO"
            elif d == 0:
                mark = "CHANGED"
            elif pct * d < 0:
                mark = "REGRESSED"
                regressed += 1
            else:
                mark = "IMPROVED"
        if mark or show_all:
            lines.append("  %-58s %12.3f %12.3f %+8.1f%%  %s"
                         % (path, a, b, pct, mark))
    return lines, regressed


def main():
    ap = argparse.ArgumentParser(
        description="Per-figure diff of two BENCH_6.json documents")
    ap.add_argument("old")
    ap.add_argument("new")
    ap.add_argument("--threshold", type=float, default=10.0)
    ap.add_argument("--strict", action="store_true")
    ap.add_argument("--all", action="store_true", dest="show_all")
    args = ap.parse_args()

    try:
        with open(args.old) as f:
            old = json.load(f)
        with open(args.new) as f:
            new = json.load(f)
    except (OSError, ValueError) as e:
        print("bench_diff: %s" % e, file=sys.stderr)
        return 2

    total_regressed = 0
    for fig in sorted(set(old) | set(new)):
        if fig not in old or fig not in new:
            print("== %s: only in %s" % (fig, "new" if fig in new else "old"))
            continue
        lines, regressed = diff_figure(old[fig], new[fig],
                                       args.threshold, args.show_all)
        total_regressed += regressed
        print("== %s (threshold %.0f%%)" % (fig, args.threshold))
        if lines:
            print("  %-58s %12s %12s %9s" % ("metric", "old", "new", "delta"))
            for line in lines:
                print(line)
        else:
            print("  no metric moved more than %.0f%%" % args.threshold)
    if total_regressed:
        print("bench_diff: %d metric(s) REGRESSED past %.0f%%%s"
              % (total_regressed, args.threshold,
                 "" if args.strict else " (warn-only; use --strict to gate)"))
    return 1 if (args.strict and total_regressed) else 0


if __name__ == "__main__":
    sys.exit(main())
