// adtc — the "custom protobuf plugin" of the paper (§V.B, §V.D) as a
// standalone protoc-like compiler.
//
//   adtc --out <dir> --base <name> file1.proto [file2.proto ...]
//
// Parses the proto3 sources into one descriptor pool and emits
// <name>.pb.{h,cc} (message classes) and <name>.adt.pb.{h,cc}
// (Accelerator Description Table registration + service introspection).
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "proto/codegen.hpp"
#include "proto/schema_parser.hpp"

namespace {

int usage() {
  std::cerr << "usage: adtc --out <dir> --base <name> <file.proto>...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = ".";
  std::string base;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--base" && i + 1 < argc) {
      base = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "adtc: unknown flag " << arg << "\n";
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage();
  if (base.empty()) {
    base = std::filesystem::path(inputs.front()).stem().string();
  }

  dpurpc::proto::DescriptorPool pool;
  dpurpc::proto::SchemaParser parser(pool);
  for (const auto& path : inputs) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "adtc: cannot open " << path << "\n";
      return 1;
    }
    std::ostringstream src;
    src << in.rdbuf();
    auto st = parser.parse_file(src.str(), path);
    if (!st.is_ok()) {
      std::cerr << "adtc: " << st.to_string() << "\n";
      return 1;
    }
  }
  {
    auto st = pool.link();
    if (!st.is_ok()) {
      std::cerr << "adtc: " << st.to_string() << "\n";
      return 1;
    }
  }

  auto files = dpurpc::proto::CodeGenerator::generate(pool, base);
  if (!files.is_ok()) {
    std::cerr << "adtc: " << files.status().to_string() << "\n";
    return 1;
  }
  std::filesystem::create_directories(out_dir);
  for (const auto& f : *files) {
    auto path = std::filesystem::path(out_dir) / f.name;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "adtc: cannot write " << path << "\n";
      return 1;
    }
    out << f.content;
  }
  std::cout << "adtc: generated " << files->size() << " files in " << out_dir << "\n";
  return 0;
}
