#!/usr/bin/env bash
# Static lint wall, two layers:
#
#   1. dpulint (tools/dpulint) — the project-specific checker that proves
#      the datapath invariants: hot-path allocation/lock freedom,
#      DESIGN.md lock-order sync, the relaxed-atomics whitelist, and
#      trace-stage exhaustiveness (DESIGN.md §3.17). Built from this tree,
#      so it always runs — no external toolchain required — and any
#      finding is a hard failure everywhere.
#   2. clang-tidy with the checks in .clang-tidy (bugprone-*,
#      concurrency-*, performance-*) over first-party sources, driven by
#      the compile_commands.json the CMake configure always exports.
#      bench/ and tests/ get a second, relaxed pass (concurrency and
#      lifetime checks only — harness and fixture code is allowed its
#      repetition and magic numbers, not its races). When clang-tidy is
#      not installed (the default container ships GCC only), the layer is
#      skipped with a printed warning — except under CI=true, where a
#      missing tool is a hard failure: the hosted lanes pin clang-tidy,
#      so absence there means the lint wall silently lost a layer.
#
# Exit status is the contract: any finding is a non-zero exit, so CI
# treats lint findings exactly like test failures.
#
# Usage: tools/lint.sh [build-dir]   (default: build)
set -uo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "lint: $build_dir/compile_commands.json missing — configure first:" >&2
  echo "  cmake -B $build_dir -S .   (CMAKE_EXPORT_COMPILE_COMMANDS is on by default)" >&2
  exit 2
fi

jobs="$(nproc 2>/dev/null || echo 4)"

# ----------------------------------------------------------- 1. dpulint

dpulint_bin="$build_dir/tools/dpulint/dpulint"
if [ ! -x "$dpulint_bin" ]; then
  echo "lint: building dpulint" >&2
  if ! cmake --build "$build_dir" --target dpulint -j "$jobs" >/dev/null; then
    echo "lint: failed to build dpulint" >&2
    exit 2
  fi
fi

# Checker self-test: a deliberate-violation fixture must fail (exit 1).
# A checker that passes everything is worse than no checker — this
# catches a dpulint build whose rules have gone inert.
"$dpulint_bin" --root tools/dpulint/testdata \
    --sources violations/hot_alloc --design none --quiet >/dev/null 2>&1
selftest=$?
if [ "$selftest" -ne 1 ]; then
  echo "lint: dpulint self-test failed — violation fixture exited $selftest, expected 1" >&2
  exit 1
fi

echo "lint: dpulint over src/ (design sync: DESIGN.md)" >&2
if ! "$dpulint_bin" --root . --compile-commands "$build_dir/compile_commands.json"; then
  echo "lint: dpulint reported findings (treat as build failure)" >&2
  exit 1
fi

# -------------------------------------------------------- 2. clang-tidy

if ! command -v clang-tidy >/dev/null 2>&1; then
  if [ "${CI:-}" = "true" ]; then
    echo "lint: clang-tidy not found in PATH and CI=true — the hosted lanes" >&2
    echo "lint: pin clang-tidy (see .github/workflows/ci.yml); a missing tool" >&2
    echo "lint: there means the wall silently lost a layer. Failing." >&2
    exit 1
  fi
  echo "lint: clang-tidy not found in PATH; skipping (install clang-tidy to enforce)" >&2
  exit 0
fi

# Lint first-party sources: src/ and tools/adtc (tools/dpulint lints
# itself through the same wall). Generated .pb.cc files are
# machine-written and excluded explicitly — the '*.cc' glob would pull
# them in otherwise.
mapfile -t files < <(find src tools/adtc tools/dpulint \
    \( -name '*.cpp' -o -name '*.cc' \) ! -name '*.pb.cc' \
    ! -path '*/testdata/*' | sort)

run_tidy() {  # run_tidy <label> <extra-args...> -- <files...>
  local label="$1"; shift
  local extra=()
  while [ "$1" != "--" ]; do extra+=("$1"); shift; done
  shift
  echo "lint: clang-tidy ($label) over $# files ($build_dir)" >&2
  local status=0
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p "$build_dir" -j "$jobs" "${extra[@]}" "$@" || status=$?
  else
    local f
    for f in "$@"; do
      clang-tidy -quiet -p "$build_dir" "${extra[@]}" "$f" || status=$?
    done
  fi
  return "$status"
}

status=0
run_tidy strict -- "${files[@]}" || status=$?

# bench/ and tests/ ride along under a relaxed profile: the checks that
# matter for harness code are the concurrency and lifetime ones; the
# style/performance fleet drowns fixture code in noise.
mapfile -t harness < <(find bench tests \
    \( -name '*.cpp' -o -name '*.cc' \) ! -name '*.pb.cc' | sort)
if [ "${#harness[@]}" -gt 0 ]; then
  run_tidy relaxed \
      -checks='-*,concurrency-*,bugprone-use-after-move,bugprone-dangling-handle,bugprone-infinite-loop' \
      -- "${harness[@]}" || status=$?
fi

if [ "$status" -ne 0 ]; then
  echo "lint: clang-tidy reported findings (treat as build failure)" >&2
  exit 1
fi
echo "lint: clean" >&2
