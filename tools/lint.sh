#!/usr/bin/env bash
# Static lint wall: clang-tidy over src/ with the checks in .clang-tidy
# (bugprone-*, concurrency-*, performance-*), driven by the
# compile_commands.json the CMake configure always exports.
#
# Exit status is the contract: any finding is a non-zero exit, so CI
# treats lint findings exactly like test failures. When clang-tidy is not
# installed (the default container ships GCC only), the script warns and
# exits 0 — the wall is enforced wherever the tool exists, and never
# silently: the skip is printed.
#
# Usage: tools/lint.sh [build-dir]   (default: build)
set -uo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint: clang-tidy not found in PATH; skipping (install clang-tidy to enforce)" >&2
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "lint: $build_dir/compile_commands.json missing — configure first:" >&2
  echo "  cmake -B $build_dir -S .   (CMAKE_EXPORT_COMPILE_COMMANDS is on by default)" >&2
  exit 2
fi

jobs="$(nproc 2>/dev/null || echo 4)"

# Lint only first-party sources: src/ and tools/adtc. Tests and benches
# are exercised by the three ci.sh passes; generated .pb.cc files are
# machine-written and out of scope.
mapfile -t files < <(find src tools/adtc -name '*.cpp' | sort)

echo "lint: clang-tidy over ${#files[@]} files ($build_dir)" >&2

status=0
# run-clang-tidy parallelizes when available; otherwise loop.
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -quiet -p "$build_dir" -j "$jobs" "${files[@]}" || status=$?
else
  for f in "${files[@]}"; do
    clang-tidy -quiet -p "$build_dir" "$f" || status=$?
  done
fi

if [ "$status" -ne 0 ]; then
  echo "lint: clang-tidy reported findings (treat as build failure)" >&2
  exit 1
fi
echo "lint: clean" >&2
