// Tokenizer for dpulint: C++-shaped, comment- and preprocessor-stripping,
// waiver-collecting. See dpulint.hpp for the big picture.
#include "dpulint.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

namespace dpulint {

namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Parse a `dpulint: allow(rule[,rule]): reason` body out of a comment.
/// Returns true when the comment is a dpulint directive at all (so the
/// caller records it, well-formed or not).
bool parse_waiver(const std::string& comment, int line, Waiver* out) {
  size_t at = comment.find("dpulint:");
  if (at == std::string::npos) return false;
  out->comment_line = line;
  out->malformed = true;  // until proven otherwise
  size_t p = at + 8;
  while (p < comment.size() && std::isspace(static_cast<unsigned char>(comment[p]))) ++p;
  if (comment.compare(p, 5, "allow") != 0) return true;
  p += 5;
  while (p < comment.size() && std::isspace(static_cast<unsigned char>(comment[p]))) ++p;
  if (p >= comment.size() || comment[p] != '(') return true;
  size_t close = comment.find(')', ++p);
  if (close == std::string::npos) return true;
  std::string rules = comment.substr(p, close - p);
  std::istringstream rs(rules);
  std::string rule;
  while (std::getline(rs, rule, ',')) {
    size_t a = rule.find_first_not_of(" \t");
    size_t b = rule.find_last_not_of(" \t");
    if (a == std::string::npos) continue;
    out->rules.push_back(rule.substr(a, b - a + 1));
  }
  if (out->rules.empty()) return true;
  // Reason: everything after the ')' minus leading separators (':', '-',
  // em-dash, spaces). Must be non-empty — an unexplained waiver is noise
  // the next reader cannot audit.
  size_t r = close + 1;
  while (r < comment.size() &&
         (std::isspace(static_cast<unsigned char>(comment[r])) || comment[r] == ':' ||
          comment[r] == '-' ||
          (static_cast<unsigned char>(comment[r]) >= 0x80))) {
    ++r;  // the >=0x80 arm eats em-dash bytes
  }
  std::string reason = comment.substr(r);
  while (!reason.empty() && std::isspace(static_cast<unsigned char>(reason.back()))) {
    reason.pop_back();
  }
  if (reason.empty()) return true;
  out->reason = reason;
  out->malformed = false;
  return true;
}

}  // namespace

bool SourceFile::line_waived(int line, const std::string& rule) const {
  auto it = waivers_by_line.find(line);
  if (it == waivers_by_line.end()) return false;
  for (const Waiver* w : it->second) {
    if (w->malformed) continue;
    for (const auto& r : w->rules) {
      if (r == rule || r == "all") return true;
    }
  }
  return false;
}

SourceFile lex_file(const std::string& path, const std::string& text) {
  SourceFile f;
  f.path = path;
  size_t i = 0;
  const size_t n = text.size();
  int line = 1;
  // Lines that held a token before a given column — used to decide whether
  // a waiver comment is trailing (covers its own line) or standalone
  // (covers the next code line).
  std::set<int> token_lines;

  auto advance_line = [&](char c) {
    if (c == '\n') ++line;
  };

  while (i < n) {
    char c = text[i];
    if (c == '\n') { ++line; ++i; continue; }
    if (std::isspace(static_cast<unsigned char>(c))) { ++i; continue; }

    // Preprocessor line (with backslash continuations). Only when '#'
    // begins the logical line content.
    if (c == '#') {
      size_t ls = text.rfind('\n', i == 0 ? 0 : i - 1);
      size_t first = (ls == std::string::npos) ? 0 : ls + 1;
      bool only_ws = true;
      for (size_t k = first; k < i; ++k) {
        if (!std::isspace(static_cast<unsigned char>(text[k]))) { only_ws = false; break; }
      }
      if (only_ws) {
        while (i < n) {
          if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
            i += 2; ++line; continue;
          }
          if (text[i] == '\n') break;
          ++i;
        }
        continue;
      }
    }

    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      size_t start = i;
      while (i < n && text[i] != '\n') ++i;
      std::string body = text.substr(start, i - start);
      Waiver w;
      if (parse_waiver(body, line, &w)) {
        w.effective_line = token_lines.count(line) ? line : -1;  // -1: next code line
        f.waivers.push_back(w);
      }
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      size_t start = i;
      int start_line = line;
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        advance_line(text[i]);
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      std::string body = text.substr(start, i - start);
      Waiver w;
      if (parse_waiver(body, start_line, &w)) {
        w.effective_line = token_lines.count(start_line) ? start_line : -1;
        f.waivers.push_back(w);
      }
      continue;
    }

    // Raw string literal.
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      size_t d0 = i + 2;
      size_t dp = text.find('(', d0);
      if (dp != std::string::npos) {
        std::string delim = ")";
        delim.append(text, d0, dp - d0);
        delim += '"';
        size_t endp = text.find(delim, dp + 1);
        size_t stop = (endp == std::string::npos) ? n : endp + delim.size();
        for (size_t k = i; k < stop; ++k) advance_line(text[k]);
        f.toks.push_back({Token::Kind::kString, "<raw>", line});
        token_lines.insert(line);
        i = stop;
        continue;
      }
    }
    // String literal (payload kept: lock-class names live in these).
    if (c == '"') {
      size_t start = ++i;
      std::string val;
      while (i < n && text[i] != '"') {
        if (text[i] == '\\' && i + 1 < n) { val += text[i]; val += text[i + 1]; i += 2; continue; }
        advance_line(text[i]);
        val += text[i++];
      }
      if (i < n) ++i;
      f.toks.push_back({Token::Kind::kString, val, line});
      token_lines.insert(line);
      (void)start;
      continue;
    }
    // Char literal (but not a digit separator 1'000).
    if (c == '\'' &&
        !(i > 0 && std::isdigit(static_cast<unsigned char>(text[i - 1])))) {
      ++i;
      while (i < n && text[i] != '\'') {
        if (text[i] == '\\' && i + 1 < n) { i += 2; continue; }
        advance_line(text[i]);
        ++i;
      }
      if (i < n) ++i;
      f.toks.push_back({Token::Kind::kCharLit, "", line});
      token_lines.insert(line);
      continue;
    }

    if (ident_start(c)) {
      size_t start = i;
      while (i < n && ident_char(text[i])) ++i;
      f.toks.push_back({Token::Kind::kIdent, text.substr(start, i - start), line});
      token_lines.insert(line);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && (ident_char(text[i]) || text[i] == '.' ||
                       (text[i] == '\'' && i + 1 < n && ident_char(text[i + 1])) ||
                       ((text[i] == '+' || text[i] == '-') && i > start &&
                        (text[i - 1] == 'e' || text[i - 1] == 'E' ||
                         text[i - 1] == 'p' || text[i - 1] == 'P')))) {
        ++i;
      }
      f.toks.push_back({Token::Kind::kNumber, text.substr(start, i - start), line});
      token_lines.insert(line);
      continue;
    }
    // Multi-char punctuation we care about: '::' and '->' (kept whole so
    // qualifier walking is trivial); everything else single char.
    if (c == ':' && i + 1 < n && text[i + 1] == ':') {
      f.toks.push_back({Token::Kind::kPunct, "::", line});
      token_lines.insert(line);
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && text[i + 1] == '>') {
      f.toks.push_back({Token::Kind::kPunct, "->", line});
      token_lines.insert(line);
      i += 2;
      continue;
    }
    f.toks.push_back({Token::Kind::kPunct, std::string(1, c), line});
    token_lines.insert(line);
    ++i;
  }

  // Resolve standalone waivers to the next code line.
  for (auto& w : f.waivers) {
    if (w.effective_line == -1) {
      int next = 0;
      for (const auto& t : f.toks) {
        if (t.line > w.comment_line) { next = t.line; break; }
      }
      w.effective_line = next == 0 ? w.comment_line : next;
    }
  }
  for (const auto& w : f.waivers) {
    f.waivers_by_line[w.effective_line].push_back(&w);
  }
  return f;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace dpulint
