// The four dpulint rules (plus waiver hygiene), run against the Model.
// See dpulint.hpp for what each rule means and why it exists.
#include "dpulint.hpp"

#include <algorithm>
#include <cctype>
#include <deque>

namespace dpulint {

namespace {

bool suffix_match(const std::string& path, const std::string& suffix) {
  if (path.size() < suffix.size()) return false;
  if (path.compare(path.size() - suffix.size(), suffix.size(), suffix) != 0)
    return false;
  // Boundary: exact match or preceded by a path separator.
  return path.size() == suffix.size() ||
         path[path.size() - suffix.size() - 1] == '/';
}

bool in_suffix_list(const std::string& path,
                    const std::vector<std::string>& suffixes) {
  for (const auto& s : suffixes) {
    if (suffix_match(path, s)) return true;
  }
  return false;
}

void add(std::vector<Finding>* out, const std::string& file, int line,
         const char* rule, std::string message) {
  out->push_back({file, line, rule, std::move(message)});
}

// ------------------------------------------------------------- hot-path

/// Category of a forbidden identifier, or nullptr if benign.
const char* forbidden_category(const Policy& p, const std::string& name) {
  if (p.forbidden_alloc.count(name)) return "allocation";
  if (p.forbidden_lock.count(name)) return "lock acquisition";
  if (p.forbidden_wait.count(name)) return "blocking wait";
  return nullptr;
}

/// Resolve a call site to first-party definitions. Unknowns resolve to
/// nothing (they are externals; the name scan already vetted the name).
std::vector<size_t> resolve_call(const Model& m, const Policy& p,
                                 const FuncDef& caller, const CallSite& cs) {
  auto it = m.by_base.find(cs.name);
  if (it == m.by_base.end()) return {};
  const bool common = p.common_names.count(cs.name) > 0;
  std::vector<size_t> out;
  for (size_t idx : it->second) {
    const FuncDef& cand = m.funcs[idx];
    if (&cand == &caller) continue;
    if (common && cand.file_index != caller.file_index) continue;
    if (!cs.qual.empty()) {
      const std::string want = cs.qual + "::" + cs.name;
      if (cand.qual_name != want) {
        if (cand.qual_name.size() <= want.size() + 2) continue;
        size_t off = cand.qual_name.size() - want.size();
        if (cand.qual_name.compare(off, want.size(), want) != 0) continue;
        if (cand.qual_name.compare(off - 2, 2, "::") != 0) continue;
      }
    }
    out.push_back(idx);
  }
  return out;
}

void check_hot_paths(const Model& m, const Policy& p,
                     std::vector<Finding>* out) {
  for (size_t root = 0; root < m.funcs.size(); ++root) {
    if (!m.funcs[root].hot) continue;
    const std::string& root_name = m.funcs[root].qual_name;

    // BFS over first-party callees; chain is for the message only.
    std::set<size_t> visited;
    std::deque<std::pair<size_t, std::string>> queue;
    queue.emplace_back(root, m.funcs[root].base_name);
    visited.insert(root);

    while (!queue.empty()) {
      auto [fi, chain] = queue.front();
      queue.pop_front();
      const FuncDef& fn = m.funcs[fi];
      const SourceFile& file = m.files[fn.file_index];
      const auto& toks = file.toks;

      // 1) Forbidden-name scan over the whole body: catches both calls
      //    (cv.wait(..)) and declarations (lockdep::ScopedLock lk(mu)).
      for (size_t i = fn.body_begin; i < fn.body_end; ++i) {
        const Token& t = toks[i];
        if (t.kind != Token::Kind::kIdent) continue;
        if (file.line_waived(t.line, "hot-path")) continue;
        if (t.text == "new") {
          // `new (buf) T` placement form is allocation-free; `operator new`
          // mentions are declarations, not allocations.
          bool placement = i + 1 < fn.body_end &&
                           toks[i + 1].kind == Token::Kind::kPunct &&
                           toks[i + 1].text == "(";
          bool op_decl = i > fn.body_begin &&
                         toks[i - 1].kind == Token::Kind::kIdent &&
                         toks[i - 1].text == "operator";
          if (!placement && !op_decl) {
            add(out, file.path, t.line, "hot-path",
                "hot function '" + root_name +
                    "' reaches `new` (allocation) via " + chain);
          }
          continue;
        }
        const char* cat = forbidden_category(p, t.text);
        if (cat == nullptr) continue;
        // Only call-shaped (`x(`), template-decl (`x<`) or decl-shaped
        // (`Mutex m`) uses count — a field named `lock` read as `s.lock;`
        // is not an acquisition.
        if (i + 1 >= fn.body_end) continue;
        const Token& nx = toks[i + 1];
        bool armed = (nx.kind == Token::Kind::kPunct &&
                      (nx.text == "(" || nx.text == "<")) ||
                     nx.kind == Token::Kind::kIdent;
        if (!armed) continue;
        add(out, file.path, t.line, "hot-path",
            "hot function '" + root_name + "' reaches '" + t.text + "' (" +
                cat + ") via " + chain);
      }

      // 2) Descend into resolvable first-party callees. A waiver on the
      //    call line prunes the descent: the spill is documented there.
      for (const CallSite& cs : fn.calls) {
        if (file.line_waived(cs.line, "hot-path")) continue;
        for (size_t callee : resolve_call(m, p, fn, cs)) {
          if (visited.insert(callee).second) {
            queue.emplace_back(callee,
                               chain + " -> " + m.funcs[callee].base_name);
          }
        }
      }
    }
  }
}

// ------------------------------------------------------------ lock-order

struct DocOrder {
  std::set<std::string> classes;
  std::map<std::string, int> line_of;
  bool found_block = false;
  int block_line = 0;
};

int line_of_offset(const std::string& text, size_t off) {
  return 1 + static_cast<int>(std::count(text.begin(), text.begin() + off, '\n'));
}

/// Parse the fenced ```lock-order block out of DESIGN.md. Any
/// whitespace/arrow-separated token containing a '.' is a lock class name;
/// '#' starts a comment.
DocOrder parse_doc_order(const std::string& text) {
  DocOrder d;
  size_t fence = text.find("```lock-order");
  if (fence == std::string::npos) return d;
  d.found_block = true;
  d.block_line = line_of_offset(text, fence);
  size_t body = text.find('\n', fence);
  if (body == std::string::npos) return d;
  ++body;
  size_t close = text.find("```", body);
  if (close == std::string::npos) close = text.size();
  size_t i = body;
  while (i < close) {
    size_t eol = text.find('\n', i);
    if (eol == std::string::npos || eol > close) eol = close;
    std::string line = text.substr(i, eol - i);
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    size_t k = 0;
    while (k < line.size()) {
      while (k < line.size() &&
             !(std::isalnum(static_cast<unsigned char>(line[k])) ||
               line[k] == '_')) {
        ++k;
      }
      size_t start = k;
      while (k < line.size() &&
             (std::isalnum(static_cast<unsigned char>(line[k])) ||
              line[k] == '_' || line[k] == '.')) {
        ++k;
      }
      if (k > start) {
        std::string tokn = line.substr(start, k - start);
        if (tokn.find('.') != std::string::npos) {
          d.classes.insert(tokn);
          d.line_of.emplace(tokn, line_of_offset(text, i));
        }
      }
    }
    i = eol + 1;
  }
  return d;
}

void check_lock_order(const Model& m, const Policy& p,
                      std::vector<Finding>* out) {
  if (!p.check_lock_order || p.design_text.empty()) return;
  DocOrder doc = parse_doc_order(p.design_text);
  if (!doc.found_block) {
    add(out, p.design_path, 1, "lock-order",
        "no fenced ```lock-order block found — the documented order in "
        "§3.12 must be machine-parseable so it cannot drift");
    return;
  }
  std::set<std::string> code;
  for (const MutexReg& reg : m.mutexes) {
    code.insert(reg.lock_class);
    if (doc.classes.count(reg.lock_class)) continue;
    const SourceFile& f = m.files[reg.file_index];
    if (f.line_waived(reg.line, "lock-order")) continue;
    add(out, f.path, reg.line, "lock-order",
        "lock class '" + reg.lock_class + "' is registered in code but "
        "missing from " + p.design_path + "'s ```lock-order block (§3.12)");
  }
  for (const auto& cls : doc.classes) {
    if (code.count(cls)) continue;
    add(out, p.design_path, doc.line_of[cls], "lock-order",
        "lock class '" + cls + "' is documented in the ```lock-order block "
        "but no lockdep::Mutex in code registers it");
  }
}

// -------------------------------------------------------- relaxed-atomic

void check_relaxed(const Model& m, const Policy& p,
                   std::vector<Finding>* out) {
  for (const SourceFile& f : m.files) {
    if (in_suffix_list(f.path, p.relaxed_whitelist)) continue;
    const auto& toks = f.toks;
    for (size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Token::Kind::kIdent) continue;
      bool hit = t.text == "memory_order_relaxed";
      if (!hit && t.text == "relaxed" && i >= 2 &&
          toks[i - 1].kind == Token::Kind::kPunct && toks[i - 1].text == "::" &&
          toks[i - 2].kind == Token::Kind::kIdent &&
          toks[i - 2].text == "memory_order") {
        hit = true;  // std::memory_order::relaxed spelling
      }
      if (!hit) continue;
      if (f.line_waived(t.line, "relaxed-atomic")) continue;
      add(out, f.path, t.line, "relaxed-atomic",
          "raw memory_order_relaxed outside the approved monitor/stats "
          "wrappers — use dpurpc::relaxed::{load,store,add,sub} "
          "(common/relaxed.hpp) or waive with the ordering protocol it "
          "belongs to");
    }
  }
}

// ----------------------------------------------- trace-stage / pairing

void check_trace_stages(const Model& m, const Policy& p,
                        std::vector<Finding>* out) {
  if (!p.check_trace) return;
  const EnumDef* stage = nullptr;
  for (const EnumDef& e : m.enums) {
    if (e.name == p.stage_enum &&
        suffix_match(m.files[e.file_index].path, p.stage_enum_file_suffix)) {
      stage = &e;
      break;
    }
  }
  if (stage == nullptr) return;  // no trace library in this tree

  // Collect recorded enumerators: Stage::kX mentioned inside the argument
  // list of a record()/record_global() call, outside the trace library.
  std::set<std::string> recorded;
  for (const SourceFile& f : m.files) {
    if (in_suffix_list(f.path, p.stage_site_exclude)) continue;
    const auto& toks = f.toks;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Token::Kind::kIdent) continue;
      if (toks[i + 1].kind != Token::Kind::kPunct || toks[i + 1].text != "(")
        continue;
      if (toks[i].text == p.record_root_call) {
        recorded.insert(p.root_stage);
        continue;
      }
      if (!p.record_calls.count(toks[i].text)) continue;
      int depth = 0;
      for (size_t k = i + 1; k < toks.size(); ++k) {
        if (toks[k].kind == Token::Kind::kPunct) {
          if (toks[k].text == "(") ++depth;
          else if (toks[k].text == ")" && --depth == 0) break;
        }
        if (toks[k].kind == Token::Kind::kIdent && toks[k].text == p.stage_enum &&
            k + 2 < toks.size() && toks[k + 1].kind == Token::Kind::kPunct &&
            toks[k + 1].text == "::" &&
            toks[k + 2].kind == Token::Kind::kIdent) {
          recorded.insert(toks[k + 2].text);
        }
      }
    }
  }

  const SourceFile& ef = m.files[stage->file_index];
  for (const auto& [name, line] : stage->enumerators) {
    if (p.stage_exempt.count(name)) continue;
    if (recorded.count(name)) continue;
    if (ef.line_waived(line, "trace-stage")) continue;
    add(out, ef.path, line, "trace-stage",
        "trace stage '" + name + "' has no record() site outside the trace "
        "library — a stage nothing records is a hole in every timeline");
  }
}

void check_trace_pairing(const Model& m, const Policy& p,
                         std::vector<Finding>* out) {
  if (!p.check_trace) return;
  for (const FuncDef& fn : m.funcs) {
    const SourceFile& f = m.files[fn.file_index];
    if (!in_suffix_list(f.path, p.responder_files)) continue;
    const auto& toks = f.toks;
    // First responder invocation in the body: `respond(` or `(*respond)(`.
    size_t invoke = 0;
    for (size_t i = fn.body_begin; i + 1 < fn.body_end; ++i) {
      if (toks[i].kind != Token::Kind::kIdent ||
          toks[i].text != p.respond_name) {
        continue;
      }
      bool direct = toks[i + 1].kind == Token::Kind::kPunct &&
                    toks[i + 1].text == "(";
      bool deref = toks[i + 1].kind == Token::Kind::kPunct &&
                   toks[i + 1].text == ")" && i + 2 < fn.body_end &&
                   toks[i + 2].kind == Token::Kind::kPunct &&
                   toks[i + 2].text == "(";
      if (direct || deref) {
        invoke = i;
        break;
      }
    }
    if (invoke == 0) continue;
    bool complete_first = false;
    for (size_t i = fn.body_begin; i < invoke; ++i) {
      if (toks[i].kind == Token::Kind::kIdent &&
          toks[i].text == p.complete_stage) {
        complete_first = true;
        break;
      }
    }
    if (complete_first) continue;
    if (f.line_waived(toks[invoke].line, "trace-pairing")) continue;
    add(out, f.path, toks[invoke].line, "trace-pairing",
        "'" + fn.qual_name + "' invokes the responder without recording " +
            p.complete_stage + " first (record-before-respond, §3.15)");
  }
}

// --------------------------------------------------------- waiver syntax

void check_waivers(const Model& m, std::vector<Finding>* out) {
  for (const SourceFile& f : m.files) {
    for (const Waiver& w : f.waivers) {
      if (!w.malformed) continue;
      add(out, f.path, w.comment_line, "waiver-syntax",
          "malformed dpulint waiver — expected "
          "'dpulint: allow(rule[,rule]): reason' with a non-empty reason");
    }
  }
}

}  // namespace

std::vector<Finding> run_checks(const Model& model, const Policy& policy) {
  std::vector<Finding> out;
  check_waivers(model, &out);
  check_hot_paths(model, policy, &out);
  check_lock_order(model, policy, &out);
  check_relaxed(model, policy, &out);
  check_trace_stages(model, policy, &out);
  check_trace_pairing(model, policy, &out);
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.rule == b.rule && a.message == b.message;
                        }),
            out.end());
  return out;
}

std::vector<std::string> hot_functions(const Model& model) {
  std::vector<std::string> out;
  for (const FuncDef& fn : model.funcs) {
    if (fn.hot) out.push_back(fn.qual_name);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace dpulint
