// Heuristic C++ structure model for dpulint: function definitions (with
// their DPURPC_HOT_PATH markers), call sites inside bodies, enums, and
// lockdep::Mutex lock-class registrations. A scanner, not a compiler —
// see dpulint.hpp for the conservatism rules that make that acceptable.
#include "dpulint.hpp"

#include <algorithm>
#include <filesystem>

namespace dpulint {

namespace {

const std::set<std::string>& keywords() {
  static const std::set<std::string> kw = {
      "if",       "for",        "while",    "switch",   "catch",
      "return",   "sizeof",     "alignof",  "alignas",  "decltype",
      "offsetof", "static_assert", "static_cast", "const_cast",
      "dynamic_cast", "reinterpret_cast", "throw", "noexcept",
      "new",      "delete",     "co_await", "co_return", "co_yield",
      "typeid",   "defined",    "assert",
  };
  return kw;
}

bool is(const Token& t, const char* s) {
  return t.kind == Token::Kind::kPunct && t.text == s;
}
bool ident(const Token& t) { return t.kind == Token::Kind::kIdent; }

class Parser {
 public:
  Parser(const SourceFile& f, int file_index, Model* model,
         const std::string& hot_marker)
      : f_(f), toks_(f.toks), fi_(file_index), model_(model),
        hot_marker_(hot_marker) {}

  void run() { parse_region(0, toks_.size(), ""); extract_mutexes(); }

 private:
  const SourceFile& f_;
  const std::vector<Token>& toks_;
  int fi_;
  Model* model_;
  std::string hot_marker_;

  /// Index one past the matching closer for the opener at `i`.
  size_t skip_balanced(size_t i, const char* open, const char* close,
                       size_t end) const {
    int depth = 0;
    for (; i < end; ++i) {
      if (is(toks_[i], open)) ++depth;
      else if (is(toks_[i], close) && --depth == 0) return i + 1;
    }
    return end;
  }

  /// Skip a template argument list starting at '<'. Heuristic: balanced
  /// '<'/'>', bailing at ';' or '{' (comparison operators never span
  /// those in the positions we call this from).
  size_t skip_angles(size_t i, size_t end) const {
    int depth = 0;
    for (; i < end; ++i) {
      if (is(toks_[i], "<")) ++depth;
      else if (is(toks_[i], ">") && --depth == 0) return i + 1;
      else if (is(toks_[i], ";") || is(toks_[i], "{")) return i;
    }
    return end;
  }

  bool hot_marked(size_t decl_start, size_t name_tok) const {
    for (size_t k = decl_start; k < name_tok && k < toks_.size(); ++k) {
      if (ident(toks_[k]) && toks_[k].text == hot_marker_) return true;
    }
    return false;
  }

  /// Parse one namespace/class/global-level region [begin, end).
  void parse_region(size_t begin, size_t end, const std::string& scope) {
    size_t i = begin;
    size_t decl_start = begin;
    while (i < end) {
      const Token& t = toks_[i];

      if (ident(t) && t.text == "namespace") {
        size_t j = i + 1;
        std::string name;
        while (j < end && (ident(toks_[j]) || is(toks_[j], "::"))) {
          if (ident(toks_[j])) name += (name.empty() ? "" : "::") + toks_[j].text;
          ++j;
        }
        if (j < end && is(toks_[j], "{")) {
          size_t close = skip_balanced(j, "{", "}", end);
          std::string inner = scope;
          if (!name.empty()) inner += (inner.empty() ? "" : "::") + name;
          parse_region(j + 1, close - 1, inner);
          i = close;
        } else {
          while (j < end && !is(toks_[j], ";")) ++j;
          i = j + 1;
        }
        decl_start = i;
        continue;
      }

      if (ident(t) && (t.text == "class" || t.text == "struct" ||
                       t.text == "union")) {
        // Find the tag name (skip attributes / alignas).
        size_t j = i + 1;
        std::string name;
        while (j < end) {
          if (ident(toks_[j]) && toks_[j].text == "alignas") {
            j = skip_balanced(j + 1, "(", ")", end);
            continue;
          }
          if (is(toks_[j], "[")) { j = skip_balanced(j, "[", "]", end); continue; }
          if (ident(toks_[j])) { name = toks_[j].text; ++j; break; }
          break;
        }
        if (j < end && is(toks_[j], "<")) j = skip_angles(j, end);  // specialization
        // Scan to '{' (definition), ';' (declaration) or '=' (alias-ish).
        size_t k = j;
        while (k < end && !is(toks_[k], "{") && !is(toks_[k], ";") &&
               !is(toks_[k], "=") && !is(toks_[k], "(")) {
          if (is(toks_[k], "<")) { k = skip_angles(k, end); continue; }
          ++k;
        }
        if (k < end && is(toks_[k], "{")) {
          size_t close = skip_balanced(k, "{", "}", end);
          std::string inner = scope;
          if (!name.empty()) inner += (inner.empty() ? "" : "::") + name;
          parse_region(k + 1, close - 1, inner);
          i = close;
          // Trailing "} name;" instance declarations: skip to ';'.
          while (i < end && !is(toks_[i], ";") && !is(toks_[i], "{")) ++i;
          if (i < end && is(toks_[i], ";")) ++i;
        } else if (k < end && is(toks_[k], "(")) {
          // "struct Foo f(...);" — variable; fall through from '('.
          i = k;
          decl_start = i;
          continue;
        } else {
          i = (k < end) ? k + 1 : end;
        }
        decl_start = i;
        continue;
      }

      if (ident(t) && t.text == "enum") {
        size_t j = i + 1;
        if (j < end && ident(toks_[j]) &&
            (toks_[j].text == "class" || toks_[j].text == "struct")) ++j;
        std::string name;
        if (j < end && ident(toks_[j])) { name = toks_[j].text; ++j; }
        while (j < end && !is(toks_[j], "{") && !is(toks_[j], ";")) ++j;
        if (j < end && is(toks_[j], "{")) {
          EnumDef e;
          e.name = name;
          e.file_index = fi_;
          e.line = t.line;
          size_t close = skip_balanced(j, "{", "}", end);
          // Enumerators: ident at depth 0 right after '{' or ','.
          bool expect = true;
          for (size_t k = j + 1; k + 1 < close; ++k) {
            if (expect && ident(toks_[k])) {
              e.enumerators.push_back({toks_[k].text, toks_[k].line});
              expect = false;
            } else if (is(toks_[k], ",")) {
              expect = true;
            } else if (is(toks_[k], "(")) {
              k = skip_balanced(k, "(", ")", close) - 1;
            } else if (is(toks_[k], "{")) {
              k = skip_balanced(k, "{", "}", close) - 1;
            }
          }
          model_->enums.push_back(std::move(e));
          i = close;
          while (i < end && !is(toks_[i], ";")) ++i;
          if (i < end) ++i;
        } else {
          i = (j < end) ? j + 1 : end;
        }
        decl_start = i;
        continue;
      }

      if (ident(t) && t.text == "template") {
        size_t j = i + 1;
        if (j < end && is(toks_[j], "<")) j = skip_angles(j, end);
        i = j;
        continue;  // decl_start unchanged: template is part of the decl
      }

      if (ident(t) && (t.text == "using" || t.text == "typedef" ||
                       t.text == "friend")) {
        while (i < end && !is(toks_[i], ";")) {
          if (is(toks_[i], "{")) { i = skip_balanced(i, "{", "}", end); continue; }
          ++i;
        }
        if (i < end) ++i;
        decl_start = i;
        continue;
      }

      // extern "C" { ... } — parse inside at the same scope.
      if (ident(t) && t.text == "extern" && i + 1 < end &&
          toks_[i + 1].kind == Token::Kind::kString && i + 2 < end &&
          is(toks_[i + 2], "{")) {
        size_t close = skip_balanced(i + 2, "{", "}", end);
        parse_region(i + 3, close - 1, scope);
        i = close;
        decl_start = i;
        continue;
      }

      // Access labels reset the declaration window.
      if (ident(t) && (t.text == "public" || t.text == "private" ||
                       t.text == "protected") &&
          i + 1 < end && is(toks_[i + 1], ":")) {
        i += 2;
        decl_start = i;
        continue;
      }

      // Candidate function: '(' preceded by an identifier that is not a
      // keyword. Walk back the qualified-name chain, then decide between
      // definition / declaration / variable.
      if (is(t, "(") && i > begin && ident(toks_[i - 1]) &&
          !keywords().count(toks_[i - 1].text)) {
        size_t name_tok = i - 1;
        std::string qual_chain = toks_[name_tok].text;
        size_t back = name_tok;
        while (back >= 2 && is(toks_[back - 1], "::") && ident(toks_[back - 2])) {
          qual_chain = toks_[back - 2].text + "::" + qual_chain;
          back -= 2;
        }
        if (back >= 1 && is(toks_[back - 1], "~")) qual_chain = "~" + qual_chain;

        size_t after_params = skip_balanced(i, "(", ")", end);
        size_t body = find_body(after_params, end);
        if (body != 0) {
          size_t close = skip_balanced(body, "{", "}", end);
          FuncDef fd;
          fd.qual_name = scope.empty() ? qual_chain : scope + "::" + qual_chain;
          fd.base_name = toks_[name_tok].text;
          fd.file_index = fi_;
          fd.line = toks_[name_tok].line;
          fd.body_begin = body;
          fd.body_end = close;
          fd.hot = hot_marked(decl_start, back);
          collect_calls(&fd);
          model_->funcs.push_back(std::move(fd));
          i = close;
          decl_start = i;
          continue;
        }
        // Not a definition: resume after the parameter list.
        i = after_params;
        continue;
      }

      if (is(t, "{")) {  // opaque initializer / unknown construct
        i = skip_balanced(i, "{", "}", end);
        decl_start = i;
        continue;
      }
      if (is(t, ";") || is(t, "}")) {
        ++i;
        decl_start = i;
        continue;
      }
      ++i;
    }
  }

  /// After a parameter list: find the body '{' of a function definition,
  /// or return 0 if this is a declaration/variable/etc. Handles const,
  /// noexcept(...), trailing return types, = default/delete, ctor-init
  /// lists (including brace initializers), and function-try blocks.
  size_t find_body(size_t i, size_t end) const {
    bool in_init_list = false;
    const Token* prev = nullptr;
    while (i < end) {
      const Token& t = toks_[i];
      if (is(t, ";")) return 0;
      if (is(t, "=")) return 0;  // = default / = delete / = 0 / variable init
      if (is(t, "(")) { prev = &toks_[i]; i = skip_balanced(i, "(", ")", end); prev = &toks_[i - 1]; continue; }
      if (is(t, "<")) { i = skip_angles(i, end); prev = (i > 0) ? &toks_[i - 1] : nullptr; continue; }
      if (is(t, ":") ) { in_init_list = true; prev = &t; ++i; continue; }
      if (is(t, "{")) {
        if (in_init_list && prev != nullptr && ident(*prev)) {
          // brace initializer "member{...}" inside the init list
          i = skip_balanced(i, "{", "}", end);
          prev = &toks_[i - 1];
          continue;
        }
        return i;
      }
      prev = &t;
      ++i;
    }
    return 0;
  }

  void collect_calls(FuncDef* fd) const {
    for (size_t i = fd->body_begin; i < fd->body_end; ++i) {
      const Token& t = toks_[i];
      if (!ident(t)) continue;
      if (i + 1 >= fd->body_end || !is(toks_[i + 1], "(")) continue;
      if (keywords().count(t.text)) continue;
      CallSite cs;
      cs.name = t.text;
      cs.line = t.line;
      cs.tok = i;
      size_t back = i;
      while (back >= fd->body_begin + 2 && is(toks_[back - 1], "::") &&
             ident(toks_[back - 2])) {
        cs.qual = toks_[back - 2].text + (cs.qual.empty() ? "" : "::" + cs.qual);
        back -= 2;
      }
      if (back > fd->body_begin &&
          (is(toks_[back - 1], ".") || is(toks_[back - 1], "->"))) {
        cs.member = true;
      }
      fd->calls.push_back(std::move(cs));
    }
  }

  /// lockdep::Mutex registrations: the class-name string within the next
  /// few tokens of a `lockdep :: Mutex` sequence.
  void extract_mutexes() {
    for (size_t i = 0; i + 2 < toks_.size(); ++i) {
      if (!(ident(toks_[i]) && toks_[i].text == "lockdep")) continue;
      if (!is(toks_[i + 1], "::")) continue;
      if (!(ident(toks_[i + 2]) && toks_[i + 2].text == "Mutex")) continue;
      for (size_t k = i + 3; k < toks_.size() && k < i + 9; ++k) {
        if (is(toks_[k], ";") || is(toks_[k], ")")) break;
        if (toks_[k].kind == Token::Kind::kString) {
          model_->mutexes.push_back({toks_[k].text, fi_, toks_[k].line});
          break;
        }
      }
    }
  }
};

}  // namespace

Model build_model(std::vector<SourceFile> files) {
  Model m;
  m.files = std::move(files);
  for (size_t fi = 0; fi < m.files.size(); ++fi) {
    Parser p(m.files[fi], static_cast<int>(fi), &m, "DPURPC_HOT_PATH");
    p.run();
  }
  for (size_t i = 0; i < m.funcs.size(); ++i) {
    m.by_base[m.funcs[i].base_name].push_back(i);
  }
  return m;
}

namespace fs = std::filesystem;

std::vector<SourceFile> load_tree(const std::string& base,
                                  const std::vector<std::string>& roots,
                                  std::string* error) {
  std::vector<SourceFile> out;
  std::vector<std::string> paths;
  for (const auto& root : roots) {
    fs::path r = fs::path(base) / root;
    std::error_code ec;
    if (!fs::exists(r, ec)) {
      if (error) *error = "source root not found: " + r.string();
      return out;
    }
    for (fs::recursive_directory_iterator it(r, ec), done; it != done;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file()) continue;
      fs::path p = it->path();
      std::string name = p.filename().string();
      std::string ext = p.extension().string();
      if (ext != ".hpp" && ext != ".cpp" && ext != ".cc" && ext != ".h") continue;
      // Machine-written sources are out of scope (and cannot carry
      // annotations): adtc output and anything under a gen/ directory.
      if (name.size() > 6 && name.compare(name.size() - 6, 6, ".pb.cc") == 0) continue;
      if (name.size() > 5 && name.compare(name.size() - 5, 5, ".pb.h") == 0) continue;
      bool generated = false;
      // Relative to the walk root, so a fixture tree can itself live under
      // a testdata/ directory and still be loadable as a root.
      fs::path rel_to_root = p.lexically_relative(r);
      for (const auto& part : rel_to_root) {
        if (part == "gen" || part == "testdata") { generated = true; break; }
      }
      if (generated) continue;
      paths.push_back(p.string());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& p : paths) {
    std::string text;
    if (!read_file(p, &text)) continue;
    std::string rel = p;
    std::string prefix = (fs::path(base) / "").string();
    if (rel.rfind(prefix, 0) == 0) rel = rel.substr(prefix.size());
    out.push_back(lex_file(rel, text));
  }
  return out;
}

std::vector<std::string> compile_commands_files(const std::string& text) {
  std::vector<std::string> out;
  size_t i = 0;
  const std::string key = "\"file\"";
  while ((i = text.find(key, i)) != std::string::npos) {
    i += key.size();
    while (i < text.size() && (text[i] == ' ' || text[i] == ':')) ++i;
    if (i < text.size() && text[i] == '"') {
      size_t e = text.find('"', i + 1);
      if (e == std::string::npos) break;
      out.push_back(text.substr(i + 1, e - i - 1));
      i = e + 1;
    }
  }
  return out;
}

}  // namespace dpulint
