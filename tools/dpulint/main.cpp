// dpulint CLI. Exit codes: 0 clean, 1 findings, 2 usage/IO error.
//
//   dpulint --root . --design DESIGN.md
//           --compile-commands build/compile_commands.json
//
// The tree walk under --sources discovers headers and sources; when a
// compile_commands.json is given, any first-party TU it lists that the
// walk missed is loaded too, so the checked set can never drift below
// what the build actually compiles.
#include "dpulint.hpp"

#include <cstring>
#include <iostream>

namespace {

void usage(std::ostream& os) {
  os << "usage: dpulint [options]\n"
        "  --root DIR               repo root (default .)\n"
        "  --sources A,B,...        roots to walk, relative to --root "
        "(default src)\n"
        "  --design FILE            DESIGN.md holding the ```lock-order "
        "block\n"
        "                           (default <root>/DESIGN.md; 'none' "
        "disables)\n"
        "  --compile-commands FILE  cross-check TU coverage against the "
        "build\n"
        "  --relaxed-whitelist A,B  override approved relaxed-atomic files\n"
        "  --stage-file SUFFIX      override trace Stage enum location\n"
        "  --responder-file A,B     override record-before-respond files\n"
        "  --no-lock-order          skip the lock-order rule\n"
        "  --no-trace               skip the trace rules\n"
        "  --list-hot               print DPURPC_HOT_PATH functions and "
        "exit\n"
        "  --quiet                  findings only, no summary line\n";
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i <= s.size()) {
    size_t c = s.find(',', i);
    if (c == std::string::npos) c = s.size();
    if (c > i) out.push_back(s.substr(i, c - i));
    i = c + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string design;
  std::string compile_commands;
  std::vector<std::string> sources = {"src"};
  dpulint::Policy policy;
  bool list_hot = false;
  bool quiet = false;

  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "dpulint: " << argv[i] << " needs a value\n";
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--root") == 0) {
      root = need_value(i);
    } else if (std::strcmp(a, "--design") == 0) {
      design = need_value(i);
    } else if (std::strcmp(a, "--sources") == 0) {
      sources = split_commas(need_value(i));
    } else if (std::strcmp(a, "--compile-commands") == 0) {
      compile_commands = need_value(i);
    } else if (std::strcmp(a, "--relaxed-whitelist") == 0) {
      policy.relaxed_whitelist = split_commas(need_value(i));
    } else if (std::strcmp(a, "--stage-file") == 0) {
      policy.stage_enum_file_suffix = need_value(i);
    } else if (std::strcmp(a, "--responder-file") == 0) {
      policy.responder_files = split_commas(need_value(i));
    } else if (std::strcmp(a, "--no-lock-order") == 0) {
      policy.check_lock_order = false;
    } else if (std::strcmp(a, "--no-trace") == 0) {
      policy.check_trace = false;
    } else if (std::strcmp(a, "--list-hot") == 0) {
      list_hot = true;
    } else if (std::strcmp(a, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage(std::cout);
      return 0;
    } else {
      std::cerr << "dpulint: unknown option '" << a << "'\n";
      usage(std::cerr);
      return 2;
    }
  }

  std::string error;
  std::vector<dpulint::SourceFile> files =
      dpulint::load_tree(root, sources, &error);
  if (!error.empty()) {
    std::cerr << "dpulint: " << error << "\n";
    return 2;
  }
  if (files.empty()) {
    std::cerr << "dpulint: no sources found under ";
    for (const auto& s : sources) std::cerr << root << "/" << s << " ";
    std::cerr << "\n";
    return 2;
  }

  // Coverage cross-check: every first-party TU the build compiles must be
  // in the walked set (a TU the walk can't see is a TU the rules can't
  // gate). Generated sources are exempt by the same rule as the walk.
  if (!compile_commands.empty()) {
    std::string cc_text;
    if (!dpulint::read_file(compile_commands, &cc_text)) {
      std::cerr << "dpulint: cannot read " << compile_commands << "\n";
      return 2;
    }
    std::set<std::string> walked;
    for (const auto& f : files) walked.insert(f.path);
    for (const std::string& tu : dpulint::compile_commands_files(cc_text)) {
      if (tu.size() > 6 && tu.compare(tu.size() - 6, 6, ".pb.cc") == 0)
        continue;
      bool under_root = false;
      std::string rel;
      for (const auto& s : sources) {
        size_t at = tu.find("/" + s + "/");
        if (at != std::string::npos) {
          rel = tu.substr(at + 1);
          under_root = true;
          break;
        }
        if (tu.rfind(s + "/", 0) == 0) {
          rel = tu;
          under_root = true;
          break;
        }
      }
      if (!under_root || walked.count(rel)) continue;
      if (rel.find("/gen/") != std::string::npos) continue;
      std::string text;
      if (dpulint::read_file(root + "/" + rel, &text) ||
          dpulint::read_file(tu, &text)) {
        files.push_back(dpulint::lex_file(rel, text));
      } else {
        std::cerr << "dpulint: warning: compiled TU not found on disk: "
                  << tu << "\n";
      }
    }
  }

  dpulint::Model model = dpulint::build_model(std::move(files));

  if (list_hot) {
    for (const auto& name : dpulint::hot_functions(model)) {
      std::cout << name << "\n";
    }
    return 0;
  }

  if (policy.check_lock_order) {
    if (design.empty()) design = root + "/DESIGN.md";
    if (design == "none") {
      policy.check_lock_order = false;
    } else {
      if (!dpulint::read_file(design, &policy.design_text)) {
        std::cerr << "dpulint: cannot read " << design << "\n";
        return 2;
      }
      // Report the doc by its basename-ish relative path in findings.
      policy.design_path =
          design.rfind(root + "/", 0) == 0 ? design.substr(root.size() + 1)
                                           : design;
    }
  }

  std::vector<dpulint::Finding> findings = dpulint::run_checks(model, policy);
  for (const auto& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (!quiet) {
    std::cerr << "dpulint: " << model.files.size() << " files, "
              << model.funcs.size() << " functions, "
              << dpulint::hot_functions(model).size() << " hot, "
              << findings.size() << " finding(s)\n";
  }
  return findings.empty() ? 0 : 1;
}
