// dpulint: the project-specific static checker for the datapath invariants
// the fast path depends on (DESIGN.md §3.17).
//
// The offload wins in this repo exist only while the hot path stays
// allocation-free, lock-free and correctly ordered. lockdep and TSan catch
// the orders and races a test happens to exercise; clang-tidy knows generic
// C++ misuse. Neither knows *our* invariants. dpulint does, and fails CI
// when a future change erodes one:
//
//   [hot-path]        functions marked DPURPC_HOT_PATH (common/hot_path.hpp)
//                     must not transitively reach `new`, malloc-family
//                     calls, allocation-prone container growth, lockdep
//                     mutex acquisition, condvar waits or blocking
//                     syscalls. Documented cold spills are waived per site.
//   [lock-order]      every lockdep::Mutex class name registered in code
//                     must appear in DESIGN.md §3.12's fenced `lock-order`
//                     block, and vice versa — the doc cannot silently drift.
//   [relaxed-atomic]  raw std::memory_order_relaxed is legal only inside
//                     the approved monitor/stats wrappers
//                     (common/relaxed.hpp, src/metrics/) — PR 4's libstdc++
//                     _Sp_atomic incident is exactly this bug class. An
//                     algorithmic use elsewhere needs a per-site waiver
//                     explaining the protocol it belongs to.
//   [trace-stage]     every trace::Stage enumerator has at least one
//                     record() site, and the record-before-respond pairing
//                     (§3.15) is structurally present in the responder.
//
// Waiver syntax (same line, or a full-line comment covering the next line):
//
//   // dpulint: allow(hot-path): one-line reason for the documented spill
//   // dpulint: allow(relaxed-atomic,hot-path): reasons may cover two rules
//
// A waiver without a reason is itself a finding ([waiver-syntax]).
//
// Implementation posture: a tokenizer + a heuristic function/call model,
// NOT a compiler. No clang-dev dependency, so the checker runs in the
// GCC-only container and anywhere else the tree builds. The model is
// deliberately conservative where it matters (unknown callees are ignored
// unless their *name* is forbidden; ambiguous names fan out to every
// first-party definition) and the fixture tests in tools/dpulint/testdata
// pin its behavior rule by rule.
#pragma once

#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace dpulint {

// ---------------------------------------------------------------- tokens

struct Token {
  enum class Kind { kIdent, kPunct, kNumber, kString, kCharLit };
  Kind kind;
  std::string text;
  int line;
};

/// One `dpulint: allow(...)` comment, as lexed.
struct Waiver {
  std::vector<std::string> rules;
  std::string reason;
  int comment_line = 0;    ///< line the comment starts on
  int effective_line = 0;  ///< line of code it covers (same or next)
  bool malformed = false;  ///< allow() unparsable or reason empty
};

struct SourceFile {
  std::string path;  ///< as given (repo-relative in normal runs)
  std::vector<Token> toks;
  std::vector<Waiver> waivers;
  /// effective_line -> waivers covering that line.
  std::map<int, std::vector<const Waiver*>> waivers_by_line;

  bool line_waived(int line, const std::string& rule) const;
};

/// Tokenize one C++ source. Strips comments (capturing dpulint waivers),
/// preprocessor lines (with continuations) and string/char bodies.
SourceFile lex_file(const std::string& path, const std::string& text);

// ----------------------------------------------------------------- model

struct CallSite {
  std::string name;         ///< base identifier, e.g. "try_push"
  std::string qual;         ///< "::"-joined qualifier, e.g. "std::this_thread"
  bool member = false;      ///< preceded by `.` or `->`
  int line = 0;
  size_t tok = 0;           ///< index of the name token
};

struct FuncDef {
  std::string qual_name;    ///< e.g. "dpurpc::dpu::CodecPool::worker_loop"
  std::string base_name;    ///< "worker_loop"
  int file_index = -1;
  int line = 0;
  size_t body_begin = 0;    ///< token index of '{'
  size_t body_end = 0;      ///< token index one past matching '}'
  bool hot = false;         ///< carried a DPURPC_HOT_PATH marker
  std::vector<CallSite> calls;
};

struct EnumDef {
  std::string name;
  int file_index = -1;
  int line = 0;
  std::vector<std::pair<std::string, int>> enumerators;  ///< (name, line)
};

struct MutexReg {
  std::string lock_class;  ///< e.g. "dpu.CodecPool.wake"
  int file_index = -1;
  int line = 0;
};

/// The whole-tree model the checks run against.
struct Model {
  std::vector<SourceFile> files;
  std::vector<FuncDef> funcs;
  std::vector<EnumDef> enums;
  std::vector<MutexReg> mutexes;
  /// base name -> indices into funcs.
  std::map<std::string, std::vector<size_t>> by_base;
};

/// Parse every file's functions/enums/mutex registrations into one model.
Model build_model(std::vector<SourceFile> files);

// ---------------------------------------------------------------- policy

struct Policy {
  /// Marker identifying hot entry points.
  std::string hot_marker = "DPURPC_HOT_PATH";

  /// Identifiers that mean "this body allocates" when seen in a hot body.
  std::set<std::string> forbidden_alloc = {
      "malloc",       "calloc",        "realloc",     "aligned_alloc",
      "posix_memalign", "strdup",      "make_unique", "make_shared",
      "to_string",    "push_back",     "emplace_back", "resize",
      "reserve",      "insert",        "append",      "assign",
  };
  /// Identifiers that mean lock acquisition.
  std::set<std::string> forbidden_lock = {
      "lock",       "try_lock",   "ScopedLock", "UniqueLock",
      "lock_guard", "unique_lock", "scoped_lock", "Mutex", "mutex",
  };
  /// Identifiers that mean a blocking wait / syscall.
  std::set<std::string> forbidden_wait = {
      "wait",      "wait_for",   "wait_until", "sleep_for", "sleep_until",
      "usleep",    "nanosleep",  "sleep",      "poll",      "select",
      "epoll_wait", "accept",    "connect",    "recv",
  };
  /// Ultra-common member/accessor names: resolved to first-party
  /// definitions only within the same file (cross-file fan-out on these
  /// drowns the call graph in false edges). try_push/try_pop are here for
  /// a sharper reason: HandoffRing, SpanRing and BoundedQueue all define
  /// them, the member-call syntax cannot name which, and the ring variants
  /// are hot roots of their own — so the cross-file edge adds nothing but
  /// the false BoundedQueue (blocking, mutexed) path.
  std::set<std::string> common_names = {
      "size",  "data",  "empty", "begin", "end",   "clear", "get",
      "reset", "value", "count", "capacity", "name", "index", "ok",
      "is_ok", "status", "code", "active", "enabled", "now",  "set",
      "front", "back",  "swap",  "min",   "max",   "try_push", "try_pop",
  };

  /// Files (suffix match) where raw memory_order_relaxed is approved.
  std::vector<std::string> relaxed_whitelist = {
      "src/common/relaxed.hpp",
      "src/metrics/metrics.hpp",
      "src/metrics/metrics.cpp",
  };

  /// Trace-stage rule: the enum, where it lives, which files don't count
  /// as record sites (the trace library itself names every stage), which
  /// enumerators are exempt, and which enumerator record_root() records.
  std::string stage_enum = "Stage";
  std::string stage_enum_file_suffix = "src/trace/trace.hpp";
  std::vector<std::string> stage_site_exclude = {
      "src/trace/trace.hpp",
      "src/trace/trace.cpp",
      "src/trace/collector.hpp",
      "src/trace/collector.cpp",
  };
  std::set<std::string> stage_exempt = {"kStageCount"};
  std::string root_stage = "kRequest";  ///< recorded via record_root()
  std::set<std::string> record_calls = {"record", "record_global"};
  std::string record_root_call = "record_root";

  /// Record-before-respond pairing: in these files, any function invoking
  /// the responder must mention the completion stage first (or waive).
  std::vector<std::string> responder_files = {
      "src/grpccompat/dpu_proxy.cpp",
  };
  std::string respond_name = "respond";
  std::string complete_stage = "kComplete";

  /// DESIGN.md text holding the fenced ```lock-order block (empty string
  /// disables the lock-order rule — fixtures pass their own).
  std::string design_text;
  std::string design_path = "DESIGN.md";  ///< for messages only

  /// Skip the lock-order / trace rules entirely (fixture trees that only
  /// exercise one rule).
  bool check_lock_order = true;
  bool check_trace = true;
};

// --------------------------------------------------------------- results

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;     ///< hot-path | lock-order | relaxed-atomic |
                        ///< trace-stage | trace-pairing | waiver-syntax
  std::string message;
};

/// Run every rule. Findings come back sorted by (file, line).
std::vector<Finding> run_checks(const Model& model, const Policy& policy);

/// The DPURPC_HOT_PATH-annotated functions the model found (sorted
/// qualified names) — `dpulint --list-hot` prints these so tests can pin
/// that the real annotations are visible to the checker.
std::vector<std::string> hot_functions(const Model& model);

// ------------------------------------------------------------ tree loading

/// Recursively collect *.hpp/*.cpp/*.cc (excluding *.pb.cc / *.pb.h and
/// anything under a gen/ directory) beneath each root, lex them, and
/// return the files with paths relative to `base` when they fall under it.
std::vector<SourceFile> load_tree(const std::string& base,
                                  const std::vector<std::string>& roots,
                                  std::string* error);

/// Extract the "file" entries of a compile_commands.json (minimal string
/// scan, no JSON dependency). Used to cross-check the walked tree.
std::vector<std::string> compile_commands_files(const std::string& text);

/// Read a whole file; empty optional-style: returns false on failure.
bool read_file(const std::string& path, std::string* out);

}  // namespace dpulint
