// Whitelisted home for raw memory_order_relaxed (mirrors the real
// src/common/relaxed.hpp — the suffix match is what matters here).
#pragma once
#include <atomic>

namespace fix::relaxed {

template <typename T>
T load(const std::atomic<T>& a) {
  return a.load(std::memory_order_relaxed);
}

}  // namespace fix::relaxed
