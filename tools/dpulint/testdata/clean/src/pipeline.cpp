// The clean fixture's datapath: a hot root with an allocation-free
// callee, a waived cold spill, a waived relaxed read, one registered
// lock class, and record sites for the non-responder stages.
#include <atomic>
#include <vector>

#include "common/relaxed.hpp"
#include "trace/trace.hpp"

namespace fix {

struct Widget {
  lockdep::Mutex mu_{"fix.Widget.mu"};
};

static int scale(int v) { return v * 2; }

DPURPC_HOT_PATH int fast_sum(const int* p, int n) {
  int s = 0;
  for (int i = 0; i < n; ++i) s += scale(p[i]);
  return s;
}

DPURPC_HOT_PATH void fast_note(std::vector<int>& log, int v) {
  if (v < 0) {
    // dpulint: allow(hot-path): fixture cold spill — error accounting
    // grows the log outside the steady state.
    log.push_back(v);
  }
}

unsigned long peek(const std::atomic<unsigned long>& a) {
  return a.load(std::memory_order_relaxed);  // dpulint: allow(relaxed-atomic): SPSC self-cursor, fixture form
}

void instrument(trace::TraceContext& ctx) {
  trace::record_root(ctx, 0, 1, 0);
  trace::record(trace::Stage::kDecode, ctx, 1, 2, 0);
}

}  // namespace fix
