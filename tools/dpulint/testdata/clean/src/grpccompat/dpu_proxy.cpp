// Fixture responder file: record-before-respond pairing done right —
// kComplete is recorded before the responder fires (§3.15).
#include "trace/trace.hpp"

namespace fix {

struct Responder {
  void operator()(int code);
};

void finish(Responder& respond, trace::TraceContext& ctx) {
  trace::record(trace::Stage::kComplete, ctx, 2, 3, 0);
  respond(0);
}

}  // namespace fix
