// Fixture trace library: the Stage enum the trace-stage rule audits.
// This file is in the policy's stage_site_exclude list, so mentions here
// do not count as record sites.
#pragma once

namespace trace {

enum class Stage : unsigned char {
  kRequest,
  kDecode,
  kComplete,
  kStageCount,
};

struct TraceContext {
  unsigned long trace_id = 0;
};

void record(Stage stage, const TraceContext& ctx, unsigned long start,
            unsigned long end, unsigned long arg);
void record_root(const TraceContext& ctx, unsigned long start,
                 unsigned long end, unsigned long arg);

}  // namespace trace
