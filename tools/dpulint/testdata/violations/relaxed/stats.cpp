// Deliberate relaxed-atomic violation: a raw memory_order_relaxed use
// outside the approved wrappers, with no waiver naming its protocol.
#include <atomic>

namespace fix {

unsigned long sample(const std::atomic<unsigned long>& v) {
  return v.load(std::memory_order_relaxed);
}

}  // namespace fix
