// Keeps the trace-stage rule satisfied so the pairing finding is the
// only one in this fixture.
#include "trace/trace.hpp"

namespace fix {

void instrument(trace::TraceContext& ctx) {
  trace::record_root(ctx, 0, 1, 0);
  trace::record(trace::Stage::kComplete, ctx, 1, 2, 0);
}

}  // namespace fix
