// Fixture trace library for the pairing violation (all stages recorded).
#pragma once

namespace trace {

enum class Stage : unsigned char {
  kRequest,
  kComplete,
  kStageCount,
};

struct TraceContext {
  unsigned long trace_id = 0;
};

void record(Stage stage, const TraceContext& ctx, unsigned long start,
            unsigned long end, unsigned long arg);
void record_root(const TraceContext& ctx, unsigned long start,
                 unsigned long end, unsigned long arg);

}  // namespace trace
