// Deliberate trace-pairing violation: the responder fires without a
// kComplete mention anywhere before it (record-before-respond, §3.15).
#include "trace/trace.hpp"

namespace fix {

struct Responder {
  void operator()(int code);
};

void reject(Responder& respond) { respond(-1); }

}  // namespace fix
