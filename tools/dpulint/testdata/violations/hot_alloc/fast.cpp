// Deliberate hot-path violation: the hot root reaches push_back
// (allocation-prone container growth) through a helper, with no waiver.
#include <vector>

namespace fix {

void helper(std::vector<int>& v) { v.push_back(1); }

DPURPC_HOT_PATH void fast(std::vector<int>& v) { helper(v); }

}  // namespace fix
