// Fixture trace library with a stage nobody records (kDecode).
#pragma once

namespace trace {

enum class Stage : unsigned char {
  kRequest,
  kDecode,
  kComplete,
  kStageCount,
};

struct TraceContext {
  unsigned long trace_id = 0;
};

void record(Stage stage, const TraceContext& ctx, unsigned long start,
            unsigned long end, unsigned long arg);
void record_root(const TraceContext& ctx, unsigned long start,
                 unsigned long end, unsigned long arg);

}  // namespace trace
