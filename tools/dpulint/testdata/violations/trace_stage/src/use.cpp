// Records kRequest (via record_root) and kComplete — but never kDecode.
#include "trace/trace.hpp"

namespace fix {

void instrument(trace::TraceContext& ctx) {
  trace::record_root(ctx, 0, 1, 0);
  trace::record(trace::Stage::kComplete, ctx, 1, 2, 0);
}

}  // namespace fix
