// Deliberate waiver-syntax violation: a waiver with no reason. An
// undocumented exemption is itself a finding.
namespace fix {

// dpulint: allow(hot-path)
int x() { return 0; }

}  // namespace fix
