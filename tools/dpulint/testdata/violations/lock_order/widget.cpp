// Deliberate lock-order drift: this class is registered in code but the
// fixture design doc lists a different one (fix.Other.mu) instead.
namespace fix {

struct Widget {
  lockdep::Mutex mu_{"fix.Widget.mu"};
};

}  // namespace fix
