#!/usr/bin/env bash
# Tier-1 verify, three times over the same test suite:
#
#   1. plain        — RelWithDebInfo, the perf-shaped build the benches use.
#   2. asan         — address+undefined sanitizers, plus DPURPC_LOCKDEP=ON:
#                     the deserializer works on raw arena bytes and does
#                     unaligned word probes, so this pass catches the
#                     lifetime/OOB slips the plain pass runs through; the
#                     lockdep checker rides along and fails the pass on the
#                     first lock-order inversion or domain-rule violation.
#   3. tsan         — ThreadSanitizer over the whole suite: the DPU proxy
#                     lanes, decode-pool workers, xRPC reader threads,
#                     simverbs CQ pollers and the metrics scraper all
#                     interleave in the tests, and data races between them
#                     are invisible to passes 1–2. Benches are excluded
#                     here (the BMI2 micro-bench kernels measure nothing
#                     under TSan's 5-15x slowdown).
#
# Extra named passes:
#
#   lint            — tools/lint.sh: dpulint (the project-specific
#                     invariant checker, tools/dpulint — always enforced,
#                     built from this tree) plus clang-tidy over src/
#                     (skipped with a warning when clang-tidy is absent,
#                     hard failure under CI=true).
#   trace           — re-runs the plain tree's whole test suite with
#                     DPURPC_TRACE_FORCE=full: every request in every test
#                     records spans into the rings, so the instrumentation
#                     sites are exercised under load even by tests that
#                     never configure the tracer themselves.
#   bench-smoke     — builds the plain tree's bench/ binaries and runs each
#                     one once with DPURPC_BENCH_SMOKE=1 (tiny iteration
#                     counts): proves every harness still sets up, measures
#                     and reports without crashing (ablation_trace rides in
#                     via the glob). Numbers are meaningless. The figure
#                     harnesses (fig8/fig9/fig10/fig11/fig12) additionally
#                     run with --json; their outputs are combined into
#                     <prefix>-plain/BENCH_6.json for the workflow artifact.
#   perf            — the scheduled perf-trajectory lane: runs the figure
#                     harnesses at FULL iteration counts (no smoke env) and
#                     assembles the same BENCH_6.json document with real
#                     numbers, suitable for a strict bench_diff.py gate
#                     against a cached baseline. Minutes, not seconds — not
#                     part of `all`.
#
# Usage: tools/ci.sh [--pass plain|asan|tsan|lint|trace|bench-smoke|perf|all] [build-dir-prefix]
#   default pass is `all` (plain, asan, tsan, trace, then lint); default
#   prefix is build-ci. A per-pass wall-clock summary prints at the end
#   either way.
set -euo pipefail
cd "$(dirname "$0")/.."

pass="all"
prefix=""
while [ $# -gt 0 ]; do
  case "$1" in
    --pass) pass="$2"; shift 2 ;;
    --pass=*) pass="${1#--pass=}"; shift ;;
    -h|--help)
      sed -n '2,31p' "$0"; exit 0 ;;
    -*)
      echo "ci: unknown flag $1 (see --help)" >&2; exit 64 ;;
    *)
      prefix="$1"; shift ;;
  esac
done
prefix="${prefix:-build-ci}"
jobs="$(nproc 2>/dev/null || echo 4)"

# ccache makes the matrix affordable on hosted runners; harmless to skip.
launcher_args=()
if command -v ccache >/dev/null 2>&1; then
  launcher_args=(-DCMAKE_C_COMPILER_LAUNCHER=ccache -DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

summary=()
timed() {
  local name="$1"; shift
  local t0 t1
  t0=$(date +%s)
  "$@"
  t1=$(date +%s)
  summary+=("$(printf '%-12s %4ds' "$name" "$((t1 - t0))")")
}

build_dir() {
  local dir="$1"; shift
  echo "=== configure $dir ($*)" >&2
  cmake -B "$dir" -S . "${launcher_args[@]}" "$@" >/dev/null
  cmake --build "$dir" -j "$jobs"
}

run_pass() {
  local dir="$1"; shift
  build_dir "$dir" "$@"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

pass_plain() { run_pass "$prefix-plain"; }
pass_asan()  { run_pass "$prefix-asan" -DDPURPC_SANITIZE=address,undefined -DDPURPC_LOCKDEP=ON; }
pass_tsan()  { run_pass "$prefix-tsan" -DDPURPC_SANITIZE=thread -DDPURPC_BUILD_BENCH=OFF; }
pass_lint() {
  # lint.sh needs a configured tree (compile_commands.json) and builds
  # the dpulint target itself; configure here so `--pass lint` works
  # standalone without paying for a full build.
  if [ ! -f "$prefix-plain/compile_commands.json" ]; then
    cmake -B "$prefix-plain" -S . "${launcher_args[@]}" >/dev/null
  fi
  tools/lint.sh "$prefix-plain"
}

# Reuses the plain tree (same binaries, new env): DPURPC_TRACE_FORCE=full
# flips the runtime gate open in every test process, so all the span
# record sites run hot for the whole suite.
pass_trace() {
  build_dir "$prefix-plain"
  DPURPC_TRACE_FORCE=full ctest --test-dir "$prefix-plain" --output-on-failure -j "$jobs"
}

# The figure harnesses whose --json outputs land in BENCH_6.json.
fig_benches="fig8_datapath fig9_scaling fig10_roundtrip fig11_shuffle fig12_openloop"
# Extra per-figure documents assembled alongside them (not separate
# binaries): the knee-forensics attribution doc fig12 writes.
bench_docs="$fig_benches fig12_forensics"

# Combine per-figure JSON from $1 into $2 as one document:
# {"fig8_datapath": {...}, "fig9_scaling": {...}, ...}. Fails (returns 1)
# when nothing was collected.
assemble_bench_json() {
  local json_dir="$1" out="$2" name first=1
  {
    echo "{"
    for name in $bench_docs; do
      [ -s "$json_dir/$name.json" ] || continue
      [ "$first" -eq 1 ] || echo ","
      first=0
      printf '"%s": ' "$name"
      cat "$json_dir/$name.json"
    done
    echo "}"
  } > "$out"
  if [ "$first" -eq 1 ]; then
    echo "ci: no bench JSON collected for $out" >&2
    return 1
  fi
  echo "ci: bench results collected in $out" >&2
}

pass_bench_smoke() {
  build_dir "$prefix-plain"
  local bench name failed=0
  local json_dir="$prefix-plain/bench-json"
  mkdir -p "$json_dir"
  for bench in "$prefix-plain"/bench/*; do
    [ -f "$bench" ] && [ -x "$bench" ] || continue
    name="$(basename "$bench")"
    echo "=== smoke $name" >&2
    # The figure harnesses emit machine-readable results; collect them
    # into BENCH_6.json below (archived as a workflow artifact).
    local extra=()
    case " $fig_benches " in
      *" $name "*) extra=(--json "$json_dir/$name.json") ;;
    esac
    if ! DPURPC_BENCH_SMOKE=1 "$bench" "${extra[@]}" >/dev/null; then
      echo "ci: bench smoke FAILED: $name" >&2
      failed=1
    fi
  done
  # The knee-forensics path (recorder + sampler + counter-track export) in
  # smoke shape: proves the re-run, the artifact writers and the JSON doc
  # still work; the capture/attribution gates only apply at full length.
  echo "=== smoke fig12_openloop --knee-forensics" >&2
  if ! DPURPC_BENCH_SMOKE=1 "$prefix-plain/bench/fig12_openloop" \
      --knee-forensics \
      --forensics-json "$json_dir/fig12_forensics.json" \
      --trace-out "$json_dir/fig12_knee_trace.json" \
      --exemplars-out "$json_dir/fig12_tail_exemplars.json" >/dev/null; then
    echo "ci: bench smoke FAILED: fig12_openloop --knee-forensics" >&2
    failed=1
  fi
  # Smoke-mode numbers: shape checks only, never diffed strictly.
  assemble_bench_json "$json_dir" "$prefix-plain/BENCH_6.json" || failed=1
  return "$failed"
}

# Full-length figure runs for the perf-trajectory lane. Only the fig*
# harnesses run (the ablations are relative A/B checks with their own
# in-bench gates); each contributes real numbers to BENCH_6.json.
pass_perf() {
  build_dir "$prefix-plain"
  local name failed=0
  local json_dir="$prefix-plain/bench-json"
  mkdir -p "$json_dir"
  for name in $fig_benches; do
    [ -x "$prefix-plain/bench/$name" ] || { echo "ci: missing bench $name" >&2; failed=1; continue; }
    echo "=== perf $name" >&2
    # fig12 runs its knee-forensics pass in the same invocation: the
    # recorder-armed re-run, the Perfetto timeline with counter tracks and
    # the tail-exemplar dump ride the same sweep (all three archived as
    # workflow artifacts; the attribution doc joins BENCH_6.json).
    local extra=()
    if [ "$name" = fig12_openloop ]; then
      extra=(--knee-forensics
             --forensics-json "$json_dir/fig12_forensics.json"
             --trace-out "$json_dir/fig12_knee_trace.json"
             --exemplars-out "$json_dir/fig12_tail_exemplars.json")
    fi
    if ! "$prefix-plain/bench/$name" --json "$json_dir/$name.json" "${extra[@]}" >/dev/null; then
      echo "ci: perf bench FAILED: $name" >&2
      failed=1
    fi
  done
  assemble_bench_json "$json_dir" "$prefix-plain/BENCH_6.json" || failed=1
  return "$failed"
}

case "$pass" in
  plain)       timed plain pass_plain ;;
  asan)        timed asan pass_asan ;;
  tsan)        timed tsan pass_tsan ;;
  lint)        timed lint pass_lint ;;
  trace)       timed trace pass_trace ;;
  bench-smoke) timed bench-smoke pass_bench_smoke ;;
  perf)        timed perf pass_perf ;;
  all)
    timed plain pass_plain
    timed asan pass_asan
    timed tsan pass_tsan
    timed trace pass_trace
    timed lint pass_lint
    ;;
  *)
    echo "ci: unknown pass '$pass' (plain|asan|tsan|lint|trace|bench-smoke|perf|all)" >&2
    exit 64 ;;
esac

echo
echo "ci: pass summary (wall clock)"
for line in "${summary[@]}"; do echo "  $line"; done
echo "ci: pass '$pass' green"
