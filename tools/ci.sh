#!/usr/bin/env bash
# Tier-1 verify, twice: a plain RelWithDebInfo pass (the perf-shaped build
# the benches use) and an address+undefined sanitizer pass over the same
# test suite. The deserializer works on raw arena bytes and does unaligned
# word probes, so the sanitized pass is what catches lifetime/OOB slips the
# plain pass happily runs through.
#
# Usage: tools/ci.sh [build-dir-prefix]   (default: build-ci)
set -euo pipefail
cd "$(dirname "$0")/.."

prefix="${1:-build-ci}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_pass() {
  local dir="$1"; shift
  echo "=== configure $dir ($*)" >&2
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

run_pass "$prefix-plain"
run_pass "$prefix-asan" -DDPURPC_SANITIZE=address,undefined

echo "ci: both passes green"
