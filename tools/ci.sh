#!/usr/bin/env bash
# Tier-1 verify, three times over the same test suite:
#
#   1. plain        — RelWithDebInfo, the perf-shaped build the benches use.
#   2. asan         — address+undefined sanitizers, plus DPURPC_LOCKDEP=ON:
#                     the deserializer works on raw arena bytes and does
#                     unaligned word probes, so this pass catches the
#                     lifetime/OOB slips the plain pass runs through; the
#                     lockdep checker rides along and fails the pass on the
#                     first lock-order inversion or domain-rule violation.
#   3. tsan         — ThreadSanitizer over the whole suite: the DPU proxy
#                     lanes, xRPC reader threads, simverbs CQ pollers and
#                     the metrics scraper all interleave in the tests, and
#                     data races between them are invisible to passes 1–2.
#                     Benches are excluded here (the BMI2 micro-bench
#                     kernels measure nothing under TSan's 5-15x slowdown
#                     and are single-threaded anyway).
#
# Also runs tools/lint.sh (clang-tidy over src/) when clang-tidy exists in
# the environment; see that script for the gating rules.
#
# Usage: tools/ci.sh [build-dir-prefix]   (default: build-ci)
set -euo pipefail
cd "$(dirname "$0")/.."

prefix="${1:-build-ci}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_pass() {
  local dir="$1"; shift
  echo "=== configure $dir ($*)" >&2
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

run_pass "$prefix-plain"
run_pass "$prefix-asan" -DDPURPC_SANITIZE=address,undefined -DDPURPC_LOCKDEP=ON
run_pass "$prefix-tsan" -DDPURPC_SANITIZE=thread -DDPURPC_BUILD_BENCH=OFF

# Static lint wall: no-op (with a warning) when clang-tidy is absent.
tools/lint.sh "$prefix-plain"

echo "ci: all three passes green"
