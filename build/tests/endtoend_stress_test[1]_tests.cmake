add_test([=[EndToEndStress.EverythingAtOnce]=]  /root/repo/build/tests/endtoend_stress_test [==[--gtest_filter=EndToEndStress.EverythingAtOnce]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[EndToEndStress.EverythingAtOnce]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  endtoend_stress_test_TESTS EndToEndStress.EverythingAtOnce)
