file(REMOVE_RECURSE
  "CMakeFiles/xrpc_test.dir/xrpc_test.cpp.o"
  "CMakeFiles/xrpc_test.dir/xrpc_test.cpp.o.d"
  "xrpc_test"
  "xrpc_test.pdb"
  "xrpc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
