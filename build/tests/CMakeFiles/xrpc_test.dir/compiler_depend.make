# Empty compiler generated dependencies file for xrpc_test.
# This may be replaced when dependencies are built.
