file(REMOVE_RECURSE
  "CMakeFiles/object_codec_test.dir/object_codec_test.cpp.o"
  "CMakeFiles/object_codec_test.dir/object_codec_test.cpp.o.d"
  "object_codec_test"
  "object_codec_test.pdb"
  "object_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
