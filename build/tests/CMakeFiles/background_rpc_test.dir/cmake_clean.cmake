file(REMOVE_RECURSE
  "CMakeFiles/background_rpc_test.dir/background_rpc_test.cpp.o"
  "CMakeFiles/background_rpc_test.dir/background_rpc_test.cpp.o.d"
  "background_rpc_test"
  "background_rpc_test.pdb"
  "background_rpc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/background_rpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
