# Empty dependencies file for background_rpc_test.
# This may be replaced when dependencies are built.
