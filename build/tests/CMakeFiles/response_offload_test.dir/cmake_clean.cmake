file(REMOVE_RECURSE
  "CMakeFiles/response_offload_test.dir/response_offload_test.cpp.o"
  "CMakeFiles/response_offload_test.dir/response_offload_test.cpp.o.d"
  "response_offload_test"
  "response_offload_test.pdb"
  "response_offload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/response_offload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
