# Empty compiler generated dependencies file for response_offload_test.
# This may be replaced when dependencies are built.
