# Empty dependencies file for poller_test.
# This may be replaced when dependencies are built.
