file(REMOVE_RECURSE
  "CMakeFiles/simverbs_test.dir/simverbs_test.cpp.o"
  "CMakeFiles/simverbs_test.dir/simverbs_test.cpp.o.d"
  "simverbs_test"
  "simverbs_test.pdb"
  "simverbs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simverbs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
