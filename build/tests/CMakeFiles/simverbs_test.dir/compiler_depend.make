# Empty compiler generated dependencies file for simverbs_test.
# This may be replaced when dependencies are built.
