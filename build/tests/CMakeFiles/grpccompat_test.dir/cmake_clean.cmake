file(REMOVE_RECURSE
  "CMakeFiles/grpccompat_test.dir/grpccompat_test.cpp.o"
  "CMakeFiles/grpccompat_test.dir/grpccompat_test.cpp.o.d"
  "grpccompat_test"
  "grpccompat_test.pdb"
  "grpccompat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grpccompat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
