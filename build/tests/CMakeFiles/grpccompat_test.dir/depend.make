# Empty dependencies file for grpccompat_test.
# This may be replaced when dependencies are built.
