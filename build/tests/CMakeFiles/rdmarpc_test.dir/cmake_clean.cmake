file(REMOVE_RECURSE
  "CMakeFiles/rdmarpc_test.dir/rdmarpc_test.cpp.o"
  "CMakeFiles/rdmarpc_test.dir/rdmarpc_test.cpp.o.d"
  "rdmarpc_test"
  "rdmarpc_test.pdb"
  "rdmarpc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmarpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
