# Empty compiler generated dependencies file for rdmarpc_test.
# This may be replaced when dependencies are built.
