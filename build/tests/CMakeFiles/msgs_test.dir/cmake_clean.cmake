file(REMOVE_RECURSE
  "CMakeFiles/msgs_test.dir/msgs_test.cpp.o"
  "CMakeFiles/msgs_test.dir/msgs_test.cpp.o.d"
  "msgs_test"
  "msgs_test.pdb"
  "msgs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msgs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
