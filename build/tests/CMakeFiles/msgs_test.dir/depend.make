# Empty dependencies file for msgs_test.
# This may be replaced when dependencies are built.
