# Empty compiler generated dependencies file for multilane_test.
# This may be replaced when dependencies are built.
