file(REMOVE_RECURSE
  "CMakeFiles/multilane_test.dir/multilane_test.cpp.o"
  "CMakeFiles/multilane_test.dir/multilane_test.cpp.o.d"
  "multilane_test"
  "multilane_test.pdb"
  "multilane_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilane_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
