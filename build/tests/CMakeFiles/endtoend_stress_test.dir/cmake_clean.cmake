file(REMOVE_RECURSE
  "CMakeFiles/endtoend_stress_test.dir/endtoend_stress_test.cpp.o"
  "CMakeFiles/endtoend_stress_test.dir/endtoend_stress_test.cpp.o.d"
  "endtoend_stress_test"
  "endtoend_stress_test.pdb"
  "endtoend_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endtoend_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
