# Empty compiler generated dependencies file for endtoend_stress_test.
# This may be replaced when dependencies are built.
