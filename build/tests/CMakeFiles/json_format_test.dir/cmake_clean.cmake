file(REMOVE_RECURSE
  "CMakeFiles/json_format_test.dir/json_format_test.cpp.o"
  "CMakeFiles/json_format_test.dir/json_format_test.cpp.o.d"
  "json_format_test"
  "json_format_test.pdb"
  "json_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
