# Empty dependencies file for json_format_test.
# This may be replaced when dependencies are built.
