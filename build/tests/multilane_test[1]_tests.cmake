add_test([=[MultiLane.ProxyLanesAndHostPoolServeConcurrently]=]  /root/repo/build/tests/multilane_test [==[--gtest_filter=MultiLane.ProxyLanesAndHostPoolServeConcurrently]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[MultiLane.ProxyLanesAndHostPoolServeConcurrently]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  multilane_test_TESTS MultiLane.ProxyLanesAndHostPoolServeConcurrently)
