# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/arena_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/adt_test[1]_include.cmake")
include("/root/repo/build/tests/simverbs_test[1]_include.cmake")
include("/root/repo/build/tests/rdmarpc_test[1]_include.cmake")
include("/root/repo/build/tests/xrpc_test[1]_include.cmake")
include("/root/repo/build/tests/grpccompat_test[1]_include.cmake")
include("/root/repo/build/tests/msgs_test[1]_include.cmake")
include("/root/repo/build/tests/object_codec_test[1]_include.cmake")
include("/root/repo/build/tests/background_rpc_test[1]_include.cmake")
include("/root/repo/build/tests/response_offload_test[1]_include.cmake")
include("/root/repo/build/tests/poller_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/json_format_test[1]_include.cmake")
include("/root/repo/build/tests/multilane_test[1]_include.cmake")
include("/root/repo/build/tests/bootstrap_test[1]_include.cmake")
include("/root/repo/build/tests/text_format_test[1]_include.cmake")
include("/root/repo/build/tests/endtoend_stress_test[1]_include.cmake")
