file(REMOVE_RECURSE
  "CMakeFiles/adtc.dir/adtc/main.cpp.o"
  "CMakeFiles/adtc.dir/adtc/main.cpp.o.d"
  "adtc"
  "adtc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adtc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
