# Empty dependencies file for adtc.
# This may be replaced when dependencies are built.
