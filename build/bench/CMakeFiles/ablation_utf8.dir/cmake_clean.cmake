file(REMOVE_RECURSE
  "CMakeFiles/ablation_utf8.dir/ablation_utf8.cpp.o"
  "CMakeFiles/ablation_utf8.dir/ablation_utf8.cpp.o.d"
  "ablation_utf8"
  "ablation_utf8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_utf8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
