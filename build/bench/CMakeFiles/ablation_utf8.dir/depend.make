# Empty dependencies file for ablation_utf8.
# This may be replaced when dependencies are built.
