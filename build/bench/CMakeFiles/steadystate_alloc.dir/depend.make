# Empty dependencies file for steadystate_alloc.
# This may be replaced when dependencies are built.
