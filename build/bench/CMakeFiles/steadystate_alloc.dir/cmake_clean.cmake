file(REMOVE_RECURSE
  "CMakeFiles/steadystate_alloc.dir/steadystate_alloc.cpp.o"
  "CMakeFiles/steadystate_alloc.dir/steadystate_alloc.cpp.o.d"
  "steadystate_alloc"
  "steadystate_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steadystate_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
