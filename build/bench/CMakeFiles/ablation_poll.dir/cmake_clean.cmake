file(REMOVE_RECURSE
  "CMakeFiles/ablation_poll.dir/ablation_poll.cpp.o"
  "CMakeFiles/ablation_poll.dir/ablation_poll.cpp.o.d"
  "ablation_poll"
  "ablation_poll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_poll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
