# Empty dependencies file for ablation_poll.
# This may be replaced when dependencies are built.
