# Empty dependencies file for fig8_datapath.
# This may be replaced when dependencies are built.
