file(REMOVE_RECURSE
  "CMakeFiles/fig8_datapath.dir/fig8_datapath.cpp.o"
  "CMakeFiles/fig8_datapath.dir/fig8_datapath.cpp.o.d"
  "fig8_datapath"
  "fig8_datapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
