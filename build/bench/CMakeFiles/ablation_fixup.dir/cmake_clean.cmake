file(REMOVE_RECURSE
  "CMakeFiles/ablation_fixup.dir/ablation_fixup.cpp.o"
  "CMakeFiles/ablation_fixup.dir/ablation_fixup.cpp.o.d"
  "ablation_fixup"
  "ablation_fixup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fixup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
