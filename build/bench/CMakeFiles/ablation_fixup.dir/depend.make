# Empty dependencies file for ablation_fixup.
# This may be replaced when dependencies are built.
