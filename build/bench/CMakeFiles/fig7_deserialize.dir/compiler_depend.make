# Empty compiler generated dependencies file for fig7_deserialize.
# This may be replaced when dependencies are built.
