file(REMOVE_RECURSE
  "CMakeFiles/fig7_deserialize.dir/fig7_deserialize.cpp.o"
  "CMakeFiles/fig7_deserialize.dir/fig7_deserialize.cpp.o.d"
  "fig7_deserialize"
  "fig7_deserialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_deserialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
