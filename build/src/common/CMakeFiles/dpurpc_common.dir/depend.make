# Empty dependencies file for dpurpc_common.
# This may be replaced when dependencies are built.
