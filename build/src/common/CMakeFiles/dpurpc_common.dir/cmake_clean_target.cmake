file(REMOVE_RECURSE
  "libdpurpc_common.a"
)
