file(REMOVE_RECURSE
  "CMakeFiles/dpurpc_common.dir/bytes.cpp.o"
  "CMakeFiles/dpurpc_common.dir/bytes.cpp.o.d"
  "CMakeFiles/dpurpc_common.dir/status.cpp.o"
  "CMakeFiles/dpurpc_common.dir/status.cpp.o.d"
  "libdpurpc_common.a"
  "libdpurpc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpurpc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
