# Empty compiler generated dependencies file for dpurpc_rdmarpc.
# This may be replaced when dependencies are built.
