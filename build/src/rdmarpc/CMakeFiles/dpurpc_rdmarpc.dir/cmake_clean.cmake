file(REMOVE_RECURSE
  "CMakeFiles/dpurpc_rdmarpc.dir/block.cpp.o"
  "CMakeFiles/dpurpc_rdmarpc.dir/block.cpp.o.d"
  "CMakeFiles/dpurpc_rdmarpc.dir/client.cpp.o"
  "CMakeFiles/dpurpc_rdmarpc.dir/client.cpp.o.d"
  "CMakeFiles/dpurpc_rdmarpc.dir/connection.cpp.o"
  "CMakeFiles/dpurpc_rdmarpc.dir/connection.cpp.o.d"
  "CMakeFiles/dpurpc_rdmarpc.dir/offset_allocator.cpp.o"
  "CMakeFiles/dpurpc_rdmarpc.dir/offset_allocator.cpp.o.d"
  "CMakeFiles/dpurpc_rdmarpc.dir/server.cpp.o"
  "CMakeFiles/dpurpc_rdmarpc.dir/server.cpp.o.d"
  "libdpurpc_rdmarpc.a"
  "libdpurpc_rdmarpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpurpc_rdmarpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
