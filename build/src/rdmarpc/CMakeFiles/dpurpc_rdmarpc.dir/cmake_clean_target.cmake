file(REMOVE_RECURSE
  "libdpurpc_rdmarpc.a"
)
