
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdmarpc/block.cpp" "src/rdmarpc/CMakeFiles/dpurpc_rdmarpc.dir/block.cpp.o" "gcc" "src/rdmarpc/CMakeFiles/dpurpc_rdmarpc.dir/block.cpp.o.d"
  "/root/repo/src/rdmarpc/client.cpp" "src/rdmarpc/CMakeFiles/dpurpc_rdmarpc.dir/client.cpp.o" "gcc" "src/rdmarpc/CMakeFiles/dpurpc_rdmarpc.dir/client.cpp.o.d"
  "/root/repo/src/rdmarpc/connection.cpp" "src/rdmarpc/CMakeFiles/dpurpc_rdmarpc.dir/connection.cpp.o" "gcc" "src/rdmarpc/CMakeFiles/dpurpc_rdmarpc.dir/connection.cpp.o.d"
  "/root/repo/src/rdmarpc/offset_allocator.cpp" "src/rdmarpc/CMakeFiles/dpurpc_rdmarpc.dir/offset_allocator.cpp.o" "gcc" "src/rdmarpc/CMakeFiles/dpurpc_rdmarpc.dir/offset_allocator.cpp.o.d"
  "/root/repo/src/rdmarpc/server.cpp" "src/rdmarpc/CMakeFiles/dpurpc_rdmarpc.dir/server.cpp.o" "gcc" "src/rdmarpc/CMakeFiles/dpurpc_rdmarpc.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpurpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/arena/CMakeFiles/dpurpc_arena.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dpurpc_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/simverbs/CMakeFiles/dpurpc_simverbs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
