file(REMOVE_RECURSE
  "libdpurpc_arena.a"
)
