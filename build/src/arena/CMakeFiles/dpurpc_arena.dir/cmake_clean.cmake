file(REMOVE_RECURSE
  "CMakeFiles/dpurpc_arena.dir/arena.cpp.o"
  "CMakeFiles/dpurpc_arena.dir/arena.cpp.o.d"
  "CMakeFiles/dpurpc_arena.dir/string_craft.cpp.o"
  "CMakeFiles/dpurpc_arena.dir/string_craft.cpp.o.d"
  "libdpurpc_arena.a"
  "libdpurpc_arena.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpurpc_arena.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
