# Empty compiler generated dependencies file for dpurpc_arena.
# This may be replaced when dependencies are built.
