# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("metrics")
subdirs("wire")
subdirs("arena")
subdirs("proto")
subdirs("adt")
subdirs("simverbs")
subdirs("dpu")
subdirs("rdmarpc")
subdirs("xrpc")
subdirs("grpccompat")
subdirs("msgs")
