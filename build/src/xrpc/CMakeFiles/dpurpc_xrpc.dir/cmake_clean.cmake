file(REMOVE_RECURSE
  "CMakeFiles/dpurpc_xrpc.dir/channel.cpp.o"
  "CMakeFiles/dpurpc_xrpc.dir/channel.cpp.o.d"
  "CMakeFiles/dpurpc_xrpc.dir/frame.cpp.o"
  "CMakeFiles/dpurpc_xrpc.dir/frame.cpp.o.d"
  "CMakeFiles/dpurpc_xrpc.dir/server.cpp.o"
  "CMakeFiles/dpurpc_xrpc.dir/server.cpp.o.d"
  "CMakeFiles/dpurpc_xrpc.dir/socket.cpp.o"
  "CMakeFiles/dpurpc_xrpc.dir/socket.cpp.o.d"
  "libdpurpc_xrpc.a"
  "libdpurpc_xrpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpurpc_xrpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
