
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xrpc/channel.cpp" "src/xrpc/CMakeFiles/dpurpc_xrpc.dir/channel.cpp.o" "gcc" "src/xrpc/CMakeFiles/dpurpc_xrpc.dir/channel.cpp.o.d"
  "/root/repo/src/xrpc/frame.cpp" "src/xrpc/CMakeFiles/dpurpc_xrpc.dir/frame.cpp.o" "gcc" "src/xrpc/CMakeFiles/dpurpc_xrpc.dir/frame.cpp.o.d"
  "/root/repo/src/xrpc/server.cpp" "src/xrpc/CMakeFiles/dpurpc_xrpc.dir/server.cpp.o" "gcc" "src/xrpc/CMakeFiles/dpurpc_xrpc.dir/server.cpp.o.d"
  "/root/repo/src/xrpc/socket.cpp" "src/xrpc/CMakeFiles/dpurpc_xrpc.dir/socket.cpp.o" "gcc" "src/xrpc/CMakeFiles/dpurpc_xrpc.dir/socket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpurpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
