# Empty compiler generated dependencies file for dpurpc_xrpc.
# This may be replaced when dependencies are built.
