file(REMOVE_RECURSE
  "libdpurpc_xrpc.a"
)
