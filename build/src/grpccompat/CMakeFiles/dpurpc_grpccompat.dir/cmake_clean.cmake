file(REMOVE_RECURSE
  "CMakeFiles/dpurpc_grpccompat.dir/bootstrap.cpp.o"
  "CMakeFiles/dpurpc_grpccompat.dir/bootstrap.cpp.o.d"
  "CMakeFiles/dpurpc_grpccompat.dir/dpu_proxy.cpp.o"
  "CMakeFiles/dpurpc_grpccompat.dir/dpu_proxy.cpp.o.d"
  "CMakeFiles/dpurpc_grpccompat.dir/host_service.cpp.o"
  "CMakeFiles/dpurpc_grpccompat.dir/host_service.cpp.o.d"
  "CMakeFiles/dpurpc_grpccompat.dir/manifest.cpp.o"
  "CMakeFiles/dpurpc_grpccompat.dir/manifest.cpp.o.d"
  "libdpurpc_grpccompat.a"
  "libdpurpc_grpccompat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpurpc_grpccompat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
