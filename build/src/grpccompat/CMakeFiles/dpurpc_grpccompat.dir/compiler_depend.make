# Empty compiler generated dependencies file for dpurpc_grpccompat.
# This may be replaced when dependencies are built.
