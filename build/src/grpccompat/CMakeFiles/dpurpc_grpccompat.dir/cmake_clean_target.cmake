file(REMOVE_RECURSE
  "libdpurpc_grpccompat.a"
)
