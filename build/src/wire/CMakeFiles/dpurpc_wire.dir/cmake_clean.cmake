file(REMOVE_RECURSE
  "CMakeFiles/dpurpc_wire.dir/utf8.cpp.o"
  "CMakeFiles/dpurpc_wire.dir/utf8.cpp.o.d"
  "CMakeFiles/dpurpc_wire.dir/wire_format.cpp.o"
  "CMakeFiles/dpurpc_wire.dir/wire_format.cpp.o.d"
  "libdpurpc_wire.a"
  "libdpurpc_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpurpc_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
