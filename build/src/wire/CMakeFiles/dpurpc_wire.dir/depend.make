# Empty dependencies file for dpurpc_wire.
# This may be replaced when dependencies are built.
