file(REMOVE_RECURSE
  "libdpurpc_wire.a"
)
