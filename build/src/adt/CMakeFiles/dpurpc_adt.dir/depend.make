# Empty dependencies file for dpurpc_adt.
# This may be replaced when dependencies are built.
