file(REMOVE_RECURSE
  "CMakeFiles/dpurpc_adt.dir/adt.cpp.o"
  "CMakeFiles/dpurpc_adt.dir/adt.cpp.o.d"
  "CMakeFiles/dpurpc_adt.dir/arena_deserializer.cpp.o"
  "CMakeFiles/dpurpc_adt.dir/arena_deserializer.cpp.o.d"
  "CMakeFiles/dpurpc_adt.dir/json_format.cpp.o"
  "CMakeFiles/dpurpc_adt.dir/json_format.cpp.o.d"
  "CMakeFiles/dpurpc_adt.dir/object_codec.cpp.o"
  "CMakeFiles/dpurpc_adt.dir/object_codec.cpp.o.d"
  "libdpurpc_adt.a"
  "libdpurpc_adt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpurpc_adt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
