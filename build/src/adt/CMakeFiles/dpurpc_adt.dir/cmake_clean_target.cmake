file(REMOVE_RECURSE
  "libdpurpc_adt.a"
)
