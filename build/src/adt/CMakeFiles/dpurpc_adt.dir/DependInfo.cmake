
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adt/adt.cpp" "src/adt/CMakeFiles/dpurpc_adt.dir/adt.cpp.o" "gcc" "src/adt/CMakeFiles/dpurpc_adt.dir/adt.cpp.o.d"
  "/root/repo/src/adt/arena_deserializer.cpp" "src/adt/CMakeFiles/dpurpc_adt.dir/arena_deserializer.cpp.o" "gcc" "src/adt/CMakeFiles/dpurpc_adt.dir/arena_deserializer.cpp.o.d"
  "/root/repo/src/adt/json_format.cpp" "src/adt/CMakeFiles/dpurpc_adt.dir/json_format.cpp.o" "gcc" "src/adt/CMakeFiles/dpurpc_adt.dir/json_format.cpp.o.d"
  "/root/repo/src/adt/object_codec.cpp" "src/adt/CMakeFiles/dpurpc_adt.dir/object_codec.cpp.o" "gcc" "src/adt/CMakeFiles/dpurpc_adt.dir/object_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpurpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/dpurpc_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/arena/CMakeFiles/dpurpc_arena.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/dpurpc_proto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
