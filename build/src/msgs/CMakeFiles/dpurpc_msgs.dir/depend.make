# Empty dependencies file for dpurpc_msgs.
# This may be replaced when dependencies are built.
