file(REMOVE_RECURSE
  "CMakeFiles/dpurpc_msgs.dir/gen/bench_messages.adt.pb.cc.o"
  "CMakeFiles/dpurpc_msgs.dir/gen/bench_messages.adt.pb.cc.o.d"
  "CMakeFiles/dpurpc_msgs.dir/gen/bench_messages.pb.cc.o"
  "CMakeFiles/dpurpc_msgs.dir/gen/bench_messages.pb.cc.o.d"
  "gen/bench_messages.adt.pb.cc"
  "gen/bench_messages.adt.pb.h"
  "gen/bench_messages.pb.cc"
  "gen/bench_messages.pb.h"
  "libdpurpc_msgs.a"
  "libdpurpc_msgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpurpc_msgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
