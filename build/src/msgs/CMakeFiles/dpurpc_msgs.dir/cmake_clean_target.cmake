file(REMOVE_RECURSE
  "libdpurpc_msgs.a"
)
