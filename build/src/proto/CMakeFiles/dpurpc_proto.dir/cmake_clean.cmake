file(REMOVE_RECURSE
  "CMakeFiles/dpurpc_proto.dir/codegen.cpp.o"
  "CMakeFiles/dpurpc_proto.dir/codegen.cpp.o.d"
  "CMakeFiles/dpurpc_proto.dir/descriptor.cpp.o"
  "CMakeFiles/dpurpc_proto.dir/descriptor.cpp.o.d"
  "CMakeFiles/dpurpc_proto.dir/dynamic_message.cpp.o"
  "CMakeFiles/dpurpc_proto.dir/dynamic_message.cpp.o.d"
  "CMakeFiles/dpurpc_proto.dir/schema_parser.cpp.o"
  "CMakeFiles/dpurpc_proto.dir/schema_parser.cpp.o.d"
  "CMakeFiles/dpurpc_proto.dir/text_format.cpp.o"
  "CMakeFiles/dpurpc_proto.dir/text_format.cpp.o.d"
  "CMakeFiles/dpurpc_proto.dir/wire_codec.cpp.o"
  "CMakeFiles/dpurpc_proto.dir/wire_codec.cpp.o.d"
  "libdpurpc_proto.a"
  "libdpurpc_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpurpc_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
