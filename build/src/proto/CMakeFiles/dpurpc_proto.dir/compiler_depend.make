# Empty compiler generated dependencies file for dpurpc_proto.
# This may be replaced when dependencies are built.
