file(REMOVE_RECURSE
  "libdpurpc_proto.a"
)
