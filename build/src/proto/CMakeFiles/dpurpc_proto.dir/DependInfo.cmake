
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/codegen.cpp" "src/proto/CMakeFiles/dpurpc_proto.dir/codegen.cpp.o" "gcc" "src/proto/CMakeFiles/dpurpc_proto.dir/codegen.cpp.o.d"
  "/root/repo/src/proto/descriptor.cpp" "src/proto/CMakeFiles/dpurpc_proto.dir/descriptor.cpp.o" "gcc" "src/proto/CMakeFiles/dpurpc_proto.dir/descriptor.cpp.o.d"
  "/root/repo/src/proto/dynamic_message.cpp" "src/proto/CMakeFiles/dpurpc_proto.dir/dynamic_message.cpp.o" "gcc" "src/proto/CMakeFiles/dpurpc_proto.dir/dynamic_message.cpp.o.d"
  "/root/repo/src/proto/schema_parser.cpp" "src/proto/CMakeFiles/dpurpc_proto.dir/schema_parser.cpp.o" "gcc" "src/proto/CMakeFiles/dpurpc_proto.dir/schema_parser.cpp.o.d"
  "/root/repo/src/proto/text_format.cpp" "src/proto/CMakeFiles/dpurpc_proto.dir/text_format.cpp.o" "gcc" "src/proto/CMakeFiles/dpurpc_proto.dir/text_format.cpp.o.d"
  "/root/repo/src/proto/wire_codec.cpp" "src/proto/CMakeFiles/dpurpc_proto.dir/wire_codec.cpp.o" "gcc" "src/proto/CMakeFiles/dpurpc_proto.dir/wire_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpurpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/dpurpc_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
