file(REMOVE_RECURSE
  "CMakeFiles/dpurpc_metrics.dir/metrics.cpp.o"
  "CMakeFiles/dpurpc_metrics.dir/metrics.cpp.o.d"
  "CMakeFiles/dpurpc_metrics.dir/monitor.cpp.o"
  "CMakeFiles/dpurpc_metrics.dir/monitor.cpp.o.d"
  "libdpurpc_metrics.a"
  "libdpurpc_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpurpc_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
