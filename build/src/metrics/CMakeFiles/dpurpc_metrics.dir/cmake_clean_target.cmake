file(REMOVE_RECURSE
  "libdpurpc_metrics.a"
)
