# Empty compiler generated dependencies file for dpurpc_metrics.
# This may be replaced when dependencies are built.
