file(REMOVE_RECURSE
  "libdpurpc_simverbs.a"
)
