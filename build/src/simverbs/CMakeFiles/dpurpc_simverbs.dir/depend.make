# Empty dependencies file for dpurpc_simverbs.
# This may be replaced when dependencies are built.
