file(REMOVE_RECURSE
  "CMakeFiles/dpurpc_simverbs.dir/simverbs.cpp.o"
  "CMakeFiles/dpurpc_simverbs.dir/simverbs.cpp.o.d"
  "libdpurpc_simverbs.a"
  "libdpurpc_simverbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpurpc_simverbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
