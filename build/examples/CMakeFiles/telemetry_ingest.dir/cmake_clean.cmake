file(REMOVE_RECURSE
  "CMakeFiles/telemetry_ingest.dir/gen/telemetry.adt.pb.cc.o"
  "CMakeFiles/telemetry_ingest.dir/gen/telemetry.adt.pb.cc.o.d"
  "CMakeFiles/telemetry_ingest.dir/gen/telemetry.pb.cc.o"
  "CMakeFiles/telemetry_ingest.dir/gen/telemetry.pb.cc.o.d"
  "CMakeFiles/telemetry_ingest.dir/telemetry_ingest.cpp.o"
  "CMakeFiles/telemetry_ingest.dir/telemetry_ingest.cpp.o.d"
  "gen/telemetry.adt.pb.cc"
  "gen/telemetry.adt.pb.h"
  "gen/telemetry.pb.cc"
  "gen/telemetry.pb.h"
  "telemetry_ingest"
  "telemetry_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
